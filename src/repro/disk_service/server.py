"""The disk server: the paper's five service functions.

One disk server per disk (paper section 4).  It owns the authoritative
fragment bitmap, the 64x64 free-extent array, the track cache, and the
stable-storage semantics of ``get``/``put``:

* ``put`` can save data on its **original location only**, **exclusively
  on stable storage** (the shadow-page case), or **both** (the file
  index table case), and the caller chooses whether the call returns
  *before* or *after* the stable write;
* ``get`` reads from **main** storage (default, through the track
  cache) or from **stable** storage.

Any operation on a contiguous extent is one single disk reference —
the property the paper's whole design is organised around.

Media-failure defence (DESIGN.md §11): every put records a per-fragment
CRC-32 and every main-storage get verifies it, raising
:class:`~repro.common.errors.ChecksumError` instead of ever returning
rotted bytes — and evicting them from the track cache first.  The
checksum map and the set of *mirrored* extents (those whose last put
was ``Stability.BOTH``, so the stable copy legitimately equals main)
are checkpointed to stable storage at ``flush``; the background
scrubber uses both to find latent corruption and repair mirrored
extents in place from their stable copy.
"""

from __future__ import annotations

import enum
import struct
import zlib
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import monitor as _monitor
from repro.common.clock import SimClock
from repro.common.errors import (
    BadAddressError,
    ChecksumError,
    DiskError,
    DiskFullError,
)
from repro.common.frames import frame_now
from repro.common.metrics import Metrics
from repro.common.trace import NULL_SPAN, NULL_TRACER, Tracer
from repro.common.units import FRAGMENTS_PER_BLOCK
from repro.disk_service.addresses import Extent
from repro.disk_service.bitmap import FragmentBitmap
from repro.disk_service.cache import TrackCache
from repro.disk_service.extent_table import FreeExtentTable
from repro.simdisk.disk import SimDisk
from repro.simdisk.stable import StableStore


class Stability(enum.Enum):
    """Where ``put`` saves the data (paper section 4)."""

    ORIGINAL_ONLY = "original"
    STABLE_ONLY = "stable"  # shadow page
    BOTH = "both"  # file index table


class SyncMode(enum.Enum):
    """When ``put`` returns relative to the stable write (paper section 4)."""

    BEFORE_STABLE = "before"  # return first, stable write is deferred
    AFTER_STABLE = "after"  # stable write completes before return


class Source(enum.Enum):
    """Where ``get`` reads from (paper section 4)."""

    MAIN = "main"
    STABLE = "stable"


def _stable_key(extent: Extent) -> str:
    return f"ext:{extent.start}:{extent.length}"


#: Bytes per fragment (2 KB): the checksum granule.
_FRAGMENT_BYTES = Extent(0, 1).byte_size

#: Stable-storage record holding the protection checkpoint.
PROTECTION_KEY = "protection"
_PROTECTION_MAGIC = b"RPRT"


def _encode_protection(
    checksums: Dict[int, int], mirrored: Set[Tuple[int, int]]
) -> bytes:
    """Serialise the checksum map + mirrored-extent set, sorted (so the
    record — and everything downstream — is byte-deterministic)."""
    parts = [
        _PROTECTION_MAGIC,
        struct.pack("<II", len(checksums), len(mirrored)),
    ]
    for fragment in sorted(checksums):
        parts.append(struct.pack("<II", fragment, checksums[fragment]))
    for start, length in sorted(mirrored):
        parts.append(struct.pack("<II", start, length))
    return b"".join(parts)


def _decode_protection(
    blob: bytes,
) -> Tuple[Dict[int, int], Set[Tuple[int, int]]]:
    """Inverse of :func:`_encode_protection`; raises ValueError on junk."""
    if blob[:4] != _PROTECTION_MAGIC or len(blob) < 12:
        raise ValueError("not a protection record")
    n_checksums, n_mirrored = struct.unpack_from("<II", blob, 4)
    expected = 12 + 8 * (n_checksums + n_mirrored)
    if len(blob) != expected:
        raise ValueError("protection record length mismatch")
    offset = 12
    checksums: Dict[int, int] = {}
    for _ in range(n_checksums):
        fragment, crc = struct.unpack_from("<II", blob, offset)
        checksums[fragment] = crc
        offset += 8
    mirrored: Set[Tuple[int, int]] = set()
    for _ in range(n_mirrored):
        start, length = struct.unpack_from("<II", blob, offset)
        mirrored.add((start, length))
        offset += 8
    return checksums, mirrored


class DiskServer:
    """Free-space management + cached, stability-aware block I/O for one disk.

    Args:
        disk: the simulated drive this server fronts.
        stable: the mirrored stable store for this drive's vital data.
        clock: shared simulated clock.
        metrics: shared counter registry.
        cache_tracks: track-cache capacity; 0 disables the cache.
        readahead: enable rest-of-track readahead (paper's strategy).
        extent_rows / extent_columns: free-extent array dimensions
            (64x64 in the paper; configurable for ablation A1).
        tracer: records one span per get/put; disabled by default.
    """

    def __init__(
        self,
        disk: SimDisk,
        stable: StableStore,
        clock: SimClock,
        metrics: Metrics,
        *,
        cache_tracks: int = 128,
        readahead: bool = True,
        extent_rows: int = 64,
        extent_columns: int = 64,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.disk = disk
        self.stable = stable
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.n_fragments = disk.geometry.capacity_bytes // Extent(0, 1).byte_size
        self.bitmap = FragmentBitmap(self.n_fragments)
        self.extent_table = FreeExtentTable(extent_rows, extent_columns)
        self.extent_table.refill(self.bitmap)
        self._cache: Optional[TrackCache] = (
            TrackCache(
                disk,
                metrics,
                capacity_tracks=cache_tracks,
                readahead=readahead,
                name=f"disk_cache.{disk.disk_id}",
                tracer=self.tracer,
            )
            if cache_tracks > 0
            else None
        )
        # Deferred stable writes: (key, data, marks_mirrored).
        self._pending_stable: List[Tuple[str, bytes, bool]] = []
        #: fragment -> CRC-32 of its last successful main write.
        self._checksums: Dict[int, int] = {}
        #: Extents whose stable copy legitimately equals main (last put
        #: was Stability.BOTH) — the scrubber's repair candidates.
        #: Shadow pages (STABLE_ONLY) are deliberately excluded: their
        #: stable copy is *supposed* to diverge from main.
        self._mirrored: Set[Tuple[int, int]] = set()
        self._mirrored_fragments: Set[int] = set()
        #: Fragments whose recorded checksum predates the last crash.
        #: A post-crash mismatch on one of these cannot be arbitrated
        #: locally (rot vs. an in-flux write the crash tore), so unless
        #: the fragment is mirrored the stale entry is dropped, not
        #: raised — redundancy covers that window (DESIGN.md §11).
        self._unreconciled: Set[int] = set()
        # True when the in-memory bitmap has diverged from its stable-
        # storage checkpoint.  Any stable-bound put checkpoints first:
        # vital structures (FITs, indirect blocks) must never become
        # durable while referencing fragments the durable bitmap still
        # considers free, or recovery would hand those fragments out
        # again (the crash sweep proves this ordering).
        self._bitmap_dirty = False
        self._prefix = f"disk_server.{disk.disk_id}"
        # Pre-bound instrument handles for the two service entry points
        # every request passes through; colder sites (recoveries,
        # checkpoints, flushes) keep the formatted-name convenience API.
        self._c_gets = self.metrics.counter(f"{self._prefix}.gets")
        self._c_puts = self.metrics.counter(f"{self._prefix}.puts")
        self._h_get_us = self.metrics.histogram_handle(f"{self._prefix}.get_us")
        self._h_put_us = self.metrics.histogram_handle(f"{self._prefix}.put_us")
        # Set by DiskPipeline when the overlapped request path is wired.
        self.pipeline: Optional[object] = None

    def _serial(self) -> None:
        """Happens-before: the disk server is one serial process.

        The paper's disk server is a single process per disk; every
        entry-point invocation is a message it handles in order, so
        consecutive invocations are chained.  Batch *bodies* are not an
        invocation (their mutual order is the scheduler's dequeue
        chain, recorded by the pipeline) — only the entry points a
        batch calls internally (checkpoints, repairs) join the chain.
        """
        _monitor.active().chain(self)

    # ------------------------------------------------------ allocate

    def allocate(
        self,
        n_fragments: int,
        *,
        contiguous: bool = True,
        scratch: bool = False,
    ):
        """Allocate ``n_fragments`` fragments.

        With ``contiguous=True`` (the RHODOS preference) returns a
        single :class:`Extent`, raising :class:`DiskFullError` if no
        contiguous run of that size exists.  With ``contiguous=False``
        returns a list of extents covering the request, gathered
        largest-run-first.

        ``scratch=True`` places the extent at the high end of free
        space — used for tentative data items and shadow pages so
        short-lived allocations do not punch holes into the low region
        where files grow contiguously.
        """
        if n_fragments < 1:
            raise BadAddressError("must allocate at least one fragment")
        self._serial()
        self.metrics.add(f"{self._prefix}.allocations")
        if contiguous:
            return self._allocate_contiguous(n_fragments, prefer_high=scratch)
        return self._allocate_gather(n_fragments)

    def allocate_block(self, n_blocks: int = 1, *, scratch: bool = False) -> Extent:
        """Allocate ``n_blocks`` contiguous 8 KB blocks (paper: allocate-block)."""
        if n_blocks < 1:
            raise BadAddressError("must allocate at least one block")
        self._serial()
        return self._allocate_contiguous(
            n_blocks * FRAGMENTS_PER_BLOCK, prefer_high=scratch
        )

    def try_allocate_at(self, start: int, n_fragments: int) -> Optional[Extent]:
        """Allocate exactly ``[start, start + n_fragments)`` if it is free.

        Used by the file service to grow a file contiguously with its
        existing blocks (which is what keeps the FIT contiguity counts
        large).  Returns None — without error — when any fragment of
        the range is taken or out of bounds.
        """
        if start < 0 or start + n_fragments > self.n_fragments or n_fragments < 1:
            return None
        self._serial()
        extent = Extent(start, n_fragments)
        if not self.bitmap.is_free_run(extent):
            return None
        # The range sits inside some maximal free run; re-index its pieces.
        run = self.bitmap.run_containing(start)
        assert run is not None
        self.extent_table.remove_run(run.start)
        self.bitmap.mark_allocated(extent)
        if run.start < extent.start:
            self.extent_table.insert_run(run.start, extent.start - run.start)
        if run.end > extent.end:
            self.extent_table.insert_run(extent.end, run.end - extent.end)
        self._bitmap_dirty = True
        self.metrics.add(f"{self._prefix}.allocations")
        return extent

    def free(self, extent: Extent) -> None:
        """Free an extent (paper: free-block), coalescing with neighbours.

        The bitmap is updated and the free-extent array re-indexed so
        the merged maximal run is findable at its full length —
        "generally, several contiguous blocks and fragments are
        allocated or freed simultaneously" (paper section 4).
        """
        self._serial()
        self.bitmap.mark_free(extent)
        self._bitmap_dirty = True
        self.metrics.add(f"{self._prefix}.frees")
        # Freed fragments carry no protection: their recorded checksums
        # describe content that no longer exists, and verifying a later
        # reallocation against them would reject legitimate new data.
        _monitor.active().write(
            self, extent.start, extent.end, name="protection",
            site="server.free",
        )
        for fragment in range(extent.start, extent.end):
            self._checksums.pop(fragment, None)
            self._unreconciled.discard(fragment)
        self._unmark_mirrored(extent)
        merged = self.bitmap.run_containing(extent.start)
        assert merged is not None  # we just freed it
        # Remove stale index entries for the runs we merged with.
        if merged.start < extent.start:
            self.extent_table.remove_run(merged.start)
        if merged.end > extent.end:
            self.extent_table.remove_run(extent.end)
        self.extent_table.remove_run(extent.start)
        self.extent_table.insert_run(merged.start, merged.length)

    # ------------------------------------------------------------ io

    def get(
        self,
        extent: Extent,
        *,
        source: Source = Source.MAIN,
        use_cache: bool = True,
    ) -> bytes:
        """Read a contiguous extent in (at most) one disk reference.

        ``source=Source.STABLE`` retrieves the stable-storage copy that
        a prior ``put(..., stability=STABLE_ONLY or BOTH)`` saved.
        """
        self._serial()
        return self._do_get(extent, source=source, use_cache=use_cache)

    def put(
        self,
        extent: Extent,
        data: bytes,
        *,
        stability: Stability = Stability.ORIGINAL_ONLY,
        sync: SyncMode = SyncMode.AFTER_STABLE,
    ) -> None:
        """Write a contiguous extent in one disk reference (paper: put-block).

        ``stability`` selects original-only / stable-only / both;
        ``sync=BEFORE_STABLE`` defers the stable write (it happens at
        the next ``flush`` or stable read — a crash first loses it,
        which is the semantics the caller signed up for).
        """
        self._serial()
        self._do_put(extent, data, stability=stability, sync=sync)

    def submit_get(
        self,
        extent: Extent,
        *,
        source: Source = Source.MAIN,
        use_cache: bool = True,
        low_priority: bool = False,
    ):
        """Enqueue a read on the attached pipeline; returns a Completion.

        ``low_priority`` requests (the scrubber's) are only served while
        no foreground request is pending.
        """
        if self.pipeline is None:
            raise DiskError(
                f"{self._prefix}: no request pipeline attached (submit_get)"
            )
        return self.pipeline.submit_get(
            extent, source=source, use_cache=use_cache, low_priority=low_priority
        )

    def submit_put(
        self,
        extent: Extent,
        data: bytes,
        *,
        stability: Stability = Stability.ORIGINAL_ONLY,
        sync: SyncMode = SyncMode.AFTER_STABLE,
    ):
        """Enqueue a write on the attached pipeline; returns a Completion."""
        if self.pipeline is None:
            raise DiskError(
                f"{self._prefix}: no request pipeline attached (submit_put)"
            )
        return self.pipeline.submit_put(extent, data, stability=stability, sync=sync)

    def _do_get(
        self,
        extent: Extent,
        *,
        source: Source = Source.MAIN,
        use_cache: bool = True,
        queued_since: Optional[int] = None,
    ) -> bytes:
        tracer = self.tracer
        span = tracer.span(
            "disk_service",
            "get",
            disk=self.disk.disk_id,
            fragment=extent.start,
            n_fragments=extent.length,
            source=source.value,
        ) if tracer.enabled else NULL_SPAN
        with span:
            # Inlined metrics.timer: same exception-inclusive frame-time
            # semantics, no contextmanager machinery on the hot path.
            started = frame_now(self.clock)
            try:
                return self._get_body(
                    extent, source, use_cache, queued_since
                )
            finally:
                self._h_get_us.observe(frame_now(self.clock) - started)

    def _get_body(
        self,
        extent: Extent,
        source: Source,
        use_cache: bool,
        queued_since: Optional[int],
    ) -> bytes:
        self._note_queue_wait(queued_since)
        self._check_extent(extent)
        self._c_gets.add()
        if source is Source.STABLE:
            self._drain_pending()
            return self.stable.get(_stable_key(extent))
        if self._cache is not None and use_cache:
            data = self._cache.read(extent.first_sector, extent.n_sectors)
        else:
            self.tracer.annotate("track_cache", "bypassed")
            data = self.disk.read_sectors(extent.first_sector, extent.n_sectors)
        return self._verify_extent(extent, data)

    def _do_put(
        self,
        extent: Extent,
        data: bytes,
        *,
        stability: Stability = Stability.ORIGINAL_ONLY,
        sync: SyncMode = SyncMode.AFTER_STABLE,
        queued_since: Optional[int] = None,
    ) -> None:
        tracer = self.tracer
        span = tracer.span(
            "disk_service",
            "put",
            disk=self.disk.disk_id,
            fragment=extent.start,
            n_fragments=extent.length,
            stability=stability.value,
        ) if tracer.enabled else NULL_SPAN
        with span:
            started = frame_now(self.clock)
            try:
                self._put_body(extent, data, stability, sync, queued_since)
            finally:
                self._h_put_us.observe(frame_now(self.clock) - started)

    def _put_body(
        self,
        extent: Extent,
        data: bytes,
        stability: Stability,
        sync: SyncMode,
        queued_since: Optional[int],
    ) -> None:
        self._note_queue_wait(queued_since)
        self._check_extent(extent)
        if len(data) != extent.byte_size:
            raise BadAddressError(
                f"payload is {len(data)} bytes but extent {extent} holds "
                f"{extent.byte_size}"
            )
        self._c_puts.add()
        if stability is not Stability.ORIGINAL_ONLY and self._bitmap_dirty:
            # Bitmap first, then the structure referencing the newly
            # allocated fragments.  A crash in between leaks orphans
            # (an fsck warning), never lost blocks (an fsck error).
            self.checkpoint_free_space()
        if stability in (Stability.ORIGINAL_ONLY, Stability.BOTH):
            if self._cache is not None:
                self._cache.write_through(extent.first_sector, data)
            else:
                self.disk.write_sectors(extent.first_sector, data)
            self._record_checksums(extent, data)
        # Any overwrite ends the extent's mirrored status until its
        # stable copy is (re)confirmed equal to main below; a
        # STABLE_ONLY put (shadow page) ends it outright.
        self._unmark_mirrored(extent)
        if stability in (Stability.STABLE_ONLY, Stability.BOTH):
            key = _stable_key(extent)
            mirror = stability is Stability.BOTH
            if sync is SyncMode.AFTER_STABLE:
                self.stable.put(key, data)
                if mirror:
                    self._mark_mirrored(extent)
            else:
                _monitor.active().key_write(
                    self, key, name="pending_stable",
                    site="server.defer_stable",
                )
                self._pending_stable.append((key, data, mirror))
                self.metrics.add(f"{self._prefix}.deferred_stable_puts")

    def release_stable(self, extent: Extent) -> None:
        """Drop the stable-storage copy of an extent (e.g. committed shadow)."""
        self._serial()
        _monitor.active().key_write(
            self, _stable_key(extent), name="pending_stable",
            site="server.release_stable",
        )
        self._pending_stable = [
            entry
            for entry in self._pending_stable
            if entry[0] != _stable_key(extent)
        ]
        self._unmark_mirrored(extent)
        self.stable.delete(_stable_key(extent))

    def flush(self) -> None:
        """Drain deferred stable writes and checkpoint free-space state.

        This is the paper's flush-block made whole-server: after it
        returns, everything the server promised to stable storage is
        there, including the bitmap.
        """
        self._serial()
        self._drain_pending()
        self.checkpoint_free_space()
        self.checkpoint_protection()
        self.metrics.add(f"{self._prefix}.flushes")

    # ----------------------------------------------------- recovery

    def checkpoint_free_space(self) -> None:
        """Save the bitmap to stable storage (vital structural information)."""
        self._serial()
        self._bitmap_dirty = False
        self.metrics.gauge(f"{self._prefix}.free_fragments", self.bitmap.free_count)
        self.stable.put("bitmap", self.bitmap.to_bytes())

    def checkpoint_protection(self) -> None:
        """Save the checksum map + mirrored set to stable storage.

        Called by ``flush``: after it, the scrubber of a recovered
        server knows which fragments carry checksums and which extents
        it may repair from their stable copy.
        """
        self._serial()
        _monitor.active().read_all(
            self, name="protection", site="server.checkpoint_protection"
        )
        self.metrics.gauge(
            f"{self._prefix}.checksummed_fragments", len(self._checksums)
        )
        self.stable.put(
            PROTECTION_KEY, _encode_protection(self._checksums, self._mirrored)
        )

    def recover(self) -> None:
        """Rebuild volatile state after a crash.

        Reloads the bitmap from stable storage (falling back to a full
        free disk if no checkpoint exists), refills the free-extent
        array by scanning it, invalidates the track cache, and reloads
        the protection checkpoint.  Reloaded checksums are marked
        *unreconciled*: the first read of each fragment arbitrates a
        mismatch (stale entry for an in-flux write vs. rot — see
        :meth:`_verify_extent`).  Mirrored entries whose stable record
        vanished (released mid-crash) are pruned.
        """
        self._serial()
        _monitor.active().write_all(
            self, name="protection", site="server.recover"
        )
        try:
            blob = self.stable.get("bitmap")
            self.bitmap = FragmentBitmap.from_bytes(blob, self.n_fragments)
        except KeyError:
            self.bitmap = FragmentBitmap(self.n_fragments)
        self.extent_table.refill(self.bitmap)
        if self._cache is not None:
            self._cache.invalidate()
        self._pending_stable.clear()
        self._bitmap_dirty = False
        self._checksums = {}
        self._mirrored = set()
        self._mirrored_fragments = set()
        self._unreconciled = set()
        try:
            checksums, mirrored = _decode_protection(
                self.stable.get(PROTECTION_KEY)
            )
        except (KeyError, ValueError):
            checksums, mirrored = {}, set()
        if mirrored:
            existing = set(self.stable.keys())
            mirrored = {
                (start, length)
                for start, length in mirrored
                if _stable_key(Extent(start, length)) in existing
            }
        self._checksums = checksums
        self._unreconciled = set(checksums)
        for start, length in mirrored:
            self._mark_mirrored(Extent(start, length))
        self.metrics.add(f"{self._prefix}.recoveries")

    def repair_from_stable(self, extent: Extent) -> bytes:
        """Overwrite a mirrored extent's main copy from its stable copy.

        The scrubber's repair path: the write goes through the normal
        put machinery, so it is a numbered crash point, refreshes the
        checksum, heals latent media errors on the rewritten sectors,
        and updates any cached copy.  The extent is re-marked mirrored
        (main now equals stable by construction).  Raises
        :class:`~repro.common.errors.StableKeyError` if no stable copy
        exists.
        """
        self._serial()
        expected = self.stable.get(_stable_key(extent))
        self._do_put(extent, expected, stability=Stability.ORIGINAL_ONLY)
        self._mark_mirrored(extent)
        self.metrics.add(f"{self._prefix}.stable_repairs")
        return expected

    # ------------------------------------------------------- status

    @property
    def free_fragments(self) -> int:
        return self.bitmap.free_count

    def is_fragment_free(self, fragment: int) -> bool:
        """Whether ``fragment`` is currently free.

        The scrubber's guard: background verification must consult the
        server (the bitmap's serial owner) rather than reach into the
        bitmap directly, so the access is ordered with allocations.
        """
        self._serial()
        _monitor.active().read(
            self.bitmap, fragment, site="server.is_fragment_free"
        )
        return self.bitmap.is_free(fragment)

    def has_checksum(self, fragment: int) -> bool:
        """Whether a CRC is recorded for ``fragment``."""
        self._serial()
        _monitor.active().read(
            self, fragment, name="protection", site="server.has_checksum"
        )
        return fragment in self._checksums

    def checksummed_fragments(self) -> List[int]:
        """Fragments with a recorded CRC, sorted (scrub walk order)."""
        self._serial()
        _monitor.active().read_all(
            self, name="protection", site="server.checksummed_fragments"
        )
        return sorted(self._checksums)

    def recorded_checksum(self, fragment: int) -> Optional[int]:
        """The recorded CRC of ``fragment``, or None (fsck's view)."""
        self._serial()
        _monitor.active().read(
            self, fragment, name="protection", site="server.recorded_checksum"
        )
        return self._checksums.get(fragment)

    def is_unreconciled(self, fragment: int) -> bool:
        """Whether a fragment's checksum awaits post-crash reconciliation.

        True between a recovery and the fragment's first read or write:
        the recorded CRC came from the last checkpoint and may lag an
        in-flux write, so a raw recompute (fsck) cannot treat a
        mismatch as rot yet.
        """
        self._serial()
        _monitor.active().read(
            self, fragment, name="protection", site="server.is_unreconciled"
        )
        return fragment in self._unreconciled

    def mirrored_extents(self) -> List[Tuple[int, int]]:
        """(start, length) of every mirrored extent, sorted."""
        self._serial()
        _monitor.active().read_all(
            self, name="protection", site="server.mirrored_extents"
        )
        return sorted(self._mirrored)

    def is_mirrored_fragment(self, fragment: int) -> bool:
        """Whether ``fragment`` lies inside a mirrored extent."""
        self._serial()
        _monitor.active().read(
            self, fragment, name="protection", site="server.is_mirrored_fragment"
        )
        return fragment in self._mirrored_fragments

    @property
    def cache(self) -> Optional[TrackCache]:
        return self._cache

    @property
    def pending_stable_writes(self) -> int:
        return len(self._pending_stable)

    # ------------------------------------------------------ internal

    def _allocate_contiguous(
        self, n_fragments: int, *, prefer_high: bool = False
    ) -> Extent:
        run = self.extent_table.take_run(
            n_fragments, self.bitmap, prefer_high=prefer_high
        )
        if run is None:
            self.extent_table.refill(self.bitmap)
            self.metrics.add(f"{self._prefix}.table_refills")
            run = self.extent_table.take_run(
                n_fragments, self.bitmap, prefer_high=prefer_high
            )
        if run is None:
            raise DiskFullError(
                f"no contiguous run of {n_fragments} fragments "
                f"({self.bitmap.free_count} free in total)"
            )
        if prefer_high:
            extent = Extent(run.end - n_fragments, n_fragments)
            self.bitmap.mark_allocated(extent)
            if run.length > n_fragments:
                self.extent_table.insert_run(
                    run.start, run.length - n_fragments
                )
        else:
            extent = run.take(n_fragments)
            self.bitmap.mark_allocated(extent)
            if run.length > n_fragments:
                self.extent_table.insert_run(
                    extent.end, run.length - n_fragments
                )
        self._bitmap_dirty = True
        return extent

    def _allocate_gather(self, n_fragments: int) -> List[Extent]:
        if self.bitmap.free_count < n_fragments:
            raise DiskFullError(
                f"{n_fragments} fragments requested, only "
                f"{self.bitmap.free_count} free"
            )
        pieces: List[Extent] = []
        remaining = n_fragments
        refilled = False
        while remaining > 0:
            run = self.extent_table.take_largest(self.bitmap)
            if run is None:
                if refilled:
                    # Bitmap said there was space; the table must find it
                    # after a refill unless the bitmap lied (impossible).
                    for piece in pieces:
                        self.free(piece)
                    raise DiskFullError(
                        f"free space fragmented beyond recovery for "
                        f"{n_fragments} fragments"
                    )
                self.extent_table.refill(self.bitmap)
                self.metrics.add(f"{self._prefix}.table_refills")
                refilled = True
                continue
            piece = run.take(min(run.length, remaining))
            self.bitmap.mark_allocated(piece)
            self._bitmap_dirty = True
            if run.length > piece.length:
                self.extent_table.insert_run(piece.end, run.length - piece.length)
            pieces.append(piece)
            remaining -= piece.length
        return pieces

    def _note_queue_wait(self, queued_since: Optional[int]) -> None:
        """Record the queue span of a pipelined request.

        The pipeline passes the batch's earliest enqueue time; the span
        is retro-dated to it so the trace tree reads disk_service →
        queue → simdisk and the queue span's duration *is* the wait.
        Direct (non-pipelined) calls pass None and trace nothing.
        """
        if queued_since is None or not self.tracer.enabled:
            return
        with self.tracer.span("queue", "wait", disk=self.disk.disk_id) as handle:
            handle.span.start_us = min(queued_since, handle.span.start_us)

    def _drain_pending(self) -> None:
        _monitor.active().write_all(
            self, name="pending_stable", site="server.drain_pending"
        )
        pending, self._pending_stable = self._pending_stable, []
        for key, data, mirror in pending:
            self.stable.put(key, data)
            if mirror:
                # A deferred BOTH put: its stable copy just caught up
                # with main, so the extent is mirrored from here on.
                _, start, length = key.split(":")
                self._mark_mirrored(Extent(int(start), int(length)))

    def _record_checksums(self, extent: Extent, data: bytes) -> None:
        _monitor.active().write(
            self, extent.start, extent.end, name="protection",
            site="server.record_checksums",
        )
        for index in range(extent.length):
            fragment = extent.start + index
            self._checksums[fragment] = zlib.crc32(
                data[index * _FRAGMENT_BYTES : (index + 1) * _FRAGMENT_BYTES]
            )
            self._unreconciled.discard(fragment)

    def _verify_extent(self, extent: Extent, data: bytes) -> bytes:
        """Check every checksummed fragment of a main-storage read.

        Returns the verified bytes — usually ``data`` unchanged.

        A mismatch on an *unreconciled* checksum (loaded from the last
        pre-crash checkpoint) may just be stale bookkeeping: the
        fragment was legitimately rewritten after the checkpoint, so
        the recorded CRC describes older bytes.  A local checksum
        cannot arbitrate that against rot by itself, so the crash
        window is resolved by redundancy class:

        * a non-mirrored fragment's entry is dropped (the basic
          service makes no content promise for in-flux data) and the
          read proceeds;
        * a *mirrored* fragment is byte-compared against its stable
          copy — agreement re-seals the checksum at the current bytes;
          disagreement means a BOTH put tore between its main and
          stable writes, and the extent is rolled back to the stable
          copy in place (read repair), the caller receiving the
          repaired bytes.

        Every other mismatch is rot or a latent media flip: the
        extent's sectors are evicted from the track cache and
        :class:`~repro.common.errors.ChecksumError` is raised — corrupt
        bytes never reach a caller or linger in the cache.
        """
        _monitor.active().read(
            self, extent.start, extent.end, name="protection",
            site="server.verify_extent",
        )
        if not self._checksums:
            return data
        buffer = data
        for index in range(extent.length):
            fragment = extent.start + index
            expected = self._checksums.get(fragment)
            if expected is None:
                continue
            fragment_bytes = buffer[
                index * _FRAGMENT_BYTES : (index + 1) * _FRAGMENT_BYTES
            ]
            actual = zlib.crc32(fragment_bytes)
            if actual == expected:
                self._unreconciled.discard(fragment)
                continue
            if fragment in self._unreconciled:
                self._unreconciled.discard(fragment)
                if fragment not in self._mirrored_fragments:
                    del self._checksums[fragment]
                    self.metrics.add(f"{self._prefix}.checksums_reconciled")
                    continue
                covering = self._mirrored_extent_covering(fragment)
                stable_bytes = (
                    None
                    if covering is None
                    else self._stable_fragment_bytes(fragment, covering)
                )
                if stable_bytes is None or stable_bytes == fragment_bytes:
                    self._checksums[fragment] = actual
                    self.metrics.add(f"{self._prefix}.checksums_reconciled")
                    continue
                buffer = self._read_repair(extent, buffer, covering)
                continue
            self.metrics.add(f"{self._prefix}.checksum_failures")
            if self._cache is not None:
                self._cache.drop_sectors(extent.first_sector, extent.n_sectors)
            raise ChecksumError(
                f"{self._prefix}: fragment {fragment} failed its checksum "
                f"(recorded 0x{expected:08x}, computed 0x{actual:08x})"
            )
        return buffer

    def _mirrored_extent_covering(
        self, fragment: int
    ) -> Optional[Tuple[int, int]]:
        """The mirrored extent holding ``fragment``, if one does.

        Mirrored extents never overlap (marking retires overlaps
        first), so at most one covers the fragment.
        """
        for start, length in self._mirrored:
            if start <= fragment < start + length:
                return (start, length)
        return None

    def _stable_fragment_bytes(
        self, fragment: int, covering: Tuple[int, int]
    ) -> Optional[bytes]:
        """One mirrored fragment's bytes per the stable copy, if any."""
        start, length = covering
        try:
            blob = self.stable.get(_stable_key(Extent(start, length)))
        except KeyError:
            return None
        offset = (fragment - start) * _FRAGMENT_BYTES
        return blob[offset : offset + _FRAGMENT_BYTES]

    def _read_repair(
        self, extent: Extent, buffer: bytes, covering: Tuple[int, int]
    ) -> bytes:
        """Roll a torn mirrored extent back to stable, mid-read.

        Splices the repaired fragments into the read buffer so the
        caller (and the rest of verification) sees the healed bytes.
        """
        mirrored = Extent(*covering)
        repaired = self.repair_from_stable(mirrored)
        self.metrics.add(f"{self._prefix}.read_repairs")
        patched = bytearray(buffer)
        overlap_start = max(extent.start, mirrored.start)
        overlap_end = min(extent.end, mirrored.end)
        for position in range(overlap_start, overlap_end):
            into = (position - extent.start) * _FRAGMENT_BYTES
            from_ = (position - mirrored.start) * _FRAGMENT_BYTES
            patched[into : into + _FRAGMENT_BYTES] = repaired[
                from_ : from_ + _FRAGMENT_BYTES
            ]
        return bytes(patched)

    def _mark_mirrored(self, extent: Extent) -> None:
        _monitor.active().write(
            self, extent.start, extent.end, name="protection",
            site="server.mark_mirrored",
        )
        self._mirrored.add((extent.start, extent.length))
        self._mirrored_fragments.update(range(extent.start, extent.end))

    def _unmark_mirrored(self, extent: Extent) -> None:
        """Retire every mirrored extent the write overlaps.

        Overlap (not exact match) matters: once any covered fragment is
        rewritten, main and stable may diverge, and a scrub repair from
        the stale stable copy would *undo* the write.
        """
        _monitor.active().write(
            self, extent.start, extent.end, name="protection",
            site="server.unmark_mirrored",
        )
        if not self._mirrored_fragments.intersection(
            range(extent.start, extent.end)
        ):
            return
        for start, length in [
            (start, length)
            for start, length in self._mirrored
            if start < extent.end and extent.start < start + length
        ]:
            self._mirrored.discard((start, length))
            self._mirrored_fragments.difference_update(
                range(start, start + length)
            )

    def _check_extent(self, extent: Extent) -> None:
        if extent.end > self.n_fragments:
            raise BadAddressError(
                f"extent {extent} beyond disk of {self.n_fragments} fragments"
            )

    def __repr__(self) -> str:
        return (
            f"DiskServer(disk={self.disk.disk_id!r}, "
            f"free={self.bitmap.free_count}/{self.n_fragments} fragments)"
        )
