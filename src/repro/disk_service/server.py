"""The disk server: the paper's five service functions.

One disk server per disk (paper section 4).  It owns the authoritative
fragment bitmap, the 64x64 free-extent array, the track cache, and the
stable-storage semantics of ``get``/``put``:

* ``put`` can save data on its **original location only**, **exclusively
  on stable storage** (the shadow-page case), or **both** (the file
  index table case), and the caller chooses whether the call returns
  *before* or *after* the stable write;
* ``get`` reads from **main** storage (default, through the track
  cache) or from **stable** storage.

Any operation on a contiguous extent is one single disk reference —
the property the paper's whole design is organised around.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import BadAddressError, DiskError, DiskFullError
from repro.common.metrics import Metrics
from repro.common.trace import NULL_SPAN, NULL_TRACER, Tracer
from repro.common.units import FRAGMENTS_PER_BLOCK
from repro.disk_service.addresses import Extent
from repro.disk_service.bitmap import FragmentBitmap
from repro.disk_service.cache import TrackCache
from repro.disk_service.extent_table import FreeExtentTable
from repro.simdisk.disk import SimDisk
from repro.simdisk.stable import StableStore


class Stability(enum.Enum):
    """Where ``put`` saves the data (paper section 4)."""

    ORIGINAL_ONLY = "original"
    STABLE_ONLY = "stable"  # shadow page
    BOTH = "both"  # file index table


class SyncMode(enum.Enum):
    """When ``put`` returns relative to the stable write (paper section 4)."""

    BEFORE_STABLE = "before"  # return first, stable write is deferred
    AFTER_STABLE = "after"  # stable write completes before return


class Source(enum.Enum):
    """Where ``get`` reads from (paper section 4)."""

    MAIN = "main"
    STABLE = "stable"


def _stable_key(extent: Extent) -> str:
    return f"ext:{extent.start}:{extent.length}"


class DiskServer:
    """Free-space management + cached, stability-aware block I/O for one disk.

    Args:
        disk: the simulated drive this server fronts.
        stable: the mirrored stable store for this drive's vital data.
        clock: shared simulated clock.
        metrics: shared counter registry.
        cache_tracks: track-cache capacity; 0 disables the cache.
        readahead: enable rest-of-track readahead (paper's strategy).
        extent_rows / extent_columns: free-extent array dimensions
            (64x64 in the paper; configurable for ablation A1).
        tracer: records one span per get/put; disabled by default.
    """

    def __init__(
        self,
        disk: SimDisk,
        stable: StableStore,
        clock: SimClock,
        metrics: Metrics,
        *,
        cache_tracks: int = 128,
        readahead: bool = True,
        extent_rows: int = 64,
        extent_columns: int = 64,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.disk = disk
        self.stable = stable
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.n_fragments = disk.geometry.capacity_bytes // Extent(0, 1).byte_size
        self.bitmap = FragmentBitmap(self.n_fragments)
        self.extent_table = FreeExtentTable(extent_rows, extent_columns)
        self.extent_table.refill(self.bitmap)
        self._cache: Optional[TrackCache] = (
            TrackCache(
                disk,
                metrics,
                capacity_tracks=cache_tracks,
                readahead=readahead,
                name=f"disk_cache.{disk.disk_id}",
                tracer=self.tracer,
            )
            if cache_tracks > 0
            else None
        )
        self._pending_stable: List[Tuple[str, bytes]] = []
        # True when the in-memory bitmap has diverged from its stable-
        # storage checkpoint.  Any stable-bound put checkpoints first:
        # vital structures (FITs, indirect blocks) must never become
        # durable while referencing fragments the durable bitmap still
        # considers free, or recovery would hand those fragments out
        # again (the crash sweep proves this ordering).
        self._bitmap_dirty = False
        self._prefix = f"disk_server.{disk.disk_id}"
        # Set by DiskPipeline when the overlapped request path is wired.
        self.pipeline: Optional[object] = None

    # ------------------------------------------------------ allocate

    def allocate(
        self,
        n_fragments: int,
        *,
        contiguous: bool = True,
        scratch: bool = False,
    ):
        """Allocate ``n_fragments`` fragments.

        With ``contiguous=True`` (the RHODOS preference) returns a
        single :class:`Extent`, raising :class:`DiskFullError` if no
        contiguous run of that size exists.  With ``contiguous=False``
        returns a list of extents covering the request, gathered
        largest-run-first.

        ``scratch=True`` places the extent at the high end of free
        space — used for tentative data items and shadow pages so
        short-lived allocations do not punch holes into the low region
        where files grow contiguously.
        """
        if n_fragments < 1:
            raise BadAddressError("must allocate at least one fragment")
        self.metrics.add(f"{self._prefix}.allocations")
        if contiguous:
            return self._allocate_contiguous(n_fragments, prefer_high=scratch)
        return self._allocate_gather(n_fragments)

    def allocate_block(self, n_blocks: int = 1, *, scratch: bool = False) -> Extent:
        """Allocate ``n_blocks`` contiguous 8 KB blocks (paper: allocate-block)."""
        if n_blocks < 1:
            raise BadAddressError("must allocate at least one block")
        return self._allocate_contiguous(
            n_blocks * FRAGMENTS_PER_BLOCK, prefer_high=scratch
        )

    def try_allocate_at(self, start: int, n_fragments: int) -> Optional[Extent]:
        """Allocate exactly ``[start, start + n_fragments)`` if it is free.

        Used by the file service to grow a file contiguously with its
        existing blocks (which is what keeps the FIT contiguity counts
        large).  Returns None — without error — when any fragment of
        the range is taken or out of bounds.
        """
        if start < 0 or start + n_fragments > self.n_fragments or n_fragments < 1:
            return None
        extent = Extent(start, n_fragments)
        if not self.bitmap.is_free_run(extent):
            return None
        # The range sits inside some maximal free run; re-index its pieces.
        run = self.bitmap.run_containing(start)
        assert run is not None
        self.extent_table.remove_run(run.start)
        self.bitmap.mark_allocated(extent)
        if run.start < extent.start:
            self.extent_table.insert_run(run.start, extent.start - run.start)
        if run.end > extent.end:
            self.extent_table.insert_run(extent.end, run.end - extent.end)
        self._bitmap_dirty = True
        self.metrics.add(f"{self._prefix}.allocations")
        return extent

    def free(self, extent: Extent) -> None:
        """Free an extent (paper: free-block), coalescing with neighbours.

        The bitmap is updated and the free-extent array re-indexed so
        the merged maximal run is findable at its full length —
        "generally, several contiguous blocks and fragments are
        allocated or freed simultaneously" (paper section 4).
        """
        self.bitmap.mark_free(extent)
        self._bitmap_dirty = True
        self.metrics.add(f"{self._prefix}.frees")
        merged = self.bitmap.run_containing(extent.start)
        assert merged is not None  # we just freed it
        # Remove stale index entries for the runs we merged with.
        if merged.start < extent.start:
            self.extent_table.remove_run(merged.start)
        if merged.end > extent.end:
            self.extent_table.remove_run(extent.end)
        self.extent_table.remove_run(extent.start)
        self.extent_table.insert_run(merged.start, merged.length)

    # ------------------------------------------------------------ io

    def get(
        self,
        extent: Extent,
        *,
        source: Source = Source.MAIN,
        use_cache: bool = True,
    ) -> bytes:
        """Read a contiguous extent in (at most) one disk reference.

        ``source=Source.STABLE`` retrieves the stable-storage copy that
        a prior ``put(..., stability=STABLE_ONLY or BOTH)`` saved.
        """
        return self._do_get(extent, source=source, use_cache=use_cache)

    def put(
        self,
        extent: Extent,
        data: bytes,
        *,
        stability: Stability = Stability.ORIGINAL_ONLY,
        sync: SyncMode = SyncMode.AFTER_STABLE,
    ) -> None:
        """Write a contiguous extent in one disk reference (paper: put-block).

        ``stability`` selects original-only / stable-only / both;
        ``sync=BEFORE_STABLE`` defers the stable write (it happens at
        the next ``flush`` or stable read — a crash first loses it,
        which is the semantics the caller signed up for).
        """
        self._do_put(extent, data, stability=stability, sync=sync)

    def submit_get(
        self,
        extent: Extent,
        *,
        source: Source = Source.MAIN,
        use_cache: bool = True,
    ):
        """Enqueue a read on the attached pipeline; returns a Completion."""
        if self.pipeline is None:
            raise DiskError(
                f"{self._prefix}: no request pipeline attached (submit_get)"
            )
        return self.pipeline.submit_get(extent, source=source, use_cache=use_cache)

    def submit_put(
        self,
        extent: Extent,
        data: bytes,
        *,
        stability: Stability = Stability.ORIGINAL_ONLY,
        sync: SyncMode = SyncMode.AFTER_STABLE,
    ):
        """Enqueue a write on the attached pipeline; returns a Completion."""
        if self.pipeline is None:
            raise DiskError(
                f"{self._prefix}: no request pipeline attached (submit_put)"
            )
        return self.pipeline.submit_put(extent, data, stability=stability, sync=sync)

    def _do_get(
        self,
        extent: Extent,
        *,
        source: Source = Source.MAIN,
        use_cache: bool = True,
        queued_since: Optional[int] = None,
    ) -> bytes:
        with self.tracer.span(
            "disk_service",
            "get",
            disk=self.disk.disk_id,
            fragment=extent.start,
            n_fragments=extent.length,
            source=source.value,
        ), self.metrics.timer(f"{self._prefix}.get_us", self.clock):
            self._note_queue_wait(queued_since)
            self._check_extent(extent)
            self.metrics.add(f"{self._prefix}.gets")
            if source is Source.STABLE:
                self._drain_pending()
                return self.stable.get(_stable_key(extent))
            if self._cache is not None and use_cache:
                return self._cache.read(extent.first_sector, extent.n_sectors)
            self.tracer.annotate("track_cache", "bypassed")
            return self.disk.read_sectors(extent.first_sector, extent.n_sectors)

    def _do_put(
        self,
        extent: Extent,
        data: bytes,
        *,
        stability: Stability = Stability.ORIGINAL_ONLY,
        sync: SyncMode = SyncMode.AFTER_STABLE,
        queued_since: Optional[int] = None,
    ) -> None:
        with self.tracer.span(
            "disk_service",
            "put",
            disk=self.disk.disk_id,
            fragment=extent.start,
            n_fragments=extent.length,
            stability=stability.value,
        ), self.metrics.timer(f"{self._prefix}.put_us", self.clock):
            self._note_queue_wait(queued_since)
            self._check_extent(extent)
            if len(data) != extent.byte_size:
                raise BadAddressError(
                    f"payload is {len(data)} bytes but extent {extent} holds "
                    f"{extent.byte_size}"
                )
            self.metrics.add(f"{self._prefix}.puts")
            if stability is not Stability.ORIGINAL_ONLY and self._bitmap_dirty:
                # Bitmap first, then the structure referencing the newly
                # allocated fragments.  A crash in between leaks orphans
                # (an fsck warning), never lost blocks (an fsck error).
                self.checkpoint_free_space()
            if stability in (Stability.ORIGINAL_ONLY, Stability.BOTH):
                if self._cache is not None:
                    self._cache.write_through(extent.first_sector, data)
                else:
                    self.disk.write_sectors(extent.first_sector, data)
            if stability in (Stability.STABLE_ONLY, Stability.BOTH):
                key = _stable_key(extent)
                if sync is SyncMode.AFTER_STABLE:
                    self.stable.put(key, data)
                else:
                    self._pending_stable.append((key, data))
                    self.metrics.add(f"{self._prefix}.deferred_stable_puts")

    def release_stable(self, extent: Extent) -> None:
        """Drop the stable-storage copy of an extent (e.g. committed shadow)."""
        self._pending_stable = [
            (key, data)
            for key, data in self._pending_stable
            if key != _stable_key(extent)
        ]
        self.stable.delete(_stable_key(extent))

    def flush(self) -> None:
        """Drain deferred stable writes and checkpoint free-space state.

        This is the paper's flush-block made whole-server: after it
        returns, everything the server promised to stable storage is
        there, including the bitmap.
        """
        self._drain_pending()
        self.checkpoint_free_space()
        self.metrics.add(f"{self._prefix}.flushes")

    # ----------------------------------------------------- recovery

    def checkpoint_free_space(self) -> None:
        """Save the bitmap to stable storage (vital structural information)."""
        self._bitmap_dirty = False
        self.metrics.gauge(f"{self._prefix}.free_fragments", self.bitmap.free_count)
        self.stable.put("bitmap", self.bitmap.to_bytes())

    def recover(self) -> None:
        """Rebuild volatile state after a crash.

        Reloads the bitmap from stable storage (falling back to a full
        free disk if no checkpoint exists), refills the free-extent
        array by scanning it, and invalidates the track cache.
        """
        try:
            blob = self.stable.get("bitmap")
            self.bitmap = FragmentBitmap.from_bytes(blob, self.n_fragments)
        except KeyError:
            self.bitmap = FragmentBitmap(self.n_fragments)
        self.extent_table.refill(self.bitmap)
        if self._cache is not None:
            self._cache.invalidate()
        self._pending_stable.clear()
        self._bitmap_dirty = False
        self.metrics.add(f"{self._prefix}.recoveries")

    # ------------------------------------------------------- status

    @property
    def free_fragments(self) -> int:
        return self.bitmap.free_count

    @property
    def cache(self) -> Optional[TrackCache]:
        return self._cache

    @property
    def pending_stable_writes(self) -> int:
        return len(self._pending_stable)

    # ------------------------------------------------------ internal

    def _allocate_contiguous(
        self, n_fragments: int, *, prefer_high: bool = False
    ) -> Extent:
        run = self.extent_table.take_run(
            n_fragments, self.bitmap, prefer_high=prefer_high
        )
        if run is None:
            self.extent_table.refill(self.bitmap)
            self.metrics.add(f"{self._prefix}.table_refills")
            run = self.extent_table.take_run(
                n_fragments, self.bitmap, prefer_high=prefer_high
            )
        if run is None:
            raise DiskFullError(
                f"no contiguous run of {n_fragments} fragments "
                f"({self.bitmap.free_count} free in total)"
            )
        if prefer_high:
            extent = Extent(run.end - n_fragments, n_fragments)
            self.bitmap.mark_allocated(extent)
            if run.length > n_fragments:
                self.extent_table.insert_run(
                    run.start, run.length - n_fragments
                )
        else:
            extent = run.take(n_fragments)
            self.bitmap.mark_allocated(extent)
            if run.length > n_fragments:
                self.extent_table.insert_run(
                    extent.end, run.length - n_fragments
                )
        self._bitmap_dirty = True
        return extent

    def _allocate_gather(self, n_fragments: int) -> List[Extent]:
        if self.bitmap.free_count < n_fragments:
            raise DiskFullError(
                f"{n_fragments} fragments requested, only "
                f"{self.bitmap.free_count} free"
            )
        pieces: List[Extent] = []
        remaining = n_fragments
        refilled = False
        while remaining > 0:
            run = self.extent_table.take_largest(self.bitmap)
            if run is None:
                if refilled:
                    # Bitmap said there was space; the table must find it
                    # after a refill unless the bitmap lied (impossible).
                    for piece in pieces:
                        self.free(piece)
                    raise DiskFullError(
                        f"free space fragmented beyond recovery for "
                        f"{n_fragments} fragments"
                    )
                self.extent_table.refill(self.bitmap)
                self.metrics.add(f"{self._prefix}.table_refills")
                refilled = True
                continue
            piece = run.take(min(run.length, remaining))
            self.bitmap.mark_allocated(piece)
            self._bitmap_dirty = True
            if run.length > piece.length:
                self.extent_table.insert_run(piece.end, run.length - piece.length)
            pieces.append(piece)
            remaining -= piece.length
        return pieces

    def _note_queue_wait(self, queued_since: Optional[int]) -> None:
        """Record the queue span of a pipelined request.

        The pipeline passes the batch's earliest enqueue time; the span
        is retro-dated to it so the trace tree reads disk_service →
        queue → simdisk and the queue span's duration *is* the wait.
        Direct (non-pipelined) calls pass None and trace nothing.
        """
        if queued_since is None:
            return
        with self.tracer.span("queue", "wait", disk=self.disk.disk_id) as handle:
            if handle is not NULL_SPAN:
                handle.span.start_us = min(queued_since, handle.span.start_us)

    def _drain_pending(self) -> None:
        pending, self._pending_stable = self._pending_stable, []
        for key, data in pending:
            self.stable.put(key, data)

    def _check_extent(self, extent: Extent) -> None:
        if extent.end > self.n_fragments:
            raise BadAddressError(
                f"extent {extent} beyond disk of {self.n_fragments} fragments"
            )

    def __repr__(self) -> str:
        return (
            f"DiskServer(disk={self.disk.disk_id!r}, "
            f"free={self.bitmap.free_count}/{self.n_fragments} fragments)"
        )
