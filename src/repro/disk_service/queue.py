"""Per-disk request queue of the overlapped service pipeline.

The paper's disk server "performs disk scheduling": requests from many
client processes queue at the drive and the server chooses the service
order.  A :class:`DiskRequest` captures one ``get``/``put`` with
everything a :class:`~repro.disk_service.scheduler.DiskScheduler`
needs to order it — arrival sequence number (the deterministic
tie-breaker), target extent (seek position), enqueue time (aging) —
plus the :class:`~repro.simkernel.future.Completion` its caller holds.

The queue itself is a plain arrival-ordered list: policy lives in the
scheduler, bookkeeping lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis import monitor as _monitor
from repro.disk_service.addresses import Extent
from repro.disk_service.server import Source, Stability, SyncMode
from repro.simkernel.future import Completion


@dataclass(slots=True)
class DiskRequest:
    """One queued disk-server operation awaiting service.

    Attributes:
        seq: arrival sequence number, unique per queue — the only
            tie-breaker schedulers may use (never dict order).
        kind: ``"get"`` or ``"put"``.
        extent: the contiguous fragment run addressed.
        enqueued_at_us: simulated arrival time (drives aging bounds and
            the ``disk_service.queue_wait_us`` histogram).
        completion: settled when service finishes (or fails).
        data: payload for puts.
        source / use_cache: get options (see :class:`DiskServer.get`).
        stability / sync: put options (see :class:`DiskServer.put`).
        low_priority: background work (the scrubber's reads) — served
            only while no foreground request is pending, and never
            coalesced into a foreground batch.
        submit_task: analysis-monitor task that pushed the request
            (0 outside analysis runs); the pipeline's service batch is
            happens-before-ordered after every pending submitter.
    """

    seq: int
    kind: str
    extent: Extent
    enqueued_at_us: int
    completion: Completion = field(default_factory=Completion)
    data: Optional[bytes] = None
    source: Source = Source.MAIN
    use_cache: bool = True
    stability: Stability = Stability.ORIGINAL_ONLY
    sync: SyncMode = SyncMode.AFTER_STABLE
    low_priority: bool = False
    submit_task: int = 0

    def coalescable(self) -> bool:
        """Whether this request may legally merge with an adjacent one.

        Reads coalesce only from main storage (a stable read must hit
        the mirrored store for exactly its own key); writes coalesce
        only at ``ORIGINAL_ONLY`` stability — a stable-bound put has a
        per-extent stable-storage identity and a recovery ordering
        (bitmap checkpoint first) that a merged reference must not
        blur.  DESIGN.md §10 states the legality argument.
        """
        if self.kind == "get":
            return self.source is Source.MAIN
        return self.stability is Stability.ORIGINAL_ONLY

    def wait_us(self, now_us: int) -> int:
        """Queue wait accumulated by ``now_us``."""
        return now_us - self.enqueued_at_us


class RequestQueue:
    """Arrival-ordered pending requests of one disk server."""

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending: List[DiskRequest] = []

    def push(self, request: DiskRequest) -> None:
        mon = _monitor.active()
        request.submit_task = mon.current()
        mon.write(self, request.seq, site="queue.push")
        self._pending.append(request)

    def remove(self, request: DiskRequest) -> None:
        _monitor.active().write(self, request.seq, site="queue.remove")
        self._pending.remove(request)

    def pending(self) -> Tuple[DiskRequest, ...]:
        """A snapshot in arrival order (schedulers must not mutate it)."""
        return tuple(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __repr__(self) -> str:
        return f"RequestQueue({len(self._pending)} pending)"
