"""Pluggable disk-scheduling policies for the request pipeline.

A :class:`DiskScheduler` decides, each time the drive goes idle, which
queued request (or coalesced batch of requests) is served next:

* :class:`FcfsScheduler` — arrival order; the fairness baseline and
  the behaviour the serialized pre-pipeline code path implied.
* :class:`ScanScheduler` — the elevator: serve the pending request
  nearest to the head in the current sweep direction, reversing at the
  edges.  Seek-optimal under contention, but a pure elevator can
  starve a request parked behind a hot cylinder, so an **aging bound**
  promotes any request that has waited at least ``aging_bound_us`` to
  strict FCFS service (oldest first).  The bound is the rule's whole
  contract: a test can assert no wait ever exceeds it by more than one
  in-flight service.
* :class:`CoalescingScheduler` — wraps another policy and, after it
  picks, merges queued requests for *adjacent* extents of the same
  kind into one batch the pipeline serves as **one disk reference** —
  the paper's §4 one-reference property applied to the queue itself.

Every choice is deterministic: ordering keys are (distance, seq) or
(age, seq), never wall clock, dict order, or object identity.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.disk_service.queue import DiskRequest, RequestQueue

#: Maps a sector number to its cylinder (bound from the disk geometry).
CylinderOf = Callable[[int], int]

#: Default promotion bound: about 45 revolutions of the modelled drive.
DEFAULT_AGING_BOUND_US = 500_000


class DiskScheduler:
    """Base policy: pick the next batch to serve from a queue.

    ``take`` removes and returns the chosen requests; a batch longer
    than one is served as a single coalesced disk reference.
    """

    name = "base"

    def take(
        self,
        queue: RequestQueue,
        *,
        head_cylinder: int,
        now_us: int,
        cylinder_of: CylinderOf,
    ) -> List[DiskRequest]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class FcfsScheduler(DiskScheduler):
    """First-come-first-served: strict arrival order."""

    name = "fcfs"

    def take(
        self,
        queue: RequestQueue,
        *,
        head_cylinder: int,
        now_us: int,
        cylinder_of: CylinderOf,
    ) -> List[DiskRequest]:
        pending = queue.pending()
        chosen = min(pending, key=lambda request: request.seq)
        queue.remove(chosen)
        return [chosen]


class ScanScheduler(DiskScheduler):
    """The elevator with an aging bound against starvation."""

    name = "scan"

    def __init__(self, *, aging_bound_us: int = DEFAULT_AGING_BOUND_US) -> None:
        if aging_bound_us < 0:
            raise ValueError("aging bound cannot be negative")
        self.aging_bound_us = aging_bound_us
        self._direction = 1  # +1 sweeping toward higher cylinders

    def take(
        self,
        queue: RequestQueue,
        *,
        head_cylinder: int,
        now_us: int,
        cylinder_of: CylinderOf,
    ) -> List[DiskRequest]:
        pending = queue.pending()
        chosen = self.select(
            pending,
            head_cylinder=head_cylinder,
            now_us=now_us,
            cylinder_of=cylinder_of,
        )
        queue.remove(chosen)
        return [chosen]

    def select(
        self,
        pending: tuple,
        *,
        head_cylinder: int,
        now_us: int,
        cylinder_of: CylinderOf,
    ) -> DiskRequest:
        """The elevator/aging choice without dequeueing (test hook)."""
        aged = [
            request
            for request in pending
            if request.wait_us(now_us) >= self.aging_bound_us
        ]
        if aged:
            # Starvation valve: past the bound, seniority outranks seeks.
            return min(aged, key=lambda request: request.seq)
        keyed = [
            (cylinder_of(request.extent.first_sector), request) for request in pending
        ]
        ahead = [
            (cylinder, request)
            for cylinder, request in keyed
            if (cylinder - head_cylinder) * self._direction >= 0
        ]
        if not ahead:
            self._direction = -self._direction
            ahead = keyed
        _, chosen = min(
            ahead,
            key=lambda pair: (abs(pair[0] - head_cylinder), pair[1].seq),
        )
        return chosen


class CoalescingScheduler(DiskScheduler):
    """Adjacent-extent coalescing around an inner policy.

    After the inner policy picks, queued requests whose extents extend
    the picked run contiguously (same kind, coalescable flags — see
    :meth:`DiskRequest.coalescable`) join the batch, greedily in both
    directions, lowest arrival sequence first among equal extensions.
    The pipeline serves the whole batch in one disk reference.
    """

    def __init__(
        self,
        inner: Optional[DiskScheduler] = None,
        *,
        max_batch: int = 16,
    ) -> None:
        if max_batch < 1:
            raise ValueError("batch limit must allow at least one request")
        self.inner = inner or ScanScheduler()
        self.max_batch = max_batch
        self.name = f"{self.inner.name}+coalesce"

    def take(
        self,
        queue: RequestQueue,
        *,
        head_cylinder: int,
        now_us: int,
        cylinder_of: CylinderOf,
    ) -> List[DiskRequest]:
        batch = self.inner.take(
            queue,
            head_cylinder=head_cylinder,
            now_us=now_us,
            cylinder_of=cylinder_of,
        )
        seed = batch[0]
        if not seed.coalescable():
            return batch
        start, end = seed.extent.start, seed.extent.end
        extended = True
        while extended and len(batch) < self.max_batch:
            extended = False
            for request in queue.pending():  # arrival order: seq ties resolved
                if request.kind != seed.kind or not request.coalescable():
                    continue
                if seed.kind == "get" and request.use_cache != seed.use_cache:
                    continue
                if request.extent.start == end:
                    end = request.extent.end
                elif request.extent.end == start:
                    start = request.extent.start
                else:
                    continue
                queue.remove(request)
                batch.append(request)
                extended = True
                break
        return batch


def make_scheduler(
    name: str, *, aging_bound_us: int = DEFAULT_AGING_BOUND_US
) -> DiskScheduler:
    """Build a scheduler from its config name.

    Known names: ``fcfs``, ``scan``, ``scan+coalesce``.
    """
    if name == "fcfs":
        return FcfsScheduler()
    if name == "scan":
        return ScanScheduler(aging_bound_us=aging_bound_us)
    if name == "scan+coalesce":
        return CoalescingScheduler(ScanScheduler(aging_bound_us=aging_bound_us))
    raise ValueError(
        f"unknown disk scheduler {name!r} (known: fcfs, scan, scan+coalesce)"
    )
