"""The disk service's track cache.

Paper section 4: "the RHODOS disk service implements its own caching
strategy.  This service retrieves only those blocks/fragments from a
disk track which are necessary to immediately fulfill the requirement
of a read request.  Then the disk service caches the rest of the data
from the same track ... in order to satisfy any subsequent requests to
read data from blocks/fragments pertaining to the same track."

The cache is sector-granular, evicted track-at-a-time in LRU order.
Writes go through to the disk and update any cached copy, so the cache
is never stale.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.analysis import monitor as _monitor
from repro.common.errors import SectorAlignmentError
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER, Tracer
from repro.simdisk.disk import SimDisk


class TrackCache:
    """LRU cache of disk sectors with rest-of-track readahead.

    Args:
        disk: the disk being cached.
        metrics: counter registry (counters under ``<name>.*``).
        capacity_tracks: maximum tracks held before LRU eviction.
        readahead: cache the rest of the final track of each missed
            read (the paper's strategy); disable to measure its value
            (experiment E14).
        name: metric prefix, e.g. ``disk_cache.0``.
        tracer: annotates the enclosing disk-service span with this
            cache's hit/miss verdict; disabled by default.
    """

    def __init__(
        self,
        disk: SimDisk,
        metrics: Metrics,
        *,
        capacity_tracks: int = 128,
        readahead: bool = True,
        name: str = "disk_cache",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.disk = disk
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.capacity_tracks = max(1, capacity_tracks)
        self.readahead = readahead
        self.name = name
        self._c_hits = metrics.counter(f"{name}.hits")
        self._c_misses = metrics.counter(f"{name}.misses")
        # track -> {sector -> data}; OrderedDict gives LRU order.
        self._tracks: "OrderedDict[int, Dict[int, bytes]]" = OrderedDict()

    # ------------------------------------------------------------ api

    def read(self, start: int, n_sectors: int) -> bytes:
        """Read sectors through the cache.

        A fully cached request is a hit (no disk reference).  On a miss
        the needed range is read in one disk reference and, with
        readahead on, the remainder of the last track is captured in
        passing and cached.
        """
        _monitor.active().read(self, start, start + n_sectors, site="cache.read")
        if self._all_cached(start, n_sectors):
            self._c_hits.add()
            if self.tracer.enabled:
                self.tracer.annotate("track_cache", "hit")
            self._touch(start, n_sectors)
            return self._assemble(start, n_sectors)
        self._c_misses.add()
        if self.tracer.enabled:
            self.tracer.annotate("track_cache", "miss")
        data = self.disk.read_sectors(start, n_sectors)
        self._store(start, data)
        if self.readahead:
            self._readahead_rest_of_track(start + n_sectors - 1)
        return data

    def write_through(self, start: int, data: bytes) -> None:
        """Write to disk and refresh any cached copies of these sectors.

        The payload must be a whole number of sectors: the refresh loop
        is sector-granular, so a partial tail could never update its
        cached sector and would leave a stale suffix to be served by
        later reads.  Misaligned payloads raise
        :class:`~repro.common.errors.SectorAlignmentError` before any
        byte reaches disk or cache.
        """
        size = self.disk.geometry.sector_size
        if len(data) == 0 or len(data) % size != 0:
            raise SectorAlignmentError(
                f"{self.name}: write of {len(data)} bytes at sector {start} "
                f"is not a positive multiple of the {size}-byte sector size"
            )
        _monitor.active().write(
            self, start, start + len(data) // size, site="cache.write_through"
        )
        self.disk.write_sectors(start, data)
        for index in range(len(data) // size):
            sector = start + index
            track = self.disk.track_of(sector)
            cached = self._tracks.get(track)
            if cached is not None and sector in cached:
                cached[sector] = bytes(data[index * size : (index + 1) * size])

    def invalidate(self) -> None:
        """Drop every cached sector (e.g. after disk recovery)."""
        _monitor.active().write_all(self, site="cache.invalidate")
        self._tracks.clear()

    def drop_sectors(self, start: int, n_sectors: int) -> int:
        """Evict a sector range (a read of it failed verification).

        The disk server calls this before raising
        :class:`~repro.common.errors.ChecksumError`: bytes that failed
        their checksum must never be served from the cache later, and a
        miss-path read may already have stored them.  Returns how many
        cached sectors were dropped.
        """
        _monitor.active().write(
            self, start, start + n_sectors, site="cache.drop_sectors"
        )
        dropped = 0
        for sector in range(start, start + n_sectors):
            track = self.disk.track_of(sector)
            cached = self._tracks.get(track)
            if cached is not None and cached.pop(sector, None) is not None:
                dropped += 1
                if not cached:
                    del self._tracks[track]
        if dropped:
            self.metrics.add(f"{self.name}.verification_drops", dropped)
        return dropped

    def cached_sector_count(self) -> int:
        return sum(len(sectors) for sectors in self._tracks.values())

    # ------------------------------------------------------ internal

    def _all_cached(self, start: int, n_sectors: int) -> bool:
        for sector in range(start, start + n_sectors):
            track = self.disk.track_of(sector)
            cached = self._tracks.get(track)
            if cached is None or sector not in cached:
                return False
        return True

    def _assemble(self, start: int, n_sectors: int) -> bytes:
        pieces = []
        for sector in range(start, start + n_sectors):
            track = self.disk.track_of(sector)
            pieces.append(self._tracks[track][sector])
        return b"".join(pieces)

    def _touch(self, start: int, n_sectors: int) -> None:
        seen = set()
        for sector in range(start, start + n_sectors):
            track = self.disk.track_of(sector)
            if track not in seen:
                seen.add(track)
                self._tracks.move_to_end(track)

    def _store(self, start: int, data: bytes) -> None:
        size = self.disk.geometry.sector_size
        _monitor.active().write(
            self, start, start + len(data) // size, site="cache.store"
        )
        for index in range(len(data) // size):
            sector = start + index
            track = self.disk.track_of(sector)
            bucket = self._tracks.get(track)
            if bucket is None:
                bucket = {}
                self._tracks[track] = bucket
                self._evict_if_needed()
            else:
                self._tracks.move_to_end(track)
            bucket[sector] = bytes(data[index * size : (index + 1) * size])

    def _readahead_rest_of_track(self, last_sector: int) -> None:
        track = self.disk.track_of(last_sector)
        _, track_end = self.disk.track_bounds(track)
        first_uncovered = last_sector + 1
        if first_uncovered >= track_end:
            return
        rest = self.disk.read_in_passing(first_uncovered, track_end - first_uncovered)
        self._store(first_uncovered, rest)

    def _evict_if_needed(self) -> None:
        while len(self._tracks) > self.capacity_tracks:
            self._tracks.popitem(last=False)
            self.metrics.add(f"{self.name}.evictions")
