"""The 64x64 free-extent array.

Paper section 4: "the disk server also maintains a two dimensional
array of the order of 64 rows and 64 columns for the maintenance of
free spaces in the disk ... The first row stores the references to
single free fragments available on the disk.  Each element of the
second row is a reference to a group of two contiguous free fragments
... and so on.  The objective of this array is to check quickly whether
a requested number of contiguous fragments or blocks are available or
not."

Row *r* (1-based) holds references (start fragment numbers) to free
runs of exactly *r* contiguous fragments; the last row holds runs of
*at least* ``rows`` fragments (their exact length is read back from the
bitmap, which is authoritative).  Each row holds at most ``columns``
references — overflowing runs are simply not indexed and are found
again by a bitmap rescan (:meth:`refill`) when the table runs dry.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis import monitor as _monitor
from repro.disk_service.addresses import Extent
from repro.disk_service.bitmap import FragmentBitmap


class FreeExtentTable:
    """Constant-time index of free runs by length.

    The table is a cache over the bitmap: every entry must correspond
    to a maximal free run in the bitmap, but not every free run need be
    in the table (rows have bounded capacity).  :meth:`check_against`
    verifies the invariant and is used by the property tests.
    """

    def __init__(self, rows: int = 64, columns: int = 64) -> None:
        if rows < 1 or columns < 1:
            raise ValueError("table dimensions must be positive")
        self.rows = rows
        self.columns = columns
        self._rows: List[List[int]] = [[] for _ in range(rows)]
        self._row_of: Dict[int, int] = {}  # run start -> row index holding it

    # ------------------------------------------------------ indexing

    def _row_index(self, run_length: int) -> int:
        """Row that indexes runs of ``run_length`` fragments."""
        return min(run_length, self.rows) - 1

    def insert_run(self, start: int, run_length: int) -> bool:
        """Index a maximal free run; returns False if its row is full."""
        if run_length < 1:
            raise ValueError("run length must be >= 1")
        _monitor.active().write(self, start, site="extent_table.insert_run")
        if start in self._row_of:
            self.remove_run(start)
        row = self._row_index(run_length)
        if len(self._rows[row]) >= self.columns:
            return False
        self._rows[row].append(start)
        self._row_of[start] = row
        return True

    def remove_run(self, start: int) -> bool:
        """Drop the entry whose run begins at ``start`` (if indexed)."""
        _monitor.active().write(self, start, site="extent_table.remove_run")
        row = self._row_of.pop(start, None)
        if row is None:
            return False
        self._rows[row].remove(start)
        return True

    def contains_run(self, start: int) -> bool:
        return start in self._row_of

    # ---------------------------------------------------- allocation

    def take_run(
        self,
        n_fragments: int,
        bitmap: FragmentBitmap,
        *,
        prefer_high: bool = False,
    ) -> Optional[Extent]:
        """Pop the best-fitting indexed run of >= ``n_fragments``.

        Scans rows from the exact-fit row upward (the paper's quick
        check), preferring the smallest adequate run so large runs
        survive for large requests.  The popped run is returned whole
        (its maximal extent per the bitmap); the caller allocates a
        prefix and re-inserts the remainder.  Returns None if the table
        has no adequate entry — the caller then refills from the bitmap
        and retries.

        ``prefer_high`` picks the highest-addressed adequate run instead
        of the first: used for scratch allocations (tentative data
        items, shadow pages) so they stay away from the low-address
        region where files grow contiguously.
        """
        if n_fragments < 1:
            raise ValueError("must request at least one fragment")
        _monitor.active().read_all(self, site="extent_table.take_run")
        first_row = self._row_index(n_fragments)
        for row in range(first_row, self.rows):
            if not self._rows[row]:
                continue
            if row == self.rows - 1 and n_fragments >= self.rows:
                # Oversize request: entries here are ">= rows" long; find
                # one actually long enough.
                candidates = [
                    start
                    for start in self._rows[row]
                    if bitmap.run_length_at(start) >= n_fragments
                ]
                if not candidates:
                    continue
                start = max(candidates) if prefer_high else candidates[0]
                self.remove_run(start)
                return Extent(start, bitmap.run_length_at(start))
            start = (
                max(self._rows[row]) if prefer_high else self._rows[row][0]
            )
            self.remove_run(start)
            true_length = bitmap.run_length_at(start)
            if true_length < n_fragments:
                # Stale entry (should not happen if callers maintain the
                # table); re-index at its true length and keep looking.
                if true_length > 0:
                    self.insert_run(start, true_length)
                continue
            return Extent(start, true_length)
        return None

    def take_largest(self, bitmap: FragmentBitmap) -> Optional[Extent]:
        """Pop the largest indexed run (used by non-contiguous gathering)."""
        _monitor.active().read_all(self, site="extent_table.take_largest")
        for row in range(self.rows - 1, -1, -1):
            if not self._rows[row]:
                continue
            best_start = max(self._rows[row], key=bitmap.run_length_at)
            self.remove_run(best_start)
            true_length = bitmap.run_length_at(best_start)
            if true_length == 0:
                continue
            return Extent(best_start, true_length)
        return None

    def has_run(self, n_fragments: int) -> bool:
        """The paper's quick availability check: any indexed run adequate?"""
        _monitor.active().read_all(self, site="extent_table.has_run")
        first_row = self._row_index(n_fragments)
        return any(self._rows[row] for row in range(first_row, self.rows))

    # -------------------------------------------------------- refill

    def refill(self, bitmap: FragmentBitmap) -> int:
        """Rebuild the table by scanning the bitmap; returns runs indexed."""
        self.clear()
        indexed = 0
        for run in bitmap.free_runs():
            if self.insert_run(run.start, run.length):
                indexed += 1
        return indexed

    def clear(self) -> None:
        _monitor.active().write_all(self, site="extent_table.clear")
        for row in self._rows:
            row.clear()
        self._row_of.clear()

    # ------------------------------------------------------- checks

    def entry_count(self) -> int:
        return len(self._row_of)

    def row_sizes(self) -> List[int]:
        return [len(row) for row in self._rows]

    def check_against(self, bitmap: FragmentBitmap) -> None:
        """Assert every entry matches a maximal free run in the bitmap.

        Raises AssertionError on violation; used by tests.
        """
        for start, row in self._row_of.items():
            true_length = bitmap.run_length_at(start)
            assert true_length > 0, f"table entry {start} is not free in bitmap"
            assert start == 0 or not bitmap.is_free(start - 1), (
                f"table entry {start} is not the start of a maximal run"
            )
            expected_row = self._row_index(true_length)
            assert row == expected_row, (
                f"run at {start} has length {true_length} but sits in row "
                f"{row + 1} (expected row {expected_row + 1})"
            )

    def __repr__(self) -> str:
        populated = sum(1 for row in self._rows if row)
        return (
            f"FreeExtentTable({self.rows}x{self.columns}, "
            f"{self.entry_count()} runs in {populated} rows)"
        )
