"""The background scrubber: find latent media failures before clients do.

Checksums (DESIGN.md §11) turn silent corruption into
:class:`~repro.common.errors.ChecksumError` — but only when somebody
reads the data.  Cold data can rot for months; the PAPERS.md Linux RAID
study's conclusion is that detection must be *proactive* and paired
with repair-from-redundancy.  A :class:`Scrubber` walks one volume's
allocated fragments in cursor order, a bounded slice per ``step()``:

* **mirror pass** (once per cycle) — every *mirrored* extent (last put
  was ``Stability.BOTH``, so stable legitimately equals main) is
  byte-compared against its stable copy; a divergence is repaired in
  place via :meth:`DiskServer.repair_from_stable`.  The repair write
  goes through the ordinary put machinery, so it is a numbered crash
  point — the chaos sweep's ``scrub-repair`` workload proves scrubbing
  is itself crash-safe.
* **verify pass** — each checksummed fragment is re-read with the cache
  bypassed; a :class:`~repro.common.errors.ChecksumError` or
  :class:`~repro.common.errors.MediaError` becomes a
  :class:`ScrubFinding`.  Mirrored fragments are repaired locally;
  anything else is reported through the ``on_corruption`` callback so a
  higher layer (replication, via the recovery health machinery) can
  repair from a peer replica — the disk service cannot import
  replication (layering), so repair-from-replica is the caller's hook.

Scheduling: with a :class:`~repro.disk_service.pipeline.DiskPipeline`
attached, scrub reads are submitted ``low_priority`` — the pipeline
serves them only from idle slots — and ``step()`` refuses to start at
all while the pipeline is busy.  Without a pipeline, reads are direct
blocking gets (the chaos workloads' configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.errors import ChecksumError, DiskError, MediaError
from repro.disk_service.addresses import Extent
from repro.disk_service.server import DiskServer, Source
from repro.simkernel.future import wait


@dataclass(frozen=True)
class ScrubFinding:
    """One latent fault the scrubber detected on its walk."""

    kind: str  # "checksum" | "media" | "mirror-divergence"
    extent: Extent
    repaired: bool
    detail: str = ""


class Scrubber:
    """Cursor-driven background verification of one disk server.

    Args:
        server: the volume's disk server.
        fragments_per_step: walk budget of one ``step()`` call — the
            knob trading scrub cycle time against burst length.
        repair: repair mirrored extents in place (False = report only).
        on_corruption: called with each finding the scrubber cannot
            repair locally (non-mirrored rot / media errors) — the hook
            replication-level repair plugs into.
    """

    def __init__(
        self,
        server: DiskServer,
        *,
        fragments_per_step: int = 64,
        repair: bool = True,
        on_corruption: Optional[Callable[[ScrubFinding], None]] = None,
    ) -> None:
        if fragments_per_step < 1:
            raise ValueError("a scrub step must cover at least one fragment")
        self.server = server
        self.fragments_per_step = fragments_per_step
        self.repair = repair
        self.on_corruption = on_corruption
        self.findings: List[ScrubFinding] = []
        self.cycles_completed = 0
        self._cursor = 0
        self._prefix = f"scrub.{server.disk.disk_id}"
        self.metrics = server.metrics

    # ------------------------------------------------------- driving

    def step(self, *, force: bool = False) -> List[ScrubFinding]:
        """Scrub the next slice of the volume; returns new findings.

        A no-op while the attached pipeline has foreground work queued
        (``force=True`` overrides — used by :meth:`run_cycle` and by
        recovery-time re-scrubs where there is no foreground).
        """
        pipeline = self.server.pipeline
        if not force and pipeline is not None and pipeline.busy:
            self.metrics.add(f"{self._prefix}.steps_yielded")
            return []
        found: List[ScrubFinding] = []
        if self._cursor == 0:
            found.extend(self._scrub_mirrored())
        end = min(self._cursor + self.fragments_per_step, self.server.n_fragments)
        for fragment in range(self._cursor, end):
            finding = self._verify_fragment(fragment)
            if finding is not None:
                found.append(finding)
        self._cursor = end
        if self._cursor >= self.server.n_fragments:
            self._cursor = 0
            self.cycles_completed += 1
            self.metrics.add(f"{self._prefix}.cycles")
        self.metrics.add(f"{self._prefix}.steps")
        self.findings.extend(found)
        return found

    def run_cycle(self) -> List[ScrubFinding]:
        """Drive ``step`` until one full cycle completes; its findings."""
        target = self.cycles_completed + 1
        found: List[ScrubFinding] = []
        while self.cycles_completed < target:
            found.extend(self.step(force=True))
        return found

    # ------------------------------------------------------- passes

    def _scrub_mirrored(self) -> List[ScrubFinding]:
        """Byte-compare every mirrored extent against its stable copy."""
        found: List[ScrubFinding] = []
        for start, length in self.server.mirrored_extents():
            extent = Extent(start, length)
            try:
                expected = self.server.get(extent, source=Source.STABLE)
            except (KeyError, DiskError):
                # Released concurrently, or both mirrors unreadable:
                # nothing to compare against this cycle.
                self.metrics.add(f"{self._prefix}.mirror_skips")
                continue
            try:
                actual = self._read(extent)
            except MediaError:
                actual = None
            if actual == expected:
                self.metrics.add(f"{self._prefix}.mirrors_verified")
                continue
            repaired = False
            detail = "unreadable" if actual is None else "diverged from stable"
            if self.repair:
                repaired = self._repair_mirrored(extent, expected)
            found.append(
                ScrubFinding(
                    kind="mirror-divergence",
                    extent=extent,
                    repaired=repaired,
                    detail=detail,
                )
            )
        return found

    def _verify_fragment(self, fragment: int) -> Optional[ScrubFinding]:
        server = self.server
        if server.is_fragment_free(fragment):
            return None
        if not server.has_checksum(fragment):
            return None
        extent = Extent(fragment, 1)
        try:
            self._read(extent)
            self.metrics.add(f"{self._prefix}.fragments_verified")
            return None
        except ChecksumError as exc:
            kind, detail = "checksum", str(exc)
        except MediaError as exc:
            kind, detail = "media", str(exc)
        repaired = False
        if self.repair and server.is_mirrored_fragment(fragment):
            covering = next(
                (
                    (start, length)
                    for start, length in server.mirrored_extents()
                    if start <= fragment < start + length
                ),
                None,
            )
            if covering is not None:
                repaired = self._repair_mirrored(Extent(*covering), None)
        finding = ScrubFinding(
            kind=kind, extent=extent, repaired=repaired, detail=detail
        )
        if not repaired and self.on_corruption is not None:
            self.on_corruption(finding)
        return finding

    # ------------------------------------------------------ internal

    def _read(self, extent: Extent) -> bytes:
        """One verification read: low-priority when pipelined."""
        server = self.server
        if server.pipeline is not None:
            completion = server.submit_get(
                extent, use_cache=False, low_priority=True
            )
            return wait(server.pipeline.loop, completion)
        return server.get(extent, use_cache=False)

    def _repair_mirrored(
        self, extent: Extent, expected: Optional[bytes]
    ) -> bool:
        """Repair one mirrored extent; True once the re-read verifies."""
        server = self.server
        try:
            written = server.repair_from_stable(extent)
        except (KeyError, DiskError):
            self.metrics.add(f"{self._prefix}.repair_failures")
            return False
        if expected is not None and written != expected:
            self.metrics.add(f"{self._prefix}.repair_failures")
            return False
        try:
            verified = self._read(extent) == written
        except MediaError:
            verified = False
        self.metrics.add(
            f"{self._prefix}.repairs" if verified
            else f"{self._prefix}.repair_failures"
        )
        return verified
