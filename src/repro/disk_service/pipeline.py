"""The overlapped request pipeline of one disk server.

``DiskPipeline`` turns the disk server's blocking ``get``/``put`` into
a queued, schedulable service: ``submit_get``/``submit_put`` enqueue a
:class:`~repro.disk_service.queue.DiskRequest` and return a
:class:`~repro.simkernel.future.Completion`; whenever the drive is
idle the pluggable :class:`~repro.disk_service.scheduler.DiskScheduler`
picks the next request (or coalesced batch), the pipeline executes it
inside a deferred-time :func:`~repro.simdisk.timeline.service_frame`
(charging the disk's timeline, not the global clock), and the
completion is delivered by the shared event loop at the modelled
finish time.  Because every disk has its own timeline, requests to
different disks overlap: N drives draining N queues cost the max of
their busy periods, not the sum.

Determinism: requests are numbered at submission; schedulers break
ties by that number; completions of one batch settle in ascending
sequence order; the event loop orders equal-time events by scheduling
order.  Nothing consults wall clock or dict order.

Crash semantics: physical writes still happen at queue-drain time
through the same ``note_write``-hooked primitives, so every crash
point the chaos sweep enumerates keeps firing — a crash mid-batch
tears the one merged reference and fails every rider's completion.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis import monitor as _monitor
from repro.disk_service.addresses import Extent
from repro.disk_service.queue import DiskRequest, RequestQueue
from repro.disk_service.scheduler import DiskScheduler, FcfsScheduler
from repro.disk_service.server import DiskServer, Source, Stability, SyncMode
from repro.simdisk.timeline import service_frame
from repro.simkernel.future import Completion
from repro.simkernel.loop import EventLoop

#: One request's service outcome: ("ok", value) or ("error", exception).
Outcome = Tuple[str, object]


class _PriorityView:
    """One priority class of a queue, presented as a queue.

    Exposes exactly the surface schedulers use — ``pending()`` and
    ``remove()`` — filtered to one class; removals fall through to the
    real queue.  ``__bool__`` answers "does this class have work".
    """

    def __init__(self, queue: RequestQueue, *, low_priority: bool) -> None:
        self._queue = queue
        self._low_priority = low_priority

    def pending(self) -> Tuple[DiskRequest, ...]:
        return tuple(
            request
            for request in self._queue.pending()
            if request.low_priority == self._low_priority
        )

    def remove(self, request: DiskRequest) -> None:
        self._queue.remove(request)

    def __len__(self) -> int:
        return len(self.pending())

    def __bool__(self) -> bool:
        return any(
            request.low_priority == self._low_priority
            for request in self._queue.pending()
        )


class DiskPipeline:
    """Queue + scheduler + deferred completion for one disk server.

    Args:
        server: the disk server whose operations are queued.
        loop: shared event loop delivering completions in time order.
        scheduler: service-order policy (FCFS when omitted).

    Attaching a pipeline registers it on the server, enabling
    ``server.submit_get`` / ``server.submit_put``.
    """

    def __init__(
        self,
        server: DiskServer,
        loop: EventLoop,
        scheduler: Optional[DiskScheduler] = None,
    ) -> None:
        self.server = server
        self.loop = loop
        self.scheduler = scheduler or FcfsScheduler()
        self.queue = RequestQueue()
        self.clock = server.clock
        self.metrics = server.metrics
        self._seq = 0
        self._in_service = False
        self._disk_prefix = f"disk.{server.disk.disk_id}"
        self._server_prefix = f"disk_server.{server.disk.disk_id}"
        # Pre-bound instrument handles: submission and drain run once
        # per request, so none of them may format metric names.
        self._c_submissions = self.metrics.counter(
            f"{self._server_prefix}.submissions"
        )
        self._c_coalesced_requests = self.metrics.counter(
            f"{self._server_prefix}.coalesced_requests"
        )
        self._g_queue_depth = self.metrics.gauge_handle(
            f"{self._disk_prefix}.queue_depth"
        )
        self._h_queue_wait_us = self.metrics.histogram_handle(
            "disk_service.queue_wait_us"
        )
        # Analysis-monitor bookkeeping (idle outside analysis runs):
        # the previous service batch's task (scheduler dequeue-order
        # chain) and the finish tasks drain() must rejoin against.
        self._last_batch_task = 0
        self._finish_tasks: List[int] = []
        server.pipeline = self

    # ----------------------------------------------------- submission

    def submit_get(
        self,
        extent: Extent,
        *,
        source: Source = Source.MAIN,
        use_cache: bool = True,
        low_priority: bool = False,
    ) -> Completion:
        """Enqueue a read; the completion resolves to its bytes."""
        return self._submit(
            DiskRequest(
                seq=self._next_seq(),
                kind="get",
                extent=extent,
                enqueued_at_us=self.clock.now_us,
                source=source,
                use_cache=use_cache,
                low_priority=low_priority,
            )
        )

    def submit_put(
        self,
        extent: Extent,
        data: bytes,
        *,
        stability: Stability = Stability.ORIGINAL_ONLY,
        sync: SyncMode = SyncMode.AFTER_STABLE,
    ) -> Completion:
        """Enqueue a write; the completion resolves to None."""
        return self._submit(
            DiskRequest(
                seq=self._next_seq(),
                kind="put",
                extent=extent,
                enqueued_at_us=self.clock.now_us,
                data=data,
                stability=stability,
                sync=sync,
            )
        )

    @property
    def depth(self) -> int:
        """Requests currently queued (the one in service excluded)."""
        return len(self.queue)

    @property
    def busy(self) -> bool:
        """Whether any request is queued or in service.

        The scrubber's idle gate: a ``step()`` only proceeds when this
        is False, so background verification never delays foreground
        traffic that is already waiting.
        """
        return self._in_service or bool(self.queue)

    def drain(self) -> None:
        """Run the loop until this pipeline is fully idle (test helper)."""
        self.loop.run_until(lambda: not self.queue and not self._in_service)
        mon = _monitor.active()
        if mon.enabled and self._finish_tasks:
            # The drainer sees every batch this pipeline finished.
            mon.rejoin("pipeline.drain", after=tuple(self._finish_tasks))
            self._finish_tasks = []

    # ------------------------------------------------------- internal

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _submit(self, request: DiskRequest) -> Completion:
        self.queue.push(request)
        self._c_submissions.add()
        self._g_queue_depth.set(len(self.queue))
        self._pump()
        return request.completion

    def _pump(self) -> None:
        if self._in_service or not self.queue:
            return
        disk = self.server.disk
        # Two-class priority: whenever any foreground request is
        # pending the scheduler only sees the foreground view, so
        # low-priority (scrub) requests are served strictly from the
        # leftover idle slots and the two classes never share a batch.
        foreground = _PriorityView(self.queue, low_priority=False)
        view = foreground if foreground else _PriorityView(
            self.queue, low_priority=True
        )
        mon = _monitor.active()
        if mon.enabled:
            # Submit -> drain: the batch is ordered after every pending
            # submitter (the scheduler observes their queue entries) and
            # after the previous batch (dequeue order is a promise), but
            # NOT after the stack frame that happened to pump — bind is
            # False so a settle-time re-pump stays concurrent with
            # whatever its callbacks did.
            afters = {request.submit_task for request in self.queue.pending()}
            if self._last_batch_task:
                afters.add(self._last_batch_task)
            self._last_batch_task = mon.open_task(
                f"{self._server_prefix}.batch",
                after=sorted(afters),
                bind=False,
            )
        try:
            batch = self.scheduler.take(
                view,
                head_cylinder=disk.head_cylinder,
                now_us=self.clock.now_us,
                cylinder_of=disk.geometry.cylinder_of,
            )
            self._g_queue_depth.set(len(self.queue))
            now_us = self.clock.now_us
            for request in batch:
                self._h_queue_wait_us.observe(request.wait_us(now_us))
            if len(batch) > 1:
                self._c_coalesced_requests.add(len(batch) - 1)
            self._in_service = True
            with service_frame(self.clock) as frame:
                outcomes = self._execute(batch)
                end_us = max(frame.cursor_us, now_us)
            self.loop.call_at(end_us, lambda: self._finish(batch, outcomes))
        finally:
            if mon.enabled:
                mon.close_task()

    def _execute(self, batch: List[DiskRequest]) -> List[Outcome]:
        """Serve a batch as one disk reference; outcomes align to batch."""
        queued_since = min(request.enqueued_at_us for request in batch)
        try:
            if len(batch) == 1:
                request = batch[0]
                if request.kind == "get":
                    value: object = self.server._do_get(
                        request.extent,
                        source=request.source,
                        use_cache=request.use_cache,
                        queued_since=queued_since,
                    )
                else:
                    value = self.server._do_put(
                        request.extent,
                        request.data or b"",
                        stability=request.stability,
                        sync=request.sync,
                        queued_since=queued_since,
                    )
                return [("ok", value)]
            ordered = sorted(batch, key=lambda request: request.extent.start)
            merged = ordered[0].extent
            for request in ordered[1:]:
                merged = merged.merge(request.extent)
            if batch[0].kind == "get":
                blob = self.server._do_get(
                    merged,
                    source=Source.MAIN,
                    use_cache=batch[0].use_cache,
                    queued_since=queued_since,
                )
                by_seq = {
                    request.seq: merged.slice_bytes(blob, request.extent)
                    for request in batch
                }
                return [("ok", by_seq[request.seq]) for request in batch]
            payload = b"".join(request.data or b"" for request in ordered)
            self.server._do_put(
                merged,
                payload,
                stability=Stability.ORIGINAL_ONLY,
                sync=SyncMode.AFTER_STABLE,
                queued_since=queued_since,
            )
            return [("ok", None) for _ in batch]
        except Exception as error:  # noqa: BLE001 - delivered via completions
            # One reference, one fate: every rider of the batch fails.
            return [("error", error) for _ in batch]

    def _finish(self, batch: List[DiskRequest], outcomes: List[Outcome]) -> None:
        mon = _monitor.active()
        if mon.enabled:
            self._finish_tasks.append(mon.current())
        # Completions settle in ascending sequence order while the
        # pipeline still reads busy, so a callback that immediately
        # resubmits only enqueues; one pump then picks the next batch.
        for request, (status, value) in sorted(
            zip(batch, outcomes), key=lambda pair: pair[0].seq
        ):
            if status == "ok":
                request.completion.resolve(value)
            else:
                assert isinstance(value, BaseException)
                request.completion.fail(value)
        self._in_service = False
        self._pump()

    def __repr__(self) -> str:
        return (
            f"DiskPipeline(disk={self.server.disk.disk_id!r}, "
            f"policy={self.scheduler.name}, depth={len(self.queue)})"
        )
