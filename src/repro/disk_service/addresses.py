"""Fragment-granularity disk addressing.

The disk service's unit of allocation is the 2 KB fragment; a block is
four contiguous fragments (paper section 4).  An :class:`Extent` is a
contiguous run of fragments — the thing the paper's free-space array
indexes, and the thing one disk reference can transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import BadAddressError
from repro.common.units import (
    FRAGMENT_SIZE,
    FRAGMENTS_PER_BLOCK,
    SECTORS_PER_FRAGMENT,
)


@dataclass(frozen=True, slots=True, order=True)
class Extent:
    """A contiguous run of fragments: ``[start, start + length)``.

    Attributes:
        start: first fragment number.
        length: number of fragments (>= 1).
    """

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise BadAddressError(f"extent start must be >= 0, got {self.start}")
        if self.length < 1:
            raise BadAddressError(f"extent length must be >= 1, got {self.length}")

    # --------------------------------------------------------- bounds

    @property
    def end(self) -> int:
        """One past the last fragment."""
        return self.start + self.length

    @property
    def byte_size(self) -> int:
        return self.length * FRAGMENT_SIZE

    @property
    def first_sector(self) -> int:
        return self.start * SECTORS_PER_FRAGMENT

    @property
    def n_sectors(self) -> int:
        return self.length * SECTORS_PER_FRAGMENT

    @property
    def whole_blocks(self) -> int:
        """How many whole 8 KB blocks this extent covers."""
        return self.length // FRAGMENTS_PER_BLOCK

    # ----------------------------------------------------- relations

    def contains(self, other: "Extent") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Extent") -> bool:
        return self.start < other.end and other.start < self.end

    def adjacent_to(self, other: "Extent") -> bool:
        """True if the two extents touch without overlapping."""
        return self.end == other.start or other.end == self.start

    # --------------------------------------------------- subdivision

    def split(self, first_length: int) -> tuple["Extent", "Extent"]:
        """Split into a prefix of ``first_length`` fragments and the rest."""
        if not 0 < first_length < self.length:
            raise BadAddressError(
                f"cannot split extent of {self.length} at {first_length}"
            )
        return (
            Extent(self.start, first_length),
            Extent(self.start + first_length, self.length - first_length),
        )

    def take(self, length: int) -> "Extent":
        """The prefix of ``length`` fragments (may be the whole extent)."""
        if not 0 < length <= self.length:
            raise BadAddressError(f"cannot take {length} of {self.length} fragments")
        return Extent(self.start, length)

    def slice_bytes(self, data: bytes, inner: "Extent") -> bytes:
        """Bytes of ``inner`` (a sub-extent) out of this extent's ``data``."""
        if not self.contains(inner):
            raise BadAddressError(f"{inner} not within {self}")
        offset = (inner.start - self.start) * FRAGMENT_SIZE
        return data[offset : offset + inner.byte_size]

    def merge(self, other: "Extent") -> "Extent":
        """Union with an adjacent extent."""
        if not self.adjacent_to(other):
            raise BadAddressError(f"{self} and {other} are not adjacent")
        return Extent(min(self.start, other.start), self.length + other.length)

    def fragments(self) -> range:
        """Iterate the fragment numbers in this extent."""
        return range(self.start, self.end)

    def __str__(self) -> str:
        return f"[{self.start}..{self.end})"

    @classmethod
    def for_block_run(cls, first_block_fragment: int, n_blocks: int) -> "Extent":
        """Extent covering ``n_blocks`` blocks starting at a fragment address."""
        return cls(first_block_fragment, n_blocks * FRAGMENTS_PER_BLOCK)
