"""The per-disk fragment bitmap.

Paper section 4: "Each disk server maintains a bitmap of the disk to
which it is associated.  A bitmap is updated when block(s) or
fragment(s) are freed."  The bitmap is the *authoritative* record of
free space; the 64x64 free-extent array is an index over it and is
initialised and refreshed "by scanning the bitmap".

Bit convention: 1 = free, 0 = allocated.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.analysis import monitor as _monitor
from repro.common.errors import BadAddressError
from repro.disk_service.addresses import Extent


class FragmentBitmap:
    """A bitmap over ``n_fragments`` fragments, 1 bit each (1 = free)."""

    def __init__(self, n_fragments: int, *, all_free: bool = True) -> None:
        if n_fragments <= 0:
            raise ValueError("bitmap must cover at least one fragment")
        self.n_fragments = n_fragments
        self._bits = bytearray(
            (0xFF if all_free else 0x00) for _ in range(-(-n_fragments // 8))
        )
        # Mask off padding bits beyond n_fragments so free counts are exact.
        excess = 8 * len(self._bits) - n_fragments
        if excess and all_free:
            self._bits[-1] &= 0xFF >> excess
        self._free_count = n_fragments if all_free else 0

    # -------------------------------------------------------- queries

    def is_free(self, fragment: int) -> bool:
        self._check(fragment)
        return bool(self._bits[fragment >> 3] & (1 << (fragment & 7)))

    def is_free_run(self, extent: Extent) -> bool:
        """True if every fragment of ``extent`` is free."""
        self._check(extent.end - 1)
        _monitor.active().read(
            self, extent.start, extent.end, site="bitmap.is_free_run"
        )
        return all(self.is_free(fragment) for fragment in extent.fragments())

    def is_allocated_run(self, extent: Extent) -> bool:
        """True if every fragment of ``extent`` is allocated."""
        self._check(extent.end - 1)
        _monitor.active().read(
            self, extent.start, extent.end, site="bitmap.is_allocated_run"
        )
        return not any(self.is_free(fragment) for fragment in extent.fragments())

    @property
    def free_count(self) -> int:
        return self._free_count

    def run_length_at(self, start: int) -> int:
        """Length of the free run beginning exactly at ``start`` (0 if allocated).

        Scans byte-at-a-time over all-free bytes so long runs on big
        disks are measured in O(bytes), not O(bits).
        """
        self._check(start)
        n = self.n_fragments
        bits = self._bits
        fragment = start
        # Leading bits up to the next byte boundary.
        while fragment < n and fragment & 7:
            if not bits[fragment >> 3] & (1 << (fragment & 7)):
                return fragment - start
            fragment += 1
        if fragment == start and fragment < n and not (
            bits[fragment >> 3] & (1 << (fragment & 7))
        ):
            return 0
        # Whole free bytes.
        while fragment + 8 <= n and bits[fragment >> 3] == 0xFF:
            fragment += 8
        # Trailing bits.
        while fragment < n and bits[fragment >> 3] & (1 << (fragment & 7)):
            fragment += 1
        return fragment - start

    def run_containing(self, fragment: int) -> Extent | None:
        """The maximal free run containing ``fragment``, or None."""
        if not self.is_free(fragment):
            return None
        bits = self._bits
        start = fragment
        # Walk left to the run's beginning, skipping all-free bytes.
        while start > 0:
            prev = start - 1
            if prev & 7 == 7 and bits[prev >> 3] == 0xFF:
                start = prev - 7
                continue
            if bits[prev >> 3] & (1 << (prev & 7)):
                start = prev
                continue
            break
        return Extent(start, self.run_length_at(start))

    def free_runs(self) -> Iterator[Extent]:
        """Scan the whole bitmap yielding maximal free runs in address order.

        This is the paper's "initialization and subsequent updation of
        this array is carried out by scanning the bitmap".  The scan
        works a byte at a time, skipping all-free and all-allocated
        bytes without touching individual bits, so full-disk scans of
        large volumes stay cheap.
        """
        _monitor.active().read_all(self, site="bitmap.free_runs")
        n = self.n_fragments
        bits = self._bits
        start = None
        for byte_index, byte in enumerate(bits):
            base = byte_index << 3
            if base >= n:
                break
            whole_byte = base + 8 <= n
            if whole_byte and byte == 0xFF:
                if start is None:
                    start = base
                continue
            if whole_byte and byte == 0x00:
                if start is not None:
                    yield Extent(start, base - start)
                    start = None
                continue
            limit = min(8, n - base)
            for bit in range(limit):
                if byte & (1 << bit):
                    if start is None:
                        start = base + bit
                elif start is not None:
                    yield Extent(start, base + bit - start)
                    start = None
        if start is not None:
            yield Extent(start, n - start)

    def find_free_run(self, min_length: int, *, from_fragment: int = 0) -> Extent | None:
        """First maximal free run of at least ``min_length`` fragments."""
        run_start = None
        fragment = max(0, from_fragment)
        while fragment < self.n_fragments:
            if self.is_free(fragment):
                if run_start is None:
                    run_start = fragment
                if fragment - run_start + 1 >= min_length:
                    # Extend to the maximal run for the caller's benefit.
                    length = fragment - run_start + 1 + self.run_length_at(fragment + 1) \
                        if fragment + 1 < self.n_fragments else fragment - run_start + 1
                    return Extent(run_start, length)
            else:
                run_start = None
            fragment += 1
        return None

    # ------------------------------------------------------- updates

    def mark_allocated(self, extent: Extent) -> None:
        """Clear the bits of ``extent``; every fragment must be free."""
        self._check(extent.end - 1)
        _monitor.active().write(
            self, extent.start, extent.end, site="bitmap.mark_allocated"
        )
        for fragment in extent.fragments():
            if not self.is_free(fragment):
                raise BadAddressError(f"fragment {fragment} already allocated")
            self._bits[fragment >> 3] &= ~(1 << (fragment & 7)) & 0xFF
        self._free_count -= extent.length

    def mark_free(self, extent: Extent) -> None:
        """Set the bits of ``extent``; every fragment must be allocated."""
        self._check(extent.end - 1)
        _monitor.active().write(
            self, extent.start, extent.end, site="bitmap.mark_free"
        )
        for fragment in extent.fragments():
            if self.is_free(fragment):
                raise BadAddressError(f"fragment {fragment} already free")
            self._bits[fragment >> 3] |= 1 << (fragment & 7)
        self._free_count += extent.length

    # -------------------------------------------------- persistence

    def to_bytes(self) -> bytes:
        """Serialise for storage on stable storage."""
        _monitor.active().read_all(self, site="bitmap.to_bytes")
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes, n_fragments: int) -> "FragmentBitmap":
        bitmap = cls(n_fragments, all_free=False)
        expected = -(-n_fragments // 8)
        if len(data) != expected:
            raise ValueError(f"bitmap blob is {len(data)} bytes, expected {expected}")
        # repro-lint: allow[shared-state-discipline] factory filling its own fresh instance
        bitmap._bits = bytearray(data)
        bitmap._free_count = sum(
            1 for fragment in range(n_fragments) if bitmap.is_free(fragment)
        )
        return bitmap

    # ------------------------------------------------------ internal

    def _check(self, fragment: int) -> None:
        if not 0 <= fragment < self.n_fragments:
            raise BadAddressError(
                f"fragment {fragment} outside disk of {self.n_fragments} fragments"
            )

    def __repr__(self) -> str:
        return f"FragmentBitmap({self._free_count}/{self.n_fragments} free)"
