"""The RHODOS disk (block) service.

One :class:`DiskServer` fronts each simulated disk (paper section 4:
"there is one disk server corresponding to each disk").  It manages
free space with a fragment bitmap plus the paper's 64x64 free-extent
array, serves reads through a track cache that retrieves what a request
needs and caches the rest of the track, and implements the five service
functions — allocate-block, free-block, flush-block, get-block,
put-block — with the stable-storage semantics the paper gives them:
``put_block`` can store data on its original location, exclusively on
stable storage (a shadow page), or both (the file index table), with
the call returning before or after the stable write; ``get_block`` can
read from main or stable storage.

Any operation on a set of contiguous fragments/blocks is one single
disk reference.
"""

from repro.disk_service.addresses import Extent
from repro.disk_service.bitmap import FragmentBitmap
from repro.disk_service.extent_table import FreeExtentTable
from repro.disk_service.cache import TrackCache
from repro.disk_service.scrub import Scrubber, ScrubFinding
from repro.disk_service.server import (
    DiskServer,
    Source,
    Stability,
    SyncMode,
)

__all__ = [
    "Extent",
    "FragmentBitmap",
    "FreeExtentTable",
    "TrackCache",
    "Scrubber",
    "ScrubFinding",
    "DiskServer",
    "Source",
    "Stability",
    "SyncMode",
]
