"""The failure detector: per-component health with recovery events.

A component (conventionally ``volume.<id>`` for a volume's servers) is
``UP`` until evidence says otherwise.  Evidence arrives two ways:

* **I/O errors** reported by callers through :meth:`HealthRegistry.note_error`.
  The caller classifies the exception (a ``DiskCrashedError`` is
  permanent; a torn-sector read is not) and the registry applies the
  *tolerance* rule: isolated transient errors leave the component
  ``SUSPECT`` and are absorbed, but ``transient_tolerance`` consecutive
  ones escalate to ``DOWN`` — a "transient" fault that never clears is
  a failure, whatever the exception type says.
* **circuit-breaker transitions** from the RPC layer, relayed by the
  assembly (the cluster maps bus addresses to component names):
  breaker-open marks the component ``DOWN``, breaker-close means a
  probe reached a live server again and fires a recovery event.

Recovery events (:meth:`note_recovered`) are the repair trigger: every
registered listener runs synchronously, in registration order, so
repair work (replica resync, orphan sweeps) is deterministic and
happens inside the recovery instant of simulated time.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List

from repro.common.metrics import Metrics


class HealthState(enum.Enum):
    """What the detector currently believes about one component."""

    UP = "up"
    SUSPECT = "suspect"  # absorbed transient errors, still serving
    DOWN = "down"

    def __repr__(self) -> str:  # stable across PYTHONHASHSEED
        return f"HealthState.{self.name}"


class HealthRegistry:
    """Shared health truth for every failure-aware layer.

    Args:
        metrics: counter registry (``health.*`` counters).
        transient_tolerance: consecutive transient errors one component
            may accumulate before it is treated as down anyway.
    """

    def __init__(self, metrics: Metrics, *, transient_tolerance: int = 3) -> None:
        if transient_tolerance < 1:
            raise ValueError("transient tolerance must be >= 1")
        self.metrics = metrics
        self.transient_tolerance = transient_tolerance
        self._states: Dict[str, HealthState] = {}
        self._consecutive: Dict[str, int] = {}
        self._listeners: List[Callable[[str], None]] = []

    # ------------------------------------------------------- queries

    def state(self, component: str) -> HealthState:
        return self._states.get(component, HealthState.UP)

    def is_down(self, component: str) -> bool:
        return self.state(component) is HealthState.DOWN

    def components(self) -> List[str]:
        """Every component ever reported on, sorted (deterministic)."""
        return sorted(self._states)

    # ------------------------------------------------------ evidence

    def note_ok(self, component: str) -> None:
        """A successful operation: clears suspicion, closes nothing loud.

        Unlike :meth:`note_recovered` this fires no recovery event — it
        is the steady-state "still fine" signal, also used when repair
        work itself verifies a component (a resync write succeeding).
        """
        self._consecutive[component] = 0
        if self._states.get(component, HealthState.UP) is not HealthState.UP:
            self._states[component] = HealthState.UP

    def note_error(self, component: str, *, permanent: bool) -> bool:
        """Record one failed operation; returns the verdict.

        ``True`` means treat the failure as permanent (fail over, mark
        replicas stale); ``False`` means absorb it as transient.  A
        component already ``DOWN`` gets no benefit of the doubt.
        """
        if permanent or self.is_down(component):
            self.mark_down(component)
            self.metrics.add("health.permanent_errors")
            return True
        count = self._consecutive.get(component, 0) + 1
        self._consecutive[component] = count
        if count >= self.transient_tolerance:
            self.mark_down(component)
            self.metrics.add("health.transient_escalations")
            return True
        self._states[component] = HealthState.SUSPECT
        self.metrics.add("health.transient_errors")
        return False

    def mark_down(self, component: str) -> None:
        """Declare a component down (breaker-open, or escalation)."""
        if self._states.get(component) is not HealthState.DOWN:
            self.metrics.add("health.marked_down")
        self._states[component] = HealthState.DOWN
        self._consecutive[component] = 0

    # ------------------------------------------------------ recovery

    def note_recovered(self, component: str) -> None:
        """A component is back: mark it up and run every repair hook.

        Fired on administrative restart (the lifecycle path) and on a
        circuit breaker's successful half-open probe (the discovery
        path).  Listeners run synchronously in registration order;
        firing twice is harmless because repair work is idempotent.
        """
        self._states[component] = HealthState.UP
        self._consecutive[component] = 0
        self.metrics.add("health.recoveries")
        for listener in self._listeners:
            listener(component)

    def on_recovery(self, listener: Callable[[str], None]) -> None:
        """Register a repair hook called with the recovered component."""
        self._listeners.append(listener)

    def __repr__(self) -> str:
        down = sum(1 for s in self._states.values() if s is HealthState.DOWN)
        return (
            f"HealthRegistry({len(self._states)} components, {down} down, "
            f"tolerance={self.transient_tolerance})"
        )
