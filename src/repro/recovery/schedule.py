"""Deterministic crash/restart scripts in simulated time.

A :class:`FailureSchedule` is a list of :class:`FailureEvent` — "at
simulated time *t*, take volume *v* down for *d* microseconds" — polled
from a workload loop.  Because the simulation is single-threaded,
crashes land *between* operations, never inside a physical write; the
sub-write crash atomicity story belongs to the crash-point sweep
(:mod:`repro.chaos.scheduler`).  What the schedule adds is the other
half of the reliability claim: recovery running **concurrently with
traffic** — the workload keeps issuing operations while a volume is
down and while its restart/resync is in progress.

The schedule is pure bookkeeping: the actual crash and restart are
performed by a :class:`VolumeLifecycleHost` (in practice
:class:`~repro.cluster.system.RhodosCluster`), so this module depends
only on :mod:`repro.common`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, Union

from repro.common.clock import SimClock
from repro.common.metrics import Metrics


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One crash/restart pair: down at ``at_us``, back ``down_us`` later."""

    at_us: int
    volume_id: int
    down_us: int

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("crash time cannot be negative")
        if self.down_us <= 0:
            raise ValueError("downtime must be positive")
        if self.volume_id < 0:
            raise ValueError("volume id cannot be negative")

    @property
    def restart_at_us(self) -> int:
        return self.at_us + self.down_us


@dataclass(frozen=True, slots=True)
class MemberFailureEvent:
    """One member-disk kill/replace pair for a RAID-backed volume.

    "Disk ``member_index`` of volume ``volume_id`` dies at ``at_us``;
    a blank replacement arrives ``down_us`` later" — the scripted form
    of the RAID tier's degraded/rebuild scenarios.  Unlike a
    :class:`FailureEvent` the *volume keeps serving* throughout: the
    kill drops the array to degraded mode, the replacement starts a
    background rebuild.
    """

    at_us: int
    volume_id: int
    member_index: int
    down_us: int

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("member kill time cannot be negative")
        if self.down_us <= 0:
            raise ValueError("replacement lag must be positive")
        if self.volume_id < 0:
            raise ValueError("volume id cannot be negative")
        if self.member_index < 0:
            raise ValueError("member index cannot be negative")

    @property
    def replace_at_us(self) -> int:
        return self.at_us + self.down_us


@dataclass(frozen=True, slots=True)
class ShardFailureEvent:
    """One naming-shard kill/restart pair.

    "Shard server ``shard_id`` crashes at ``at_us`` and restarts
    ``down_us`` later" — the scripted form of the sharded namespace's
    failover scenarios.  While the shard is down its keyed operations
    fail over to the replica held by its ring successor; the restart
    resyncs the primary from that replica.
    """

    at_us: int
    shard_id: int
    down_us: int

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("shard kill time cannot be negative")
        if self.down_us <= 0:
            raise ValueError("downtime must be positive")
        if self.shard_id < 0:
            raise ValueError("shard id cannot be negative")

    @property
    def restart_at_us(self) -> int:
        return self.at_us + self.down_us


#: Anything a schedule can script.
ScheduledEvent = Union[FailureEvent, MemberFailureEvent, ShardFailureEvent]


class VolumeLifecycleHost(Protocol):
    """What a schedule drives: something that can crash and restart volumes."""

    def fail_volume(self, volume_id: int) -> None: ...

    def restart_volume(self, volume_id: int) -> None: ...


class MemberLifecycleHost(VolumeLifecycleHost, Protocol):
    """A host that can additionally kill/replace RAID member disks.

    Only required when the schedule contains
    :class:`MemberFailureEvent` entries (in practice
    :class:`~repro.cluster.system.RhodosCluster` with a RAID config).
    """

    def fail_member(self, volume_id: int, member_index: int) -> None: ...

    def replace_member(self, volume_id: int, member_index: int) -> object: ...


class ShardLifecycleHost(VolumeLifecycleHost, Protocol):
    """A host that can additionally kill/restart naming shard servers.

    Only required when the schedule contains
    :class:`ShardFailureEvent` entries (in practice
    :class:`~repro.cluster.system.RhodosCluster` with ``n_shards > 1``).
    """

    def fail_shard(self, shard_id: int) -> None: ...

    def restart_shard(self, shard_id: int) -> None: ...


class FailureSchedule:
    """Polls the clock and fires due crash/restart events, in order.

    Args:
        events: the script — volume crash/restart pairs, RAID member
            kill/replace pairs, and naming-shard kill/restart pairs,
            freely mixed; windows of the same volume (or the same
            member of the same volume, or the same shard) must not
            overlap.
        clock: the shared simulated clock the script reads.
        metrics: optional registry (``recovery.*`` counters).
    """

    #: Action kinds; the numeric order is the same-instant firing order,
    #: so every repair precedes every failure scheduled at that time.
    (
        _RESTART,
        _REPLACE,
        _SHARD_RESTART,
        _CRASH,
        _KILL,
        _SHARD_KILL,
    ) = range(6)

    def __init__(
        self,
        events: Sequence[ScheduledEvent],
        clock: SimClock,
        *,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.clock = clock
        self.metrics = metrics or Metrics()
        volume_events = sorted(
            (e for e in events if isinstance(e, FailureEvent)),
            key=lambda e: (e.at_us, e.volume_id),
        )
        member_events = sorted(
            (e for e in events if isinstance(e, MemberFailureEvent)),
            key=lambda e: (e.at_us, e.volume_id, e.member_index),
        )
        shard_events = sorted(
            (e for e in events if isinstance(e, ShardFailureEvent)),
            key=lambda e: (e.at_us, e.shard_id),
        )
        last_restart: dict[int, int] = {}
        for event in volume_events:
            previous = last_restart.get(event.volume_id)
            if previous is not None and event.at_us < previous:
                raise ValueError(
                    f"volume {event.volume_id}: crash at {event.at_us}us "
                    f"overlaps the window ending at {previous}us"
                )
            last_restart[event.volume_id] = event.restart_at_us
        last_replace: dict[tuple[int, int], int] = {}
        for event in member_events:
            slot = (event.volume_id, event.member_index)
            previous = last_replace.get(slot)
            if previous is not None and event.at_us < previous:
                raise ValueError(
                    f"volume {event.volume_id} member {event.member_index}: "
                    f"kill at {event.at_us}us overlaps the window "
                    f"ending at {previous}us"
                )
            last_replace[slot] = event.replace_at_us
        last_shard_restart: dict[int, int] = {}
        for event in shard_events:
            previous = last_shard_restart.get(event.shard_id)
            if previous is not None and event.at_us < previous:
                raise ValueError(
                    f"shard {event.shard_id}: kill at {event.at_us}us "
                    f"overlaps the window ending at {previous}us"
                )
            last_shard_restart[event.shard_id] = event.restart_at_us
        #: (time, kind, volume-or-shard, member) actions not yet fired;
        #: member is -1 for volume- and shard-level actions.
        self._pending: List[Tuple[int, int, int, int]] = sorted(
            [(e.at_us, self._CRASH, e.volume_id, -1) for e in volume_events]
            + [
                (e.restart_at_us, self._RESTART, e.volume_id, -1)
                for e in volume_events
            ]
            + [
                (e.at_us, self._KILL, e.volume_id, e.member_index)
                for e in member_events
            ]
            + [
                (e.replace_at_us, self._REPLACE, e.volume_id, e.member_index)
                for e in member_events
            ]
            + [
                (e.at_us, self._SHARD_KILL, e.shard_id, -1)
                for e in shard_events
            ]
            + [
                (e.restart_at_us, self._SHARD_RESTART, e.shard_id, -1)
                for e in shard_events
            ]
        )
        self._events = (
            tuple(volume_events) + tuple(member_events) + tuple(shard_events)
        )
        self._down_since: dict[int, int] = {}
        self._windows: List[Tuple[int, int, int]] = []  # (volume, start, end)
        self._member_down_since: dict[tuple[int, int], int] = {}
        #: Completed (volume, member, killed_at, replaced_at) windows.
        self._member_windows: List[Tuple[int, int, int, int]] = []
        self._shard_down_since: dict[int, int] = {}
        #: Completed (shard, killed_at, restarted_at) windows.
        self._shard_windows: List[Tuple[int, int, int]] = []

    # ----------------------------------------------------------- api

    @property
    def events(self) -> Tuple[ScheduledEvent, ...]:
        return self._events

    def done(self) -> bool:
        return not self._pending

    def next_event_us(self) -> Optional[int]:
        """Simulated time of the next unfired action (None when done)."""
        return self._pending[0][0] if self._pending else None

    def poll(self, host: VolumeLifecycleHost) -> List[str]:
        """Fire every action due at the current clock; returns a log.

        Call between workload operations.  Actions fire in scripted
        time order even when the clock jumped past several of them, so
        a restart always precedes a later crash of the same volume.
        """
        actions: List[str] = []
        now = self.clock.now_us
        while self._pending and self._pending[0][0] <= now:
            at_us, kind, volume_id, member = self._pending.pop(0)
            if kind == self._CRASH:
                self._down_since[volume_id] = at_us
                host.fail_volume(volume_id)
                self.metrics.add("recovery.crashes_injected")
                actions.append(f"t={at_us}us crash volume {volume_id}")
            elif kind == self._RESTART:
                started = self._down_since.pop(volume_id, at_us)
                self._windows.append((volume_id, started, at_us))
                host.restart_volume(volume_id)
                self.metrics.add("recovery.restarts_injected")
                actions.append(f"t={at_us}us restart volume {volume_id}")
            elif kind == self._KILL:
                self._member_down_since[(volume_id, member)] = at_us
                host.fail_member(volume_id, member)
                self.metrics.add("recovery.member_kills_injected")
                actions.append(
                    f"t={at_us}us kill member {member} of volume {volume_id}"
                )
            elif kind == self._REPLACE:
                started = self._member_down_since.pop(
                    (volume_id, member), at_us
                )
                self._member_windows.append(
                    (volume_id, member, started, at_us)
                )
                host.replace_member(volume_id, member)
                self.metrics.add("recovery.member_replacements_injected")
                actions.append(
                    f"t={at_us}us replace member {member} "
                    f"of volume {volume_id}"
                )
            elif kind == self._SHARD_KILL:
                self._shard_down_since[volume_id] = at_us
                host.fail_shard(volume_id)
                self.metrics.add("recovery.shard_kills_injected")
                actions.append(f"t={at_us}us kill shard {volume_id}")
            else:
                started = self._shard_down_since.pop(volume_id, at_us)
                self._shard_windows.append((volume_id, started, at_us))
                host.restart_shard(volume_id)
                self.metrics.add("recovery.shard_restarts_injected")
                actions.append(f"t={at_us}us restart shard {volume_id}")
        return actions

    def run_out(self, host: VolumeLifecycleHost) -> List[str]:
        """Advance the clock through every remaining action and fire it.

        Used at end-of-workload so a run always converges to a fully
        restarted system before the final invariant checks.
        """
        actions: List[str] = []
        while self._pending:
            self.clock.advance_to(self._pending[0][0])
            actions.extend(self.poll(host))
        return actions

    def downtime_windows(self) -> List[Tuple[int, int, int]]:
        """Completed (volume_id, down_at_us, restarted_at_us) windows."""
        return list(self._windows)

    def member_windows(self) -> List[Tuple[int, int, int, int]]:
        """Completed (volume, member, killed_at, replaced_at) windows."""
        return list(self._member_windows)

    def shard_windows(self) -> List[Tuple[int, int, int]]:
        """Completed (shard_id, killed_at, restarted_at) windows."""
        return list(self._shard_windows)

    def __repr__(self) -> str:
        return (
            f"FailureSchedule({len(self._events)} events, "
            f"{len(self._pending)} actions pending)"
        )
