"""Failure detection and crash/restart lifecycle.

The paper's reliability claim (sections 5, 7) is not that components
never fail but that the facility *recovers*: stable storage and careful
writes preserve vital structures, replicated volumes keep data
reachable, and recovery runs while ordinary traffic continues.  This
package provides the two pieces that close the injure→degrade→recover→
repair loop:

* :class:`HealthRegistry` — a failure detector fed by RPC circuit-
  breaker transitions and per-replica I/O errors.  It distinguishes
  *transient* faults (a torn-sector retry, one lost message) from
  *permanent* ones (a crashed volume), and broadcasts recovery events
  so repair work (replica resync, orphan sweeps) starts automatically.
* :class:`FailureSchedule` — a deterministic crash/restart script in
  simulated time.  Driven from the shared clock it takes named volumes
  down mid-workload and restarts them through the ordinary recovery
  path, so recovery is always exercised against concurrent traffic
  rather than a quiesced system.

Both are pure state machines over :mod:`repro.common` — the layers
that act on them (``rpc``, ``replication``, ``cluster``, ``chaos``)
import downward into this package, never the reverse.
"""

from repro.recovery.health import HealthRegistry, HealthState
from repro.recovery.schedule import (
    FailureEvent,
    FailureSchedule,
    MemberFailureEvent,
    MemberLifecycleHost,
    VolumeLifecycleHost,
)

__all__ = [
    "HealthRegistry",
    "HealthState",
    "FailureEvent",
    "FailureSchedule",
    "MemberFailureEvent",
    "MemberLifecycleHost",
    "VolumeLifecycleHost",
]
