"""Core of the invariant linter: findings, rules, suppressions, baseline.

The reproduction's reliability argument rests on invariants the test
suite cannot see — layer boundaries, simulation determinism, crash-point
discipline — so this framework machine-checks them from the AST.  It is
deliberately stdlib-only (:mod:`ast`, :mod:`json`, :mod:`re`): the
linter must run in any environment the facility itself runs in.

Vocabulary:

* A **rule** inspects one :class:`ParsedModule` at a time and yields
  :class:`Finding` objects.  Rules register themselves in
  :data:`REGISTRY` via :func:`register`.
* A **suppression** is an inline comment
  ``# repro-lint: allow[rule-id] <reason>`` that silences one rule on
  its own line (or, for a standalone comment, on the next line).  The
  reason is mandatory: an unexplained suppression is itself a finding.
* The **baseline** is a committed JSON file of grandfathered findings.
  Default runs subtract it; ``--strict`` ignores it, so CI holds the
  tree to zero.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: Rule id used for problems the framework itself reports (malformed
#: suppressions, syntax errors) — not suppressible by design.
FRAMEWORK_RULE = "lint.framework"

#: Directories never walked (fixture snippets are deliberate violations).
EXCLUDED_PATH_PARTS: Tuple[str, ...] = ("tests/lint/fixtures",)
EXCLUDED_DIR_NAMES: Set[str] = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

#: Header comment a fixture uses to impersonate a repro module, e.g.
#: ``# lint-fixture-module: repro.simdisk.fake``.  Scanned in the first
#: few lines only.
_FIXTURE_MODULE_RE = re.compile(r"#\s*lint-fixture-module:\s*([A-Za-z_][\w.]*)")

_SUPPRESSION_RE = re.compile(r"#\s*repro-lint:\s*allow\[([\w.-]+)\]\s*(.*)$")


def repo_root() -> Path:
    """The repository root, located from this file (src/repro/lint/…)."""
    return Path(__file__).resolve().parents[3]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str  # repo-relative posix path
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching.

        Line numbers drift with unrelated edits, so the baseline keys a
        finding by file, rule, and message instead.
        """
        return (self.path, self.rule, self.message)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: Path
    rel: str
    module: Optional[str]  # dotted name for repro modules, else None
    text: str
    tree: ast.Module
    lines: List[str]
    #: line number -> rule ids allowed on that line
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: framework findings produced while parsing (bad suppressions)
    problems: List[Finding] = field(default_factory=list)

    @property
    def package(self) -> Optional[str]:
        """Top-level repro package (``repro.simdisk.disk`` → ``simdisk``)."""
        if self.module is None:
            return None
        parts = self.module.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return None
        return parts[1]

    def finding(
        self, node: ast.AST, rule: str, message: str, hint: str = ""
    ) -> Finding:
        return Finding(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            hint=hint,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` and :attr:`hint`, and implement
    :meth:`check`.  :meth:`applies` gates a rule to the module scopes it
    governs; the default is every ``repro.*`` module.
    """

    rule_id: str = ""
    hint: str = ""

    def applies(self, module: ParsedModule) -> bool:
        return module.module is not None and module.module.split(".")[0] == "repro"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Rule {self.rule_id}>"


REGISTRY: Dict[str, Rule] = {}


def register(rule_class: type) -> type:
    """Class decorator adding a rule instance to :data:`REGISTRY`."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> List[Rule]:
    """Every registered rule, importing the rule modules on first use."""
    # Imported lazily so the framework has no import-time dependency on
    # the rules (rules import the framework).
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


# ------------------------------------------------------------- parsing


def module_name_for(path: Path, root: Optional[Path] = None) -> Optional[str]:
    """Dotted module name for files under ``<root>/src``, else None."""
    root = root or repo_root()
    try:
        rel = path.resolve().relative_to(root.resolve() / "src")
    except ValueError:
        return None
    parts = list(rel.parts)
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if not parts:
        return None
    return ".".join(parts)


def _parse_suppressions(
    rel: str, text: str, known_rules: Set[str]
) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    allowed: Dict[int, Set[str]] = {}
    problems: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The ast parse reports the syntax error with a better message.
        return allowed, problems
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue  # the directive is only honoured in real comments
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        line, col = token.start
        rule_id, reason = match.group(1), match.group(2).strip()
        if rule_id not in known_rules:
            problems.append(
                Finding(
                    rel, line, col + 1, FRAMEWORK_RULE,
                    f"suppression names unknown rule {rule_id!r}",
                    "valid ids: " + ", ".join(sorted(known_rules)),
                )
            )
            continue
        if not reason:
            problems.append(
                Finding(
                    rel, line, col + 1, FRAMEWORK_RULE,
                    f"suppression of {rule_id!r} has no reason",
                    "write `# repro-lint: allow[rule-id] <why this is safe>`",
                )
            )
            continue
        # A standalone comment covers the next line; an inline trailer
        # covers its own.
        standalone = token.line[: col].strip() == ""
        target = line + 1 if standalone else line
        allowed.setdefault(target, set()).add(rule_id)
    return allowed, problems


def parse_module(
    path: Path,
    *,
    root: Optional[Path] = None,
    known_rules: Optional[Set[str]] = None,
) -> ParsedModule:
    """Parse one file into the shape every rule consumes.

    A syntax error produces a module with an empty tree and a framework
    finding, so one broken file cannot abort the whole run.
    """
    root = root or repo_root()
    text = path.read_text(encoding="utf-8")
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    lines = text.splitlines()
    module = module_name_for(path, root)
    for line in lines[:5]:
        override = _FIXTURE_MODULE_RE.search(line)
        if override:
            module = override.group(1)
            break
    if known_rules is None:
        known_rules = set(rule.rule_id for rule in all_rules())
    suppressions, problems = _parse_suppressions(rel, text, known_rules)
    try:
        tree = ast.parse(text)
    except SyntaxError as error:
        tree = ast.Module(body=[], type_ignores=[])
        problems.append(
            Finding(
                rel, error.lineno or 1, (error.offset or 0) + 1, FRAMEWORK_RULE,
                f"syntax error: {error.msg}",
            )
        )
    return ParsedModule(
        path=path, rel=rel, module=module, text=text, tree=tree,
        lines=lines, suppressions=suppressions, problems=problems,
    )


def lint_source(
    text: str,
    *,
    module: Optional[str] = None,
    rel: str = "<string>",
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Lint a source string directly — the unit-test entry point."""
    chosen = list(rules) if rules is not None else all_rules()
    known = set(rule.rule_id for rule in all_rules())
    lines = text.splitlines()
    suppressions, problems = _parse_suppressions(rel, text, known)
    parsed = ParsedModule(
        path=Path(rel), rel=rel, module=module, text=text,
        tree=ast.parse(text), lines=lines, suppressions=suppressions,
        problems=problems,
    )
    return _check_module(parsed, chosen)


# ------------------------------------------------------------- walking


def iter_python_files(paths: Iterable[Path], root: Path) -> Iterator[Path]:
    """Expand files/directories into the python files to lint.

    Excluded subtrees (lint fixtures, caches) are skipped during
    directory walks, but a file named explicitly is always yielded — the
    CLI must be able to demonstrate findings on a fixture.
    """
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if _excluded(candidate, root):
                continue
            yield candidate


def _excluded(path: Path, root: Path) -> bool:
    if EXCLUDED_DIR_NAMES.intersection(path.parts):
        return True
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return any(part in rel for part in EXCLUDED_PATH_PARTS)


# ------------------------------------------------------------ baseline


DEFAULT_BASELINE_NAME = "lint_baseline.json"


def load_baseline(path: Path) -> List[Tuple[str, str, str]]:
    """Grandfathered finding keys from a baseline file (missing = empty)."""
    if not path.is_file():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    return [
        (entry["path"], entry["rule"], entry["message"])
        for entry in data.get("findings", [])
    ]


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write the grandfather file for the given findings (sorted, stable)."""
    entries = sorted(
        {finding.key() for finding in findings}
    )
    payload = {
        "comment": (
            "Grandfathered repro.lint findings. Default runs subtract these; "
            "--strict ignores this file. Shrink it, never grow it."
        ),
        "version": 1,
        "findings": [
            {"path": p, "rule": r, "message": m} for (p, r, m) in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# ------------------------------------------------------------- running


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]  # actionable (not suppressed, not baselined)
    baselined: List[Finding]  # matched a baseline entry
    stale_baseline: List[Tuple[str, str, str]]  # baseline entries nothing matched
    files: int

    @property
    def ok(self) -> bool:
        return not self.findings


def _check_module(module: ParsedModule, rules: Iterable[Rule]) -> List[Finding]:
    findings = list(module.problems)
    for rule in rules:
        if not rule.applies(module):
            continue
        for finding in rule.check(module):
            if finding.rule in module.suppressions.get(finding.line, ()):
                continue
            findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Iterable[Path],
    *,
    root: Optional[Path] = None,
    rules: Optional[Iterable[Rule]] = None,
    baseline: Optional[Path] = None,
    strict: bool = False,
    on_file: Optional[Callable[[Path], None]] = None,
) -> LintResult:
    """Lint every python file under ``paths``; the programmatic entry point."""
    root = root or repo_root()
    chosen = list(rules) if rules is not None else all_rules()
    known = set(rule.rule_id for rule in all_rules())
    all_findings: List[Finding] = []
    files = 0
    for path in iter_python_files([Path(p) for p in paths], root):
        if on_file is not None:
            on_file(path)
        files += 1
        module = parse_module(path, root=root, known_rules=known)
        all_findings.extend(_check_module(module, chosen))
    grandfathered = (
        [] if strict or baseline is None else load_baseline(baseline)
    )
    remaining = list(grandfathered)
    actionable: List[Finding] = []
    baselined: List[Finding] = []
    for finding in all_findings:
        if finding.key() in remaining:
            remaining.remove(finding.key())
            baselined.append(finding)
        else:
            actionable.append(finding)
    return LintResult(
        findings=actionable,
        baselined=baselined,
        stale_baseline=remaining,
        files=files,
    )
