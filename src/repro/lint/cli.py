"""Command line front end: ``python -m repro.lint [--strict] [paths…]``.

Exit status: 0 when the tree is clean (after suppressions and, unless
``--strict``, the baseline), 1 when any actionable finding remains,
2 on usage errors.  ``--json`` emits machine-readable findings for the
tooling in CI; ``--write-baseline`` grandfathers the current findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.framework import (
    DEFAULT_BASELINE_NAME,
    all_rules,
    lint_paths,
    load_baseline,
    repo_root,
    save_baseline,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter for the RHODOS reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/ and tests/)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="ignore the baseline: every finding fails the run (CI mode)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as a JSON array on stdout",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather the current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail (exit 1) when the baseline holds orphaned entries "
        "nothing in the tree matches any more (CI keeps it shrinking)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    root = repo_root()
    if args.list_rules:
        for rule in all_rules():
            doc = (rule.__doc__ or "").strip().splitlines()
            print(f"{rule.rule_id:24s} {doc[0] if doc else ''}")
        return 0
    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                "error: no such path: " + ", ".join(map(str, missing)),
                file=sys.stderr,
            )
            return 2
    else:
        paths = [root / "src", root / "tests"]
    baseline = args.baseline if args.baseline is not None else (
        root / DEFAULT_BASELINE_NAME
    )
    result = lint_paths(
        paths, root=root, baseline=baseline, strict=args.strict
    )

    if args.write_baseline:
        save_baseline(baseline, result.findings + result.baselined)
        print(
            f"baseline: wrote {len(result.findings) + len(result.baselined)} "
            f"finding(s) to {baseline}"
        )
        return 0

    if args.as_json:
        print(json.dumps([f.to_json() for f in result.findings], indent=2))
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (
            f"repro.lint: {len(result.findings)} finding(s) in "
            f"{result.files} file(s)"
        )
        if result.baselined:
            summary += f", {len(result.baselined)} baselined"
        if result.stale_baseline:
            summary += (
                f", {len(result.stale_baseline)} stale baseline entr"
                f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
                "(shrink the baseline)"
            )
        print(summary)

    if args.check_baseline:
        # A baseline entry is orphaned when no current finding matches
        # it — the violation was fixed but the grandfather entry kept
        # its amnesty slot.  Under --strict nothing is subtracted, so
        # staleness is recomputed against the full finding set.
        matched = {f.key() for f in result.findings + result.baselined}
        orphaned = [
            entry for entry in load_baseline(baseline) if entry not in matched
        ]
        for path, rule, message in orphaned:
            print(
                f"baseline: orphaned entry {path} [{rule}] {message}",
                file=sys.stderr,
            )
        if orphaned:
            print(
                f"baseline: {len(orphaned)} orphaned entr"
                f"{'y' if len(orphaned) == 1 else 'ies'}; regenerate with "
                "--write-baseline",
                file=sys.stderr,
            )
            return 1

    return 1 if result.findings else 0
