"""Rule ``completion-callback-purity``: done-callbacks are notifications.

A :class:`~repro.simkernel.future.Completion` delivers its callbacks
inside whatever task settles it — usually the pipeline's finish event.
The happens-before model (DESIGN.md §12) orders that delivery after
the service batch and before any ``wait`` that rejoins on it, and
*nothing else*: a callback that does real work smuggles that work into
a context no other task promised to follow.  The racecheck tool's
``plant`` scenario is exactly such a callback, kept as a negative
control.

Banned inside a callback handed to ``add_done_callback``:

* **clock movement** (``advance_us``/``advance_to``) — re-serializes
  the world from a delivery context;
* **raw disk primitives** (``read_sectors``/``write_sectors``/
  ``read_in_passing``/``write_through``) — unscheduled device work the
  pipeline never queued;
* **blocking waits** (``wait``/``wait_all``/``run_until``/
  ``run_until_idle``) — re-entering the loop from inside delivery;
* **private reach-through** (``obj._anything(...)`` on a non-self
  base) — mutating another object's state outside its entry points.

The rule inspects lambdas inline and resolves plain-name references to
functions defined in the same module; callbacks imported from
elsewhere are that module's responsibility.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: The registration method under discipline.
REGISTER_CALL = "add_done_callback"

ADVANCE_CALLS: FrozenSet[str] = frozenset({"advance_us", "advance_to"})
DISK_PRIMITIVES: FrozenSet[str] = frozenset(
    {"read_sectors", "write_sectors", "read_in_passing", "write_through"}
)
BLOCKING_CALLS: FrozenSet[str] = frozenset(
    {"wait", "wait_all", "run_until", "run_until_idle"}
)


@register
class CallbackPurityRule(Rule):
    """Side effects inside a completion done-callback."""

    rule_id = "completion-callback-purity"
    hint = (
        "a done-callback runs inside the settling task; move the work "
        "to the waiter (after wait()/drain rejoins the happens-before "
        "graph) or submit it through an entry point the monitor chains"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        local_defs = _module_functions(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == REGISTER_CALL
                and node.args
            ):
                continue
            callback = _resolve_callback(node.args[0], local_defs)
            if callback is None:
                continue
            for offence, what in _impurities(callback):
                yield module.finding(
                    offence, self.rule_id,
                    f"done-callback {what}",
                    self.hint,
                )


def _module_functions(tree: ast.Module) -> Dict[str, ast.AST]:
    """Top-level (and class-level) function defs by bare name."""
    defs: Dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, node)
    return defs


def _resolve_callback(
    arg: ast.expr, local_defs: Dict[str, ast.AST]
) -> Optional[ast.AST]:
    if isinstance(arg, ast.Lambda):
        return arg
    if isinstance(arg, ast.Name):
        return local_defs.get(arg.id)
    return None


def _impurities(callback: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    target = callback.body if isinstance(callback, ast.Lambda) else callback
    for node in ast.walk(target):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in BLOCKING_CALLS:
            yield node, f"blocks via {func.id}()"
        elif isinstance(func, ast.Attribute):
            if func.attr in ADVANCE_CALLS:
                yield node, f"moves the clock via {func.attr}()"
            elif func.attr in DISK_PRIMITIVES:
                yield node, f"issues a raw disk reference via {func.attr}()"
            elif func.attr in BLOCKING_CALLS:
                yield node, f"blocks via {func.attr}()"
            elif (
                func.attr.startswith("_")
                and not func.attr.startswith("__")
                and not (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                )
            ):
                yield node, (
                    f"reaches into another object's private "
                    f"{func.attr}()"
                )
