"""Rule ``crash-point-discipline``: every physical write is a crash point.

The chaos sweep's claim — "we crashed the machine during *every*
physical write and recovery always restored an admissible state" — is
only as strong as the guarantee that every physical write is numbered
by the :class:`~repro.chaos.trace.CrashPointMonitor`.  Two ways a write
can escape the numbering:

1. a function mutates a disk's raw sector store (``self._sectors[...]``)
   without first consulting the fault injector's ``note_write`` hook —
   the monitor never sees the write at all;
2. a new code path calls the write primitives (``write_sectors`` /
   ``write_through``) from a site the sweep's coverage accounting does
   not know about.

This rule polices both inside ``repro.simdisk`` and
``repro.disk_service``.  Case 2 is checked against
:data:`REGISTERED_WRITE_SITES` — the reviewed list of functions allowed
to issue physical writes.  Adding a write site is fine; adding it to
the list (or suppressing with a reason) is the act of reviewing it.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Tuple

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: Packages whose write paths the sweep depends on.
SCOPE: FrozenSet[str] = frozenset({"simdisk", "disk_service"})

#: Attribute whose mutation is a raw physical write.
RAW_STORE_ATTR = "_sectors"

#: Call attributes that are physical write primitives.
#: ``repair_from_stable`` counts: a scrub repair rewrites the platter
#: through the put machinery, so every caller is issuing crash points
#: and must be reviewed like any other writer.
WRITE_PRIMITIVES: FrozenSet[str] = frozenset(
    {"write_sectors", "write_through", "repair_from_stable"}
)

#: The hook every raw mutation must be guarded by.
HOOK_ATTR = "note_write"

#: Method calls on the raw store that mutate platter state.  Covers the
#: legacy per-sector dict surface (pop/update/...) and the chunked
#: :class:`~repro.simdisk.store.SectorStore` mutators, so swapping the
#: store implementation cannot silently drop the discipline.
STORE_MUTATORS: FrozenSet[str] = frozenset(
    {
        "pop", "update", "clear", "setdefault", "popitem", "__setitem__",
        "write_range", "xor_byte",
    }
)

#: (module, qualified function) pairs reviewed as legitimate issuers of
#: physical writes.  DESIGN.md §7 documents each.
REGISTERED_WRITE_SITES: FrozenSet[Tuple[str, str]] = frozenset(
    {
        # careful replicated writes: both mirrors, ordered
        ("repro.simdisk.stable", "StableStore.put"),
        # tombstones both mirrors before reusing a slot
        ("repro.simdisk.stable", "StableStore.delete"),
        # recovery rewrites the stale mirror from the survivor
        ("repro.simdisk.stable", "StableStore._repair_slot"),
        # the track cache's write-through path
        ("repro.disk_service.cache", "TrackCache.write_through"),
        # put-block's direct path when the cache is disabled (the body
        # behind both the blocking wrapper and the queued pipeline, so
        # crash points keep firing at queue-drain time; _do_put is the
        # span/timer shell around it)
        ("repro.disk_service.server", "DiskServer._put_body"),
        # the scrubber's repair write: mirrored extent rewritten from
        # its stable copy (DESIGN.md §11; the scrub-repair sweep
        # workload crashes inside it)
        ("repro.disk_service.scrub", "Scrubber._repair_mirrored"),
        # mid-read rollback of a torn mirrored extent to stable
        ("repro.disk_service.server", "DiskServer._read_repair"),
        # RAID tier (DESIGN.md §14): the array's data-path fan-out,
        # its parity updates, and its membership superblock rounds —
        # every physical write the array issues funnels through these
        ("repro.simdisk.raid", "StripedVolume._member_write"),
        ("repro.simdisk.raid", "StripedVolume._parity_write"),
        ("repro.simdisk.raid", "StripedVolume._superblock_write"),
        # write-intent journal closing the degraded write hole
        ("repro.simdisk.raid", "StripedVolume._journal_write"),
        # background rebuild reconstructing a replaced member
        ("repro.simdisk.raid", "RaidRebuilder._write_target"),
    }
)


@register
class CrashPointRule(Rule):
    """Physical writes must route through the crash-point hook."""

    rule_id = "crash-point-discipline"
    hint = (
        "call self.faults.note_write(...) before mutating the sector store, "
        "or register the function in repro.lint.rules.crashpoint."
        "REGISTERED_WRITE_SITES after review"
    )

    def applies(self, module: ParsedModule) -> bool:
        return super().applies(module) and module.package in SCOPE

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for qualname, node in _functions(module.tree):
            body_nodes = list(_own_nodes(node))
            calls_hook = any(
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == HOOK_ATTR
                for child in body_nodes
            )
            for child in body_nodes:
                mutation = _raw_mutation(child)
                if mutation is not None and not calls_hook:
                    yield module.finding(
                        mutation, self.rule_id,
                        f"{qualname} mutates {RAW_STORE_ATTR} without "
                        f"calling the {HOOK_ATTR} crash-point hook",
                        self.hint,
                    )
                primitive = _write_primitive_call(child)
                if primitive is not None and (
                    (module.module, qualname) not in REGISTERED_WRITE_SITES
                ):
                    yield module.finding(
                        child, self.rule_id,
                        f"{qualname} calls {primitive}() but is not a "
                        "registered write site",
                        self.hint,
                    )


def _functions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualname, def-node)`` for every function, nested included."""

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Every node of a function body, minus nested function/class bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _raw_mutation(node: ast.AST) -> ast.AST | None:
    """The node mutating ``_sectors``, if this is one."""
    targets: List[ast.expr] = []
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
        targets = node.targets if isinstance(node, (ast.Assign, ast.Delete)) else [
            node.target
        ]
    for target in targets:
        if isinstance(target, ast.Subscript) and _is_raw_store(target.value):
            return node
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in STORE_MUTATORS and _is_raw_store(node.func.value):
            return node
    return None


def _is_raw_store(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Attribute) and expr.attr == RAW_STORE_ATTR


def _write_primitive_call(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in WRITE_PRIMITIVES
    ):
        return node.func.attr
    return None
