"""Rule ``layering``: imports must respect the five-layer DAG.

The paper's Figure 1 stacks the facility as disk → basic file →
transaction/naming/replication, with client agents and assembly on top.
:data:`LAYER_DEPS` declares that stack as an explicit package-level
DAG: package X may import package Y only when ``Y in LAYER_DEPS[X]``.
Edges are declared, not ranked, so deliberate same-level edges (e.g.
``transactions → naming`` for the name types) stay legal while the
reverse back-edge is rejected.  The declaration itself is validated to
be acyclic at import time — a cycle cannot be legalised by editing it.

The package facade ``repro/__init__.py`` is the one exemption: it is
the public re-export surface and imports every layer by design.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: package -> packages it may import.  Mirrors the paper's Figure 1;
#: DESIGN.md §7 renders the same DAG as a diagram.  Grow this only for
#: a reviewed architectural decision — never to silence a finding.
LAYER_DEPS: Dict[str, Set[str]] = {
    # substrates
    # concurrency-correctness monitor (PR 7): stdlib-only access/HB
    # recording the substrates report into; sits below everything so
    # even common.frames can instrument itself
    "analysis": set(),
    "common": {"analysis"},
    "simkernel": {"common", "analysis"},
    "simdisk": {"common", "analysis"},
    "rpc": {"common"},
    # failure detection and crash/restart scheduling (PR 4): pure
    # policy over common types, consulted by replication and cluster
    "recovery": {"common"},
    # the disk service (paper section 4); simkernel carries the request
    # pipeline's completions and queue-drain events (PR 5)
    "disk_service": {"common", "simdisk", "simkernel", "analysis"},
    # the basic file service (paper section 5)
    "file_service": {"common", "disk_service"},
    # the service triple above it (paper sections 6-8); recovery for
    # the shard layer's failure-detector integration (PR 10)
    "naming": {"common", "file_service", "recovery"},
    "transactions": {
        "common", "simkernel", "simdisk", "disk_service", "file_service",
        "naming",
    },
    "replication": {"common", "file_service", "naming", "recovery"},
    # offline integrity verification (fsck): below tools AND chaos so
    # both can consume it without a chaos -> tools edge
    "verify": {"common", "disk_service", "file_service", "replication"},
    # client-visible agents, assembly, and tooling
    "agents": {"common", "rpc", "file_service", "naming"},
    # tools sits at the very top: racecheck drives the cluster's
    # concurrent driver and the chaos sweeps under the monitor
    "tools": {
        "common", "simkernel", "simdisk", "disk_service", "file_service",
        "naming", "replication", "analysis", "verify", "cluster", "chaos",
    },
    "workloads": {"common", "file_service", "naming", "transactions"},
    "chaos": {
        "common", "simkernel", "simdisk", "rpc", "disk_service",
        "file_service", "naming", "transactions", "replication",
        "recovery", "cluster", "verify",
    },
    "cluster": {
        "common", "simkernel", "simdisk", "rpc", "disk_service",
        "file_service", "naming", "transactions", "replication",
        "recovery", "agents", "analysis",
    },
    # the linter itself: stdlib-only by charter
    "lint": set(),
}


def validate_dag() -> List[str]:
    """Topologically order :data:`LAYER_DEPS`; raises on a cycle.

    Returns one valid order (used by the self-test).  Also rejects
    edges that point at undeclared packages.
    """
    for package, deps in LAYER_DEPS.items():
        unknown = deps - LAYER_DEPS.keys()
        if unknown:
            raise ValueError(
                f"layer DAG: {package} depends on undeclared {sorted(unknown)}"
            )
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 visiting, 1 done

    def visit(package: str, stack: List[str]) -> None:
        mark = state.get(package)
        if mark == 1:
            return
        if mark == 0:
            cycle = stack[stack.index(package):] + [package]
            raise ValueError("layer DAG has a cycle: " + " -> ".join(cycle))
        state[package] = 0
        for dep in sorted(LAYER_DEPS[package]):
            visit(dep, stack + [package])
        state[package] = 1
        order.append(package)

    for package in sorted(LAYER_DEPS):
        visit(package, [])
    return order


validate_dag()  # a bad declaration fails at import, not mid-run


@register
class LayeringRule(Rule):
    """Imports between repro packages must follow the declared layer DAG."""

    rule_id = "layering"
    hint = (
        "the five-layer stack only imports downward; invert the dependency "
        "(Protocol/callback) or move the code to the layer that needs it"
    )

    def applies(self, module: ParsedModule) -> bool:
        # The facade re-exports everything; tests may import anything.
        return super().applies(module) and module.module != "repro"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        package = module.package
        if package is None:
            return
        allowed = LAYER_DEPS.get(package)
        for node, target in _imported_modules(module):
            target_package = _repro_package(target, module)
            if target_package is None or target_package == package:
                continue
            if allowed is None:
                yield module.finding(
                    node, self.rule_id,
                    f"package {package!r} is not declared in the layer DAG",
                    "declare it (and its allowed imports) in "
                    "repro.lint.rules.layering.LAYER_DEPS",
                )
                return  # one finding per undeclared package is enough
            if target_package not in LAYER_DEPS:
                yield module.finding(
                    node, self.rule_id,
                    f"import of undeclared package repro.{target_package}",
                    "declare it in repro.lint.rules.layering.LAYER_DEPS",
                )
            elif target_package not in allowed:
                yield module.finding(
                    node, self.rule_id,
                    f"{package} may not import repro.{target_package} "
                    f"(allowed: {', '.join(sorted(allowed)) or 'nothing'})",
                    self.hint,
                )


def _imported_modules(module: ParsedModule) -> Iterator[tuple]:
    """Yield ``(node, dotted_module)`` for every import in the module."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module, node.level)
                if base is None:
                    continue
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or ""
            yield node, target
            # ``from repro import file_service`` imports a package via
            # its alias list; attribute the edge to each named child
            # package (re-exported classes are not package edges).
            if target in ("repro",):
                for alias in node.names:
                    if alias.name in LAYER_DEPS:
                        yield node, f"repro.{alias.name}"


def _resolve_relative(module: ParsedModule, level: int) -> Optional[str]:
    if module.module is None:
        return None
    parts = module.module.split(".")
    # A module's package is its dotted name minus the leaf; __init__
    # modules already name their package.
    if not module.path.name == "__init__.py":
        parts = parts[:-1]
    if level - 1 >= len(parts):
        return None
    return ".".join(parts[: len(parts) - (level - 1)])


def _repro_package(target: str, module: ParsedModule) -> Optional[str]:
    parts = target.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]
