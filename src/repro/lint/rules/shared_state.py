"""Rule ``shared-state-discipline``: shared structures mutate via their owner.

The race detector (DESIGN.md §12) can only vouch for interference
freedom on the paths it can see — and its happens-before edges follow
the *ownership* story: the disk server is one serial actor, the stable
store's directory changes through ``put``/``delete``/``recover``, the
track cache through its read/write/invalidate API.  Code that reaches
*through* another object and mutates one of these structures directly
(``server._checksums[f] = crc`` from a scrubber, a workload poking
``volume.stable._directory``) bypasses both the serialization chain
and the monitor's write recording: the mutation is invisible to the
detector and unordered by design.

This rule bans mutations of :data:`OWNED_ATTRS` — the reviewed list of
shared mutable structures behind the concurrent pipeline — whenever
the attribute is reached through anything other than ``self``.  Reads
are free; mutation is the owner's job, exposed as an entry point the
happens-before instrumentation covers.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: Packages forming the concurrent data plane the detector audits.
SCOPE: FrozenSet[str] = frozenset(
    {"simdisk", "disk_service", "file_service", "cluster", "chaos", "replication"}
)

#: Shared mutable structures the happens-before monitor instruments,
#: by attribute name.  DESIGN.md §12 documents each owner.
OWNED_ATTRS: FrozenSet[str] = frozenset(
    {
        # DiskServer's protection record and deferred stable writes
        "_checksums",
        "_mirrored",
        "_mirrored_fragments",
        "_unreconciled",
        "_pending_stable",
        # StableStore's key directory
        "_directory",
        # TrackCache's track -> sectors map
        "_tracks",
        # RequestQueue's pending list
        "_pending",
        # FragmentBitmap / FreeExtentTable internals
        "_bits",
        "_rows",
        "_row_of",
    }
)

#: Method calls that mutate a container in place.
MUTATORS: FrozenSet[str] = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert",
        "move_to_end", "pop", "popitem", "remove", "setdefault", "update",
    }
)


@register
class SharedStateRule(Rule):
    """Mutation of another object's shared structure."""

    rule_id = "shared-state-discipline"
    hint = (
        "mutate shared structures through the owning object's entry "
        "points (they carry the happens-before instrumentation and the "
        "serialization chain); direct reach-through writes are invisible "
        "to the race detector"
    )

    def applies(self, module: ParsedModule) -> bool:
        return super().applies(module) and module.package in SCOPE

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            owned = _foreign_mutation(node)
            if owned is not None:
                yield module.finding(
                    node, self.rule_id,
                    f"mutates {owned} through a non-self reference",
                    self.hint,
                )


def _foreign_mutation(node: ast.AST) -> str | None:
    """The owned attribute this node mutates through a foreign base."""
    if isinstance(node, (ast.Assign, ast.Delete)):
        for target in node.targets:
            owned = _foreign_store(target)
            if owned is not None:
                return owned
    elif isinstance(node, ast.AugAssign):
        return _foreign_store(node.target)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATORS:
            owned = _foreign_owned(node.func.value)
            if owned is not None:
                return owned
    return None


def _foreign_store(target: ast.expr) -> str | None:
    """Owned attr behind a subscript/attribute store with a foreign base."""
    if isinstance(target, ast.Subscript):
        return _foreign_owned(target.value)
    if isinstance(target, ast.Attribute):
        # rebinding the structure itself (``server._checksums = {}``)
        if target.attr in OWNED_ATTRS and not _is_self(target.value):
            return target.attr
    return None


def _foreign_owned(expr: ast.expr) -> str | None:
    """``expr`` as an owned attribute reached through a non-self base."""
    if (
        isinstance(expr, ast.Attribute)
        and expr.attr in OWNED_ATTRS
        and not _is_self(expr.value)
    ):
        return expr.attr
    return None


def _is_self(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "self"
