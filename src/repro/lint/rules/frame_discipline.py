"""Rule ``frame-discipline``: forks join, branches scope, charges review.

Deferred-time service frames (DESIGN.md §10) are the substrate the
overlap numbers stand on; three mechanical mistakes corrupt their
accounting silently — every test stays green, the latency tables just
stop meaning anything:

1. **an unjoined fork** — a function fans out with
   :class:`~repro.common.frames.FrameFork` but never calls ``join()``,
   so the frame cursor stays at the *fork point* instead of the slowest
   branch and the fan-out becomes free;
2. **an unscoped branch** — ``fork.branch()`` called outside a ``with``
   statement never replays the cursor nor records the branch end (and
   never closes its happens-before task);
3. **a cursor poke** — assigning ``frame.cursor_us`` directly teleports
   a frame's clock without the max/replay bookkeeping ``charge_elapsed``
   and ``FrameFork`` maintain, leaking time across frame boundaries.
   Service code *charges*; only :data:`ALLOWED_CURSOR_MODULES` — the
   frame substrate and the per-disk timeline that prices reservations
   under it — may move a cursor by hand.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: Modules reviewed as legitimate direct movers of a frame cursor.
ALLOWED_CURSOR_MODULES: FrozenSet[str] = frozenset(
    {
        # the frame substrate itself (charge_elapsed, FrameFork replay)
        "repro.common.frames",
        # per-disk busy-until reservations advance the frame they serve
        "repro.simdisk.timeline",
        # the disk's reference paths inline DiskTimeline.charge_ceiled
        # operation for operation (DESIGN.md §13) and therefore move
        # the cursor exactly where the timeline would
        "repro.simdisk.disk",
        # the shard server's busy-until timeline prices metadata ops
        # under the same reservation discipline as a disk's
        "repro.naming.shard",
    }
)

#: Frame-cursor attributes no one else may assign.
CURSOR_ATTRS: FrozenSet[str] = frozenset({"cursor_us"})


@register
class FrameDisciplineRule(Rule):
    """Fork/branch/charge misuse in deferred-time service code."""

    rule_id = "frame-discipline"
    hint = (
        "join every FrameFork (the join charges the slowest branch), "
        "enter branch() with a with-statement, and move frame time by "
        "charging (charge_elapsed / DiskTimeline.charge) — only the "
        "substrate modules in repro.lint.rules.frame_discipline."
        "ALLOWED_CURSOR_MODULES assign cursor_us directly"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        cursor_allowed = module.module in ALLOWED_CURSOR_MODULES
        for qualname, func in _functions(module.tree):
            own = list(_own_nodes(func))
            forks = [
                node for node in own
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "FrameFork"
            ]
            joins = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                for node in own
            )
            for fork in forks:
                if not joins:
                    yield module.finding(
                        fork, self.rule_id,
                        f"{qualname} creates a FrameFork but never joins it",
                        self.hint,
                    )
            scoped = _with_scoped_calls(own)
            for node in own:
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "branch"
                    and node not in scoped
                ):
                    yield module.finding(
                        node, self.rule_id,
                        f"{qualname} calls branch() outside a with statement",
                        self.hint,
                    )
                if not cursor_allowed and _pokes_cursor(node):
                    yield module.finding(
                        node, self.rule_id,
                        f"{qualname} assigns a frame cursor directly "
                        "instead of charging",
                        self.hint,
                    )


def _pokes_cursor(node: ast.AST) -> bool:
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    return any(
        isinstance(target, ast.Attribute) and target.attr in CURSOR_ATTRS
        for target in targets
    )


def _with_scoped_calls(nodes: List[ast.AST]) -> set:
    """Calls appearing as a with-statement's context expression."""
    scoped = set()
    for node in nodes:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    scoped.add(item.context_expr)
    return scoped


def _functions(tree: ast.Module) -> Iterator[tuple]:
    """Yield ``(qualname, def-node)`` for every function, nested included."""

    def visit(node: ast.AST, prefix: str) -> Iterator[tuple]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Every node of a function body, minus nested function/class bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(node))
