"""Rule ``no-wall-clock``: simulated components never read host time.

Every run of the facility must be bit-for-bit deterministic — the PR-1
chaos sweep replays a workload and asserts its write trace matches the
counting run, which one ``time.time()`` in a code path silently breaks.
All time therefore flows through :class:`repro.common.clock.SimClock`;
importing :mod:`time` or :mod:`datetime` inside ``repro.*`` is a
finding.  Benchmark shims (``repro.benchmarks*``) are exempt: measuring
the host is their whole job.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: Modules whose import means wall-clock access.
BANNED_MODULES: Set[str] = {"time", "datetime"}

#: Module prefixes exempt from the ban (host-timing shims).
EXEMPT_PREFIXES: Tuple[str, ...] = ("repro.benchmarks",)

#: Call attributes flagged even if the import itself was suppressed,
#: so the misuse site is named precisely.
BANNED_CALLS: Set[str] = {
    "time", "monotonic", "perf_counter", "process_time", "sleep",
    "time_ns", "monotonic_ns", "perf_counter_ns", "now", "today", "utcnow",
}


@register
class WallClockRule(Rule):
    """Wall-clock time is banned in simulated code; use SimClock."""

    rule_id = "no-wall-clock"
    hint = (
        "thread the shared SimClock (repro.common.clock) into this code; "
        "host time breaks replay determinism"
    )

    def applies(self, module: ParsedModule) -> bool:
        return super().applies(module) and not (
            module.module or ""
        ).startswith(EXEMPT_PREFIXES)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        clock_aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        clock_aliases.add(alias.asname or root)
                        yield module.finding(
                            node, self.rule_id,
                            f"import of wall-clock module {alias.name!r}",
                            self.hint,
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in BANNED_MODULES:
                    names = ", ".join(a.name for a in node.names)
                    yield module.finding(
                        node, self.rule_id,
                        f"import of {names} from wall-clock module {root!r}",
                        self.hint,
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in BANNED_CALLS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in (BANNED_MODULES | clock_aliases)
                ):
                    yield module.finding(
                        node, self.rule_id,
                        f"wall-clock call {func.value.id}.{func.attr}()",
                        self.hint,
                    )
