"""Domain rules.  Importing this package registers every rule.

Each module holds one rule plus its policy constants (the layer DAG,
the registered write sites, the allowed stdlib raises); the constants
are module-level so tests — and reviewers — can read the policy without
chasing code.
"""

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    callback_purity,
    clock_advance,
    crashpoint,
    frame_discipline,
    layering,
    metrics_names,
    randomness,
    shared_state,
    taxonomy,
    wallclock,
)
