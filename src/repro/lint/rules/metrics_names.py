"""Rule ``metrics-naming``: counter names follow ``layer.noun_verb``.

The benchmark tables (EXPERIMENTS.md) and the chaos coverage report
select counters by dotted prefix — ``metrics.total("disk.")`` — so a
misspelt or miscased counter name silently drops out of every report.
Counter names are dotted paths of lowercase ``[a-z0-9_]`` segments with
at least two segments: a leading layer/component, interior instance
ids, and a trailing counted noun (``disk.0.sectors_written``,
``file_agent.cache.hits``).

Static checking covers what is statically known: plain string literals
must match the full grammar; for f-strings (``f"{self._prefix}.reads"``)
every constant fragment must stay inside the grammar's alphabet.
Names built in variables are out of reach and out of scope.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: Full grammar for a statically-known counter name.
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Alphabet any f-string fragment of a name must stay inside.
FRAGMENT_RE = re.compile(r"^[a-z0-9_.]*$")

#: Metrics methods whose first argument is an instrument name (counters,
#: histograms via observe/timer/histogram, gauges) or a prefix.  The
#: pre-bound handle constructors resolve a name exactly once, so they
#: are name sites too — the only ones hot paths still format.
NAME_METHODS = frozenset(
    {
        "add", "get", "observe", "timer", "histogram", "gauge", "get_gauge",
        "counter", "histogram_handle", "gauge_handle",
    }
)
PREFIX_METHODS = frozenset({"total"})

PREFIX_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*\.?$")


@register
class MetricsNamingRule(Rule):
    """Literal counter names must match the documented grammar."""

    rule_id = "metrics-naming"
    hint = (
        "counter names are dotted lowercase segments, layer first, counted "
        "noun last: e.g. disk.0.sectors_written (see Metrics docstring)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.args
                and _receiver_is_metrics(node.func.value)
            ):
                continue
            method = node.func.attr
            if method in NAME_METHODS:
                pattern, kind = NAME_RE, "counter name"
            elif method in PREFIX_METHODS:
                pattern, kind = PREFIX_RE, "counter prefix"
            else:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if not pattern.match(first.value):
                    yield module.finding(
                        first, self.rule_id,
                        f"{kind} {first.value!r} violates the "
                        "layer.noun_verb grammar",
                        self.hint,
                    )
            elif isinstance(first, ast.JoinedStr):
                yield from self._check_joined(module, first, kind)

    def _check_joined(
        self, module: ParsedModule, joined: ast.JoinedStr, kind: str
    ) -> Iterator[Finding]:
        for index, value in enumerate(joined.values):
            if not (
                isinstance(value, ast.Constant) and isinstance(value.value, str)
            ):
                continue
            fragment = value.value
            ok = bool(FRAGMENT_RE.match(fragment))
            if index == 0 and fragment and not fragment[0].islower():
                ok = False
            if not ok:
                yield module.finding(
                    joined, self.rule_id,
                    f"{kind} fragment {fragment!r} leaves the "
                    "layer.noun_verb alphabet [a-z0-9_.]",
                    self.hint,
                )


def _receiver_is_metrics(expr: ast.expr) -> bool:
    """True when the call receiver is plausibly a Metrics instance.

    Matches ``metrics``, ``self.metrics``, ``self.bus.metrics``,
    ``self._metrics`` — any dotted chain whose final name mentions
    ``metrics``.  Heuristic by design: a linter with false negatives on
    exotic receivers beats one with false positives on ``set.add``.
    """
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    else:
        return False
    return "metrics" in name.lower()
