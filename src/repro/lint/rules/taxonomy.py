"""Rule ``error-taxonomy``: raises construct :class:`RhodosError` kinds.

Callers across layers distinguish facility failures from programming
errors by catching branches of the hierarchy in
:mod:`repro.common.errors`; a stray ``raise Exception(...)`` (or a
stdlib type a retry loop cannot classify) punches a hole in that
contract.  Every ``raise`` in ``repro.*`` must therefore construct a
``RhodosError`` subclass or one of the assertion-flavoured stdlib types
in :data:`ALLOWED_STDLIB` (precondition and invariant violations are
programming errors, not facility failures — they stay stdlib on
purpose).  Re-raising a caught object (``raise``, ``raise err``) is
always fine.

The set of ``RhodosError`` subclasses is read from the AST of
``repro/common/errors.py`` itself, so extending the hierarchy never
requires touching the linter; classes derived locally from a known
error type are recognised too.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, Optional, Set

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: Stdlib exception types a ``raise`` may construct: assertion-flavoured
#: programming-error types, plus SystemExit for CLI entry points.
#: Deliberately *not* here: Exception, OSError/IOError, KeyError,
#: IndexError, StopIteration — facility failures must be classifiable.
ALLOWED_STDLIB: FrozenSet[str] = frozenset(
    {
        "ValueError",
        "TypeError",
        "AssertionError",
        "NotImplementedError",
        "RuntimeError",
        "SystemExit",
    }
)


@lru_cache(maxsize=1)
def rhodos_error_names() -> FrozenSet[str]:
    """Every class in repro/common/errors.py descending from RhodosError."""
    errors_py = Path(__file__).resolve().parents[2] / "common" / "errors.py"
    tree = ast.parse(errors_py.read_text(encoding="utf-8"))
    bases: Dict[str, Set[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases[node.name] = {
                base.id for base in node.bases if isinstance(base, ast.Name)
            }
    known: Set[str] = {"RhodosError"}
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in known and parents & known:
                known.add(name)
                changed = True
    return frozenset(known)


@register
class TaxonomyRule(Rule):
    """Raised exceptions must belong to the Rhodos error taxonomy."""

    rule_id = "error-taxonomy"
    hint = (
        "raise a RhodosError subclass from repro.common.errors (add one if "
        "no branch fits), or an assertion-flavoured stdlib type: "
        + ", ".join(sorted(ALLOWED_STDLIB))
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        local_ok = _locally_derived_ok(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _raised_class_name(node.exc)
            if name is None:
                continue  # bare re-raise or a caught-object variable
            if (
                name in ALLOWED_STDLIB
                or name in rhodos_error_names()
                or name in local_ok
            ):
                continue
            yield module.finding(
                node, self.rule_id,
                f"raise of {name} is outside the Rhodos error taxonomy",
                self.hint,
            )


def _raised_class_name(exc: ast.expr) -> Optional[str]:
    """Class name being raised, or None when it is not a class reference.

    ``raise Foo(...)`` and ``raise Foo`` name a class; ``raise err``
    (lowercase) re-raises a caught or stored object and is exempt —
    whatever constructed it was checked at its own raise site.
    ``raise errors.Foo(...)`` resolves through the attribute.
    """
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        name = exc.attr
    elif isinstance(exc, ast.Name):
        name = exc.id
    else:
        return None
    return name if name[:1].isupper() else None


def _locally_derived_ok(tree: ast.Module) -> Set[str]:
    """Classes defined in this module that derive from an accepted type."""
    bases: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            names: Set[str] = set()
            for base in node.bases:
                if isinstance(base, ast.Name):
                    names.add(base.id)
                elif isinstance(base, ast.Attribute):
                    names.add(base.attr)
            bases[node.name] = names
    accepted = set(rhodos_error_names()) | set(ALLOWED_STDLIB)
    ok: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in ok and parents & (accepted | ok):
                ok.add(name)
                changed = True
    return ok
