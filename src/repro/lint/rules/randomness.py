"""Rule ``no-ambient-randomness``: every RNG is seeded and explicit.

The RPC bus replays message-fault schedules from a seed, the fault
injector derives torn-write lengths from a seed, workload generators
take a seed — the replay contract of the whole simulation is that all
randomness is *threaded*, never ambient.  Module-level ``random.*``
calls draw from interpreter-global state that any import can perturb,
and ``random.Random()`` without a seed draws from the OS; both are
findings.  ``random.Random(seed)`` is the blessed pattern.

Unlike most rules this one also covers ``tests/``: a test that flakes
with the dice is a test that cannot bisect a regression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: Names importable from :mod:`random` without a finding.
ALLOWED_FROM_RANDOM: Set[str] = {"Random"}

#: Other ambient entropy sources, flagged as calls.
BANNED_ENTROPY_CALLS: Set[Tuple[str, str]] = {
    ("os", "urandom"),
    ("uuid", "uuid4"),
}


@register
class RandomnessRule(Rule):
    """Ambient (module-level or unseeded) randomness is banned."""

    rule_id = "no-ambient-randomness"
    hint = (
        "construct random.Random(seed) with an explicit seed and pass it "
        "down; ambient RNG state breaks seeded replay"
    )

    def applies(self, module: ParsedModule) -> bool:
        # Tests are in scope too (module is None for them): determinism
        # of the suite is part of the replay contract.
        return True

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        random_aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    banned = [
                        a.name for a in node.names
                        if a.name not in ALLOWED_FROM_RANDOM
                    ]
                    if banned:
                        yield module.finding(
                            node, self.rule_id,
                            "import of module-level random function(s) "
                            + ", ".join(banned),
                            self.hint,
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, random_aliases)

    def _check_call(
        self, module: ParsedModule, node: ast.Call, random_aliases: Set[str]
    ) -> Iterator[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
        ):
            return
        owner, attr = func.value.id, func.attr
        if owner in random_aliases:
            if attr == "Random":
                if not node.args and not node.keywords:
                    yield module.finding(
                        node, self.rule_id,
                        "unseeded random.Random() — seeds itself from the OS",
                        self.hint,
                    )
            elif attr != "SystemRandom":
                yield module.finding(
                    node, self.rule_id,
                    f"module-level RNG call random.{attr}() uses ambient "
                    "interpreter-global state",
                    self.hint,
                )
            else:
                yield module.finding(
                    node, self.rule_id,
                    "random.SystemRandom draws from the OS (not replayable)",
                    self.hint,
                )
        elif (owner, attr) in BANNED_ENTROPY_CALLS:
            yield module.finding(
                node, self.rule_id,
                f"ambient entropy source {owner}.{attr}()",
                self.hint,
            )
