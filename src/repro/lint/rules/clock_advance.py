"""Rule ``clock-advance-discipline``: only timeline code moves the clock.

The concurrent request pipeline (PR 5) rests on one invariant: a
component models a delay by *charging* it — to its disk's timeline or
to the active service frame — never by advancing the shared
:class:`~repro.common.clock.SimClock` inline.  One stray
``clock.advance_us(...)`` in a service path silently re-serializes the
world: the delay is imposed on every concurrent operation instead of
the one that incurred it, and overlap quietly evaporates while every
test stays green.

This rule bans calls to ``advance_us``/``advance_to`` everywhere in
``repro.*`` except :data:`ALLOWED_MODULES` — the reviewed set of
modules whose *job* is moving global time (the frame/timeline
substrate, the event loop, and the top-level workload drivers that own
the clock between operations).  Adding a module to the allowlist is
the act of reviewing it.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.lint.framework import Finding, ParsedModule, Rule, register

#: The clock-mutation methods under discipline.
ADVANCE_CALLS: FrozenSet[str] = frozenset({"advance_us", "advance_to"})

#: Modules reviewed as legitimate movers of global simulated time.
#: DESIGN.md §10 documents the discipline.
ALLOWED_MODULES: FrozenSet[str] = frozenset(
    {
        # the clock's own implementation
        "repro.common.clock",
        # the deferral substrate: charges fall back to inline
        # advancement only in blocking mode
        "repro.common.frames",
        # blocking-mode waits on a disk's busy-until timeline
        "repro.simdisk.timeline",
        # the event loop advances to each next scheduled event
        "repro.simkernel.loop",
        # interleaved lock-wait stepper: charges think time between steps
        "repro.simkernel.runner",
        # scripted failure schedules advance to their next event
        "repro.recovery.schedule",
        # retransmission timer: the caller blocks for the retry interval
        "repro.rpc.endpoint",
        # shard-server timeline: blocking mode waits on shard busy-until
        "repro.naming.shard",
        # availability campaign driver: owns the clock between client ops
        "repro.chaos.availability",
    }
)


@register
class ClockAdvanceRule(Rule):
    """Inline clock advancement outside the timeline substrate."""

    rule_id = "clock-advance-discipline"
    hint = (
        "model the delay by charging it (DiskTimeline.charge or "
        "repro.common.frames.charge_elapsed) so concurrent operations "
        "overlap; only reviewed timeline/driver modules — see "
        "repro.lint.rules.clock_advance.ALLOWED_MODULES — may move the "
        "global clock"
    )

    def applies(self, module: ParsedModule) -> bool:
        return super().applies(module) and module.module not in ALLOWED_MODULES

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ADVANCE_CALLS
            ):
                yield module.finding(
                    node, self.rule_id,
                    f"inline clock advancement via {node.func.attr}() "
                    "outside the timeline substrate",
                    self.hint,
                )
