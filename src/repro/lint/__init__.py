"""Static analysis for the reproduction's machine-checked invariants.

``python -m repro.lint [--strict] [--json] [paths…]`` walks ``src/``
and ``tests/`` and enforces the invariants the paper's reliability
argument (and the PR-1 chaos sweep) silently depend on:

========================  ====================================================
rule id                   invariant
========================  ====================================================
``layering``              imports follow the declared five-layer DAG (Fig. 1)
``no-wall-clock``         all time flows through ``SimClock``
``no-ambient-randomness`` every RNG is seeded and threaded explicitly
``error-taxonomy``        raises construct ``RhodosError`` subclasses
``crash-point-discipline``physical writes route through the crash-point hook
``metrics-naming``        counter names follow the ``layer.noun_verb`` grammar
========================  ====================================================

Suppress one finding with ``# repro-lint: allow[rule-id] <reason>``;
grandfather many with the committed baseline (``--write-baseline``).
See DESIGN.md §7 for the rule catalogue and policy.
"""

from repro.lint.framework import (
    Finding,
    LintResult,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    load_baseline,
    register,
    save_baseline,
)

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "save_baseline",
]
