"""Simulated physical disks.

The paper's performance claims are stated in terms of *disk
references*, seek elimination and rotational-latency amortisation, on
1994-era drives we obviously do not have.  This package substitutes a
faithful service-time model: a sector-addressed disk with cylinder /
track / sector geometry, a seek-plus-rotation-plus-transfer timing
model, per-disk metrics, fault injection (crashes, bad sectors, torn
writes), and the mirrored careful-write *stable storage* the paper
relies on for all vital structural information (sections 2.1, 4, 6.6).

Absolute times are calibration constants; the shapes the paper claims
(one reference per contiguous run, two references per small file, seek
saved by FIT/data contiguity) fall out of the access pattern, which the
model reproduces exactly.
"""

from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.timing import DiskTimingModel
from repro.simdisk.disk import SimDisk
from repro.simdisk.stable import StableStore
from repro.simdisk.faults import FaultInjector
from repro.simdisk.raid import (
    ArrayFailedError,
    ArrayState,
    RaidRebuilder,
    StripedVolume,
)

__all__ = [
    "DiskGeometry",
    "DiskTimingModel",
    "SimDisk",
    "StableStore",
    "FaultInjector",
    "ArrayFailedError",
    "ArrayState",
    "RaidRebuilder",
    "StripedVolume",
]
