"""Per-disk busy timelines over the deferred-time frame machinery.

Before this module existed, every disk reference advanced the one
shared :class:`~repro.common.clock.SimClock` inline, so two requests to
two *different* disks cost the sum of their service times instead of
the max.  The timeline splits the two meanings that call conflated:

* **service time charged to a disk** — each :class:`SimDisk` owns a
  :class:`DiskTimeline` whose ``busy_until_us`` advances by the
  modelled service time of every reference it absorbs;
* **global clock advanced** — only happens when somebody *waits* for a
  timeline: the blocking path (``charge`` with no active frame) waits
  inline, exactly reproducing the old semantics for sequential
  callers, while overlapped paths defer the wait to the event loop.

The frame machinery itself lives in :mod:`repro.common.frames` (so the
rpc and agent layers can charge their latencies frame-aware without
importing the disk substrate); this module re-exports it for the
pipeline and driver, and adds the disk-specific busy-until resource.
"""

from __future__ import annotations

from repro.analysis import monitor as _monitor
from repro.common.clock import SimClock
from repro.common.frames import (  # noqa: F401 - re-exported surface
    FrameFork,
    ServiceFrame,
    active_frame,
    ceil_us,
    charge_elapsed,
    frame_now,
    service_frame,
)


class DiskTimeline:
    """One disk's busy-until timeline.

    Args:
        clock: the shared simulated clock the timeline waits against.

    Attributes:
        busy_until_us: absolute time the disk finishes its last
            accepted reference; new charges start at
            ``max(now, busy_until_us)``.
        busy_total_us: cumulative service time ever charged — the
            numerator of the utilization gauge.
        last_wait_us: queue wait of the most recent charge (how long it
            sat behind earlier reservations).
    """

    __slots__ = ("clock", "busy_until_us", "busy_total_us", "last_wait_us")

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.busy_until_us = 0
        self.busy_total_us = 0
        self.last_wait_us = 0

    def charge(self, elapsed_us: float) -> tuple[int, int]:
        """Charge one reference's service time; returns ``(start, end)``.

        With no frame active this blocks in simulated time — the global
        clock advances to ``end`` exactly as the old inline
        ``advance_us`` did for sequential callers.  Inside a
        :func:`~repro.common.frames.service_frame` only the frame
        cursor moves; the global clock is left for the event loop to
        advance.
        """
        return self.charge_ceiled(ceil_us(elapsed_us))

    def charge_ceiled(self, busy: int) -> tuple[int, int]:
        """:meth:`charge` for a service time already in whole us.

        The disk's service-time memo caches the ceiled integer next to
        the raw float, so repeat references skip the rounding too.
        """
        # Reservation order is a real synchronization point: the disk
        # head serves charges in the order they reserved the timeline.
        # (Guarded so the no-monitor common case pays two attribute
        # reads instead of a no-op method call.)
        mon = _monitor.active()
        if mon.enabled:
            mon.chain(self)
        frame = active_frame(self.clock)
        now = frame.cursor_us if frame is not None else self.clock.now_us
        start = max(now, self.busy_until_us)
        end = start + busy
        self.busy_until_us = end
        self.busy_total_us += busy
        self.last_wait_us = start - now
        if frame is not None:
            frame.cursor_us = end
            frame.waited_us += start - now
            frame.charged_us += busy
        else:
            self.clock.advance_to(end)
        return start, end

    def utilization_percent(self) -> int:
        """Busy time as an integer percentage of elapsed simulated time.

        Measured against the later of the global clock and the
        timeline's own horizon, so deferred-mode reservations count as
        elapsed time instead of inflating the ratio past 100.
        """
        horizon = max(self.clock.now_us, self.busy_until_us)
        if horizon <= 0:
            return 0
        return min(100, self.busy_total_us * 100 // horizon)

    def __repr__(self) -> str:
        return (
            f"DiskTimeline(busy_until_us={self.busy_until_us}, "
            f"busy_total_us={self.busy_total_us})"
        )
