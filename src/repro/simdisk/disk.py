"""The simulated disk itself.

A :class:`SimDisk` is a sector store combined with the timing model and
fault injector.  Every call to :meth:`read_sectors` or
:meth:`write_sectors` is **one disk reference** — the quantity the
paper's whole design minimises — and charges the modelled service time
to the disk's own :class:`~repro.simdisk.timeline.DiskTimeline` while
tracking head position across requests.  With no service frame active
the timeline waits inline (the classic blocking semantics); inside a
frame the charge is deferred, which is what lets requests overlap
across disks.

The reference paths are the hottest code in the whole simulation —
every chaos sweep, availability campaign and driver scales with them —
so they are written for constant per-reference cost (DESIGN.md §13):
metric names resolve once at construction into pre-bound handles,
sectors live in a chunked :class:`~repro.simdisk.store.SectorStore`
with O(1) contiguous slicing, spans are only constructed when the
tracer is actually enabled, and a fault-free disk skips the per-sector
media scans entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import monitor as _monitor
from repro.common.clock import SimClock
from repro.common.errors import (
    BadAddressError,
    BadSectorError,
    DiskCrashedError,
    MediaError,
)
# _FRAMES is the frame machinery's own stack table; the reference hot
# path reads it directly so a charge in blocking mode (no frame open)
# costs one dict probe instead of a function call per reference.  The
# simulation is single-threaded by construction (DESIGN.md §2), so the
# probe sees exactly what active_frame would return.
from repro.common.frames import _FRAMES, ceil_us
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER, Tracer
from repro.simdisk.faults import FaultInjector
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.store import SectorStore
from repro.simdisk.timeline import DiskTimeline
from repro.simdisk.timing import DiskTimingModel


class SimDisk:
    """A sector-addressed simulated disk drive.

    Args:
        disk_id: identifies this drive in metric names (``disk.<id>.*``).
        geometry: physical layout.
        clock: shared simulated clock, advanced by each reference.
        metrics: shared counter registry.
        timing: service-time model (defaults are a 1990s 5400 rpm drive).
        faults: fault injector; a fresh, quiescent one by default.
        tracer: records one span per disk reference; disabled by default.
    """

    __slots__ = (
        "disk_id",
        "geometry",
        "clock",
        "metrics",
        "tracer",
        "timing",
        "faults",
        "timeline",
        "_sectors",
        "_head_cylinder",
        "_head_angular",
        "_prefix",
        "_total_sectors",
        "_service_memo",
        "_memo_get",
        "_store_read",
        "_store_write",
        "_frame_key",
        "_p_reads",
        "_p_writes",
        "_p_sectors_read",
        "_p_sectors_written",
        "_p_readahead",
        "_p_readahead_busy",
        "_p_service",
        "_c_reads",
        "_c_writes",
        "_c_references",
        "_c_sectors_read",
        "_c_sectors_written",
        "_c_readahead_sectors",
        "_c_sectors_corrupted",
        "_c_media_errors",
        "_c_busy_us",
        "_h_service_us",
        "_g_utilization",
    )

    def __init__(
        self,
        disk_id: str,
        geometry: DiskGeometry,
        clock: SimClock,
        metrics: Metrics,
        timing: Optional[DiskTimingModel] = None,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        timeline: Optional[DiskTimeline] = None,
    ) -> None:
        self.disk_id = disk_id
        self.geometry = geometry
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.timing = timing or DiskTimingModel()
        self.faults = faults or FaultInjector()
        self.timeline = timeline or DiskTimeline(clock)
        self._sectors = SectorStore(geometry.sector_size)
        self._head_cylinder = 0
        self._head_angular = 0.0
        self._prefix = f"disk.{disk_id}"
        self._total_sectors = geometry.total_sectors
        # Service-time memo: the timing walk is a pure function of
        # (head position, request), and campaigns hammer a bounded set
        # of (position, request) pairs — sweeps wrap the platter, chaos
        # workloads stride a region — so repeat references skip the
        # whole seek/rotation/transfer computation.  Values are the
        # computed results verbatim, so modelled time is bit-equal with
        # the memo cold, warm, or cleared.
        self._service_memo: dict = {}
        # Bound-method caches for the per-reference loop: the store and
        # the memo dict live exactly as long as the disk and are never
        # replaced, so each lookup below is paid once instead of per
        # reference.  (memo.clear() on overflow keeps the same dict, so
        # the cached .get stays valid.)
        self._memo_get = self._service_memo.get
        self._store_read = self._sectors.read_range
        self._store_write = self._sectors.write_range
        # Frame-stack key for the inlined charge path (id is stable:
        # the disk holds a reference to the clock for its lifetime).
        self._frame_key = id(clock)
        # Deferred per-reference accounting (DESIGN.md §13): the hot
        # paths below accumulate into these plain attributes, and
        # _flush_accounting drains them into the registry before any
        # metrics read.  Counters are commutative and this disk is the
        # sole writer of its histogram and gauge names, so observers
        # cannot tell the difference.
        self._p_reads = 0
        self._p_writes = 0
        self._p_sectors_read = 0
        self._p_sectors_written = 0
        self._p_readahead = 0
        self._p_readahead_busy = 0
        self._p_service: list = []
        metrics.register_flush(self._flush_accounting)
        # Pre-bound instrument handles: the name f-strings below are the
        # only ones this disk ever formats — every reference afterwards
        # is a handle update with a cached string hash.
        self._c_reads = metrics.counter(f"{self._prefix}.reads")
        self._c_writes = metrics.counter(f"{self._prefix}.writes")
        self._c_references = metrics.counter(f"{self._prefix}.references")
        self._c_sectors_read = metrics.counter(f"{self._prefix}.sectors_read")
        self._c_sectors_written = metrics.counter(
            f"{self._prefix}.sectors_written"
        )
        self._c_readahead_sectors = metrics.counter(
            f"{self._prefix}.readahead_sectors"
        )
        self._c_sectors_corrupted = metrics.counter(
            f"{self._prefix}.sectors_corrupted"
        )
        self._c_media_errors = metrics.counter(f"{self._prefix}.media_errors")
        self._c_busy_us = metrics.counter(f"{self._prefix}.busy_us")
        self._h_service_us = metrics.histogram_handle(
            f"{self._prefix}.service_us"
        )
        self._g_utilization = metrics.gauge_handle(f"{self._prefix}.utilization")

    # ------------------------------------------------------------- io

    def read_sectors(self, start: int, n_sectors: int) -> bytes:
        """Read ``n_sectors`` contiguous sectors in one disk reference."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "simdisk", "read",
                disk=self.disk_id, sector=start, n_sectors=n_sectors,
            ):
                return self._read_sectors(start, n_sectors)
        return self._read_sectors(start, n_sectors)

    def _read_sectors(self, start: int, n_sectors: int) -> bytes:
        faults = self.faults
        if faults.crashed:
            raise DiskCrashedError(f"{self.disk_id}: disk is crashed")
        if not (0 <= start and 0 < n_sectors
                and start + n_sectors <= self._total_sectors):
            self._check_range(start, n_sectors)
        if faults.bad_sectors or faults._media_errors:
            self._check_media(start, n_sectors)
        # --- the charge sequence (DESIGN.md §13) -------------------
        # Inlined in both reference paths: at campaign scale even the
        # one method call per reference that a shared helper would cost
        # is measurable.  _service_lookup documents the memo; the
        # timeline update is DiskTimeline.charge_ceiled operation for
        # operation (that module keeps the readable original), and an
        # installed race monitor sees the same chain() on the same
        # timeline.
        key = (self._head_cylinder, self._head_angular, start, n_sectors)
        hit = self._memo_get(key)
        if hit is None:
            hit = self._service_lookup(key)
        busy, elapsed_int, cylinder, angular = hit
        self._head_cylinder = cylinder
        self._head_angular = angular
        tl = self.timeline
        mon = _monitor._active
        if mon.enabled:
            mon.chain(tl)
        busy_until = tl.busy_until_us
        stack = _FRAMES.get(self._frame_key)
        if stack:
            frame = stack[-1]
            now = frame.cursor_us
            start_us = busy_until if busy_until > now else now
            end = start_us + busy
            tl.busy_until_us = end
            tl.busy_total_us += busy
            tl.last_wait_us = wait = start_us - now
            frame.cursor_us = end
            frame.waited_us += wait
            frame.charged_us += busy
        else:
            clock = self.clock
            now = clock._now_us
            start_us = busy_until if busy_until > now else now
            end = start_us + busy
            tl.busy_until_us = end
            tl.busy_total_us += busy
            tl.last_wait_us = start_us - now
            if end > now:
                clock._now_us = end
        self._p_service.append(elapsed_int)
        # --- end of the charge sequence -----------------------------
        self._p_reads += 1
        self._p_sectors_read += n_sectors
        return self._store_read(start, n_sectors)

    def write_sectors(self, start: int, data: bytes) -> None:
        """Write ``data`` (a whole number of sectors) in one disk reference.

        If the fault injector crashes the disk during this write, a
        prefix of the sectors reaches the platter (a *torn write*) and
        :class:`DiskCrashedError` is raised.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "simdisk", "write", disk=self.disk_id, sector=start
            ):
                self._write_sectors(start, data)
                return
        self._write_sectors(start, data)

    def _write_sectors(self, start: int, data: bytes) -> None:
        faults = self.faults
        if faults.crashed:
            raise DiskCrashedError(f"{self.disk_id}: disk is crashed")
        size = self.geometry.sector_size
        n_bytes = len(data)
        if n_bytes == 0 or n_bytes % size != 0:
            raise BadAddressError(
                f"write length {n_bytes} is not a positive multiple of {size}"
            )
        n_sectors = n_bytes // size
        if not (0 <= start and start + n_sectors <= self._total_sectors):
            self._check_range(start, n_sectors)
        # note_write's quiescent-injector fast path, inlined: with no
        # write monitor and no armed crash countdown the answer is
        # always "not torn" (the disk already proved it is not crashed
        # above), so the fault-free hot loop skips the call.
        if faults.monitor is None and faults._crash_after_writes is None:
            torn_at = None
        else:
            torn_at = faults.note_write(
                n_sectors, disk_id=self.disk_id, start=start
            )
        written = n_sectors if torn_at is None else torn_at
        self._store_write(start, data, written)
        # A rewrite remaps latent media errors (only for the sectors
        # that actually reached the platter on a torn write).
        if faults._media_errors:
            faults.heal_range(start, written)
        # --- the charge sequence (DESIGN.md §13) -------------------
        # Inlined in both reference paths: at campaign scale even the
        # one method call per reference that a shared helper would cost
        # is measurable.  _service_lookup documents the memo; the
        # timeline update is DiskTimeline.charge_ceiled operation for
        # operation (that module keeps the readable original), and an
        # installed race monitor sees the same chain() on the same
        # timeline.
        key = (self._head_cylinder, self._head_angular, start, n_sectors)
        hit = self._memo_get(key)
        if hit is None:
            hit = self._service_lookup(key)
        busy, elapsed_int, cylinder, angular = hit
        self._head_cylinder = cylinder
        self._head_angular = angular
        tl = self.timeline
        mon = _monitor._active
        if mon.enabled:
            mon.chain(tl)
        busy_until = tl.busy_until_us
        stack = _FRAMES.get(self._frame_key)
        if stack:
            frame = stack[-1]
            now = frame.cursor_us
            start_us = busy_until if busy_until > now else now
            end = start_us + busy
            tl.busy_until_us = end
            tl.busy_total_us += busy
            tl.last_wait_us = wait = start_us - now
            frame.cursor_us = end
            frame.waited_us += wait
            frame.charged_us += busy
        else:
            clock = self.clock
            now = clock._now_us
            start_us = busy_until if busy_until > now else now
            end = start_us + busy
            tl.busy_until_us = end
            tl.busy_total_us += busy
            tl.last_wait_us = start_us - now
            if end > now:
                clock._now_us = end
        self._p_service.append(elapsed_int)
        # --- end of the charge sequence -----------------------------
        self._p_writes += 1
        self._p_sectors_written += written
        if torn_at is not None:
            note = self.faults.last_crash_note
            raise DiskCrashedError(
                f"{self.disk_id}: crashed during write at sector {start} "
                f"({written}/{n_sectors} sectors reached the platter)"
                + (f" [{note}]" if note else "")
            )

    def read_in_passing(self, start: int, n_sectors: int) -> bytes:
        """Read sectors the head will pass over anyway (track readahead).

        Models the disk service's strategy of caching "the rest of the
        data from the same track" after serving a read (paper section
        4): the platter keeps rotating under the head, so these sectors
        cost transfer time at slot rate but **no seek, no rotational
        latency, and no additional disk reference**.  Callers must only
        use this for sectors on the track(s) the preceding read already
        positioned the head on.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "simdisk", "read_in_passing",
                disk=self.disk_id, sector=start, n_sectors=n_sectors,
            ):
                return self._read_in_passing(start, n_sectors)
        return self._read_in_passing(start, n_sectors)

    def _read_in_passing(self, start: int, n_sectors: int) -> bytes:
        faults = self.faults
        if faults.crashed:
            raise DiskCrashedError(f"{self.disk_id}: disk is crashed")
        self._check_range(start, n_sectors)
        if faults.bad_sectors or faults._media_errors:
            self._check_media(start, n_sectors)
        elapsed = self.timing.slot_time_us(self.geometry) * n_sectors
        self.timeline.charge(elapsed)
        self._head_angular = (
            self._head_angular + n_sectors
        ) % self.geometry.sectors_per_track
        # Accounting matches _charge: the transfer time keeps the drive
        # busy, so busy_us and the utilization gauge must see it or
        # metrics-derived utilization silently diverges from the gauge
        # under readahead-heavy loads.  No reference counter and no
        # service_us sample: a read in passing is free of seek and
        # latency and is *not* a disk reference.
        self._p_readahead += n_sectors
        self._p_readahead_busy += int(elapsed)
        return self._store_read(start, n_sectors)

    # ------------------------------------------------------ geometry

    def track_of(self, sector: int) -> int:
        return self.geometry.track_of(sector)

    def track_bounds(self, track: int) -> tuple[int, int]:
        return self.geometry.track_bounds(track)

    @property
    def head_cylinder(self) -> int:
        """Cylinder the arm currently rests on (schedulers sort by it)."""
        return self._head_cylinder

    # ------------------------------------------------------- faults

    def corrupt_at(self, sector: int, byte_offset: int, xor_mask: int) -> None:
        """Flip bits of one stored byte *at rest* (silent corruption).

        Models bit-rot on the platter: no disk reference, no timing
        charge, and nothing detects it here — reads return the rotted
        bytes verbatim, and only a layer that recorded a checksum can
        tell.  A later write of the sector overwrites the rot, which is
        why repair-from-redundancy works.
        """
        self.geometry.check_sector(sector)
        size = self.geometry.sector_size
        if not 0 <= byte_offset < size:
            raise BadAddressError(
                f"byte offset {byte_offset} outside the {size}-byte sector"
            )
        if not 0 <= xor_mask <= 0xFF:
            raise BadAddressError(f"xor mask {xor_mask} is not one byte")
        self._sectors.xor_byte(sector, byte_offset, xor_mask)  # repro-lint: allow[crash-point-discipline] at-rest rot is injected platter state, not a write the crash sweep numbers
        self._c_sectors_corrupted.add()

    def corrupt_sectors(self, start: int, n_sectors: int) -> None:
        """Rot each sector of a range deterministically.

        One byte per sector is XOR-flipped; the position and mask are a
        pure function of (fault seed, sector number), so two runs with
        the same seed rot identical bytes — which keeps every report
        downstream byte-deterministic.
        """
        seed = self.faults.seed
        for sector in range(start, start + n_sectors):
            token = (sector + 1) * 2654435761 ^ (seed * 40503)
            offset = token % self.geometry.sector_size
            mask = (token >> 11) % 255 + 1  # never zero: always a real flip
            self.corrupt_at(sector, offset, mask)

    def crash(self) -> None:
        """Take the disk offline immediately (contents persist)."""
        self.faults.crash_now()

    def repair(self) -> None:
        """Bring the disk back online after a crash."""
        self.faults.repair()

    def replace_platter(self) -> None:
        """Swap in a factory-fresh drive behind the same slot.

        Models a whole-disk replacement (the RAID tier's member swap):
        the sector store is discarded — all data gone, unwritten
        sectors read as zeroes — every fault is cleared
        (:meth:`FaultInjector.reset`, keeping a chaos monitor
        attached), and the arm parks at cylinder 0.  The timeline and
        metric handles survive: the slot's history of busy time and
        reference counts belongs to the bay, not the platter.
        """
        self._sectors = SectorStore(self.geometry.sector_size)
        self._store_read = self._sectors.read_range
        self._store_write = self._sectors.write_range
        self._head_cylinder = 0
        self._head_angular = 0.0
        self.faults.reset()

    @property
    def crashed(self) -> bool:
        return self.faults.crashed

    # ------------------------------------------------------ internal

    def _check_alive(self) -> None:
        if self.faults.crashed:
            raise DiskCrashedError(f"{self.disk_id}: disk is crashed")

    def _check_media(self, start: int, n_sectors: int) -> None:
        """Raise for the first bad or latently failing sector in range.

        Only called when the injector actually holds media faults (the
        callers guard on ``bad_sectors`` / ``_media_errors``), so a
        fault-free disk never pays these per-sector scans.
        """
        faults = self.faults
        if faults.bad_sectors:
            for sector in range(start, start + n_sectors):
                if faults.is_bad(sector):
                    raise BadSectorError(
                        f"{self.disk_id}: sector {sector} unreadable"
                    )
        if faults._media_errors:
            for sector in range(start, start + n_sectors):
                if faults.media_failing(sector):
                    self._c_media_errors.add()
                    raise MediaError(
                        f"{self.disk_id}: latent media error at sector {sector}"
                    )

    def _check_range(self, start: int, n_sectors: int) -> None:
        if 0 <= start and 0 < n_sectors and start + n_sectors <= self._total_sectors:
            return
        if n_sectors <= 0:
            raise BadAddressError("request must cover at least one sector")
        self.geometry.check_sector(start)
        self.geometry.check_sector(start + n_sectors - 1)

    #: Service-memo entries kept before the table is dropped and
    #: rebuilt; a bound, not an LRU, so hits stay one dict probe.
    _SERVICE_MEMO_LIMIT = 65536

    def _service_lookup(self, key: tuple) -> tuple:
        """Memo miss: run the timing walk and cache its exact outputs.

        ``key`` is ``(head_cylinder, head_angular, start, n_sectors)``
        — with the geometry fixed, the service-time walk is a pure
        function of it.  The cached tuple holds the walk's outputs
        verbatim (ceiled charge, truncated busy_us sample, final head
        position), so modelled time is bit-equal whether the memo is
        cold, warm, or was cleared on overflow.
        """
        cylinder_now, angular_now, start, n_sectors = key
        elapsed, cylinder, angular = self.timing.service_time_us(
            self.geometry, cylinder_now, angular_now, start, n_sectors
        )
        memo = self._service_memo
        if len(memo) >= self._SERVICE_MEMO_LIMIT:
            memo.clear()
        hit = (ceil_us(elapsed), int(elapsed), cylinder, angular)
        memo[key] = hit
        return hit

    def _flush_accounting(self) -> None:
        """Drain the deferred per-reference accounting into the registry.

        Registered with the metrics registry at construction and run by
        it before any read.  Counter batches add the same totals the
        per-reference adds would have; the service histogram receives
        its samples in recorded order (this disk is the only writer of
        its names); and the utilization gauge is last-write-wins, so
        only the value at the final charge — recomputed here from the
        horizon that charge saw — is observable either way.
        """
        reads, writes = self._p_reads, self._p_writes
        if reads or writes:
            self._p_reads = 0
            self._p_writes = 0
            if reads:
                self._c_reads.add(reads)
                self._c_sectors_read.add(self._p_sectors_read)
                self._p_sectors_read = 0
            if writes:
                # sectors_written flushes even when zero (a write torn
                # at sector 0) so the counter entry appears exactly
                # when a per-reference add would have created it.
                self._c_writes.add(writes)
                self._c_sectors_written.add(self._p_sectors_written)
                self._p_sectors_written = 0
            self._c_references.add(reads + writes)
        service = self._p_service
        charged = bool(service) or self._p_readahead > 0
        if service:
            self._h_service_us.extend(service)
            # busy_us advances by exactly the sample value per charge,
            # so the batch total is the sum of the batch's samples.
            self._c_busy_us.add(sum(service))
            service.clear()
        if self._p_readahead:
            self._c_readahead_sectors.add(self._p_readahead)
            self._c_busy_us.add(self._p_readahead_busy)
            self._p_readahead = 0
            self._p_readahead_busy = 0
        if charged:
            # Only the gauge value at the batch's final charge is
            # observable (last write wins), and right after any charge
            # the utilization horizon max(now, busy_until) is the
            # busy_until that charge just set — still current, because
            # only charges move it.  busy_total likewise has not moved
            # since, so this is exactly the value the final
            # per-reference gauge update would have written.
            tl = self.timeline
            util = tl.busy_total_us * 100 // tl.busy_until_us
            self._g_utilization.set(util if util < 100 else 100)

    def __repr__(self) -> str:
        return (
            f"SimDisk({self.disk_id!r}, {self.geometry.capacity_bytes // (1024 * 1024)}"
            f" MB, crashed={self.crashed})"
        )
