"""The simulated disk itself.

A :class:`SimDisk` is a sector store combined with the timing model and
fault injector.  Every call to :meth:`read_sectors` or
:meth:`write_sectors` is **one disk reference** — the quantity the
paper's whole design minimises — and charges the modelled service time
to the disk's own :class:`~repro.simdisk.timeline.DiskTimeline` while
tracking head position across requests.  With no service frame active
the timeline waits inline (the classic blocking semantics); inside a
frame the charge is deferred, which is what lets requests overlap
across disks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.clock import SimClock
from repro.common.errors import (
    BadAddressError,
    BadSectorError,
    DiskCrashedError,
    MediaError,
)
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER, Tracer
from repro.simdisk.faults import FaultInjector
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.timeline import DiskTimeline
from repro.simdisk.timing import DiskTimingModel

_ZERO_SECTOR_CACHE: Dict[int, bytes] = {}


def _zero_sector(size: int) -> bytes:
    sector = _ZERO_SECTOR_CACHE.get(size)
    if sector is None:
        sector = bytes(size)
        _ZERO_SECTOR_CACHE[size] = sector
    return sector


class SimDisk:
    """A sector-addressed simulated disk drive.

    Args:
        disk_id: identifies this drive in metric names (``disk.<id>.*``).
        geometry: physical layout.
        clock: shared simulated clock, advanced by each reference.
        metrics: shared counter registry.
        timing: service-time model (defaults are a 1990s 5400 rpm drive).
        faults: fault injector; a fresh, quiescent one by default.
        tracer: records one span per disk reference; disabled by default.
    """

    def __init__(
        self,
        disk_id: str,
        geometry: DiskGeometry,
        clock: SimClock,
        metrics: Metrics,
        timing: Optional[DiskTimingModel] = None,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        timeline: Optional[DiskTimeline] = None,
    ) -> None:
        self.disk_id = disk_id
        self.geometry = geometry
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.timing = timing or DiskTimingModel()
        self.faults = faults or FaultInjector()
        self.timeline = timeline or DiskTimeline(clock)
        self._sectors: Dict[int, bytes] = {}
        self._head_cylinder = 0
        self._head_angular = 0.0
        self._prefix = f"disk.{disk_id}"

    # ------------------------------------------------------------- io

    def read_sectors(self, start: int, n_sectors: int) -> bytes:
        """Read ``n_sectors`` contiguous sectors in one disk reference."""
        with self.tracer.span(
            "simdisk", "read", disk=self.disk_id, sector=start, n_sectors=n_sectors
        ):
            self._check_alive()
            self._check_range(start, n_sectors)
            self._check_media(start, n_sectors)
            self._charge(start, n_sectors)
            self.metrics.add(f"{self._prefix}.reads")
            self.metrics.add(f"{self._prefix}.references")
            self.metrics.add(f"{self._prefix}.sectors_read", n_sectors)
            size = self.geometry.sector_size
            return b"".join(
                self._sectors.get(sector, _zero_sector(size))
                for sector in range(start, start + n_sectors)
            )

    def write_sectors(self, start: int, data: bytes) -> None:
        """Write ``data`` (a whole number of sectors) in one disk reference.

        If the fault injector crashes the disk during this write, a
        prefix of the sectors reaches the platter (a *torn write*) and
        :class:`DiskCrashedError` is raised.
        """
        with self.tracer.span(
            "simdisk", "write", disk=self.disk_id, sector=start
        ):
            self._check_alive()
            size = self.geometry.sector_size
            if len(data) == 0 or len(data) % size != 0:
                raise BadAddressError(
                    f"write length {len(data)} is not a positive multiple of {size}"
                )
            n_sectors = len(data) // size
            self._check_range(start, n_sectors)
            torn_at = self.faults.note_write(
                n_sectors, disk_id=self.disk_id, start=start
            )
            written = n_sectors if torn_at is None else torn_at
            for index in range(written):
                offset = index * size
                self._sectors[start + index] = bytes(data[offset : offset + size])
            # A rewrite remaps latent media errors (only for the sectors
            # that actually reached the platter on a torn write).
            self.faults.heal_range(start, written)
            self._charge(start, n_sectors)
            self.metrics.add(f"{self._prefix}.writes")
            self.metrics.add(f"{self._prefix}.references")
            self.metrics.add(f"{self._prefix}.sectors_written", written)
            if torn_at is not None:
                note = self.faults.last_crash_note
                raise DiskCrashedError(
                    f"{self.disk_id}: crashed during write at sector {start} "
                    f"({written}/{n_sectors} sectors reached the platter)"
                    + (f" [{note}]" if note else "")
                )

    def read_in_passing(self, start: int, n_sectors: int) -> bytes:
        """Read sectors the head will pass over anyway (track readahead).

        Models the disk service's strategy of caching "the rest of the
        data from the same track" after serving a read (paper section
        4): the platter keeps rotating under the head, so these sectors
        cost transfer time at slot rate but **no seek, no rotational
        latency, and no additional disk reference**.  Callers must only
        use this for sectors on the track(s) the preceding read already
        positioned the head on.
        """
        self._check_alive()
        self._check_range(start, n_sectors)
        self._check_media(start, n_sectors)
        slot = self.timing.slot_time_us(self.geometry)
        self.timeline.charge(slot * n_sectors)
        self._head_angular = (
            self._head_angular + n_sectors
        ) % self.geometry.sectors_per_track
        self.metrics.add(f"{self._prefix}.readahead_sectors", n_sectors)
        size = self.geometry.sector_size
        return b"".join(
            self._sectors.get(sector, _zero_sector(size))
            for sector in range(start, start + n_sectors)
        )

    # ------------------------------------------------------ geometry

    def track_of(self, sector: int) -> int:
        return self.geometry.track_of(sector)

    def track_bounds(self, track: int) -> tuple[int, int]:
        return self.geometry.track_bounds(track)

    @property
    def head_cylinder(self) -> int:
        """Cylinder the arm currently rests on (schedulers sort by it)."""
        return self._head_cylinder

    # ------------------------------------------------------- faults

    def corrupt_at(self, sector: int, byte_offset: int, xor_mask: int) -> None:
        """Flip bits of one stored byte *at rest* (silent corruption).

        Models bit-rot on the platter: no disk reference, no timing
        charge, and nothing detects it here — reads return the rotted
        bytes verbatim, and only a layer that recorded a checksum can
        tell.  A later write of the sector overwrites the rot, which is
        why repair-from-redundancy works.
        """
        self.geometry.check_sector(sector)
        size = self.geometry.sector_size
        if not 0 <= byte_offset < size:
            raise BadAddressError(
                f"byte offset {byte_offset} outside the {size}-byte sector"
            )
        if not 0 <= xor_mask <= 0xFF:
            raise BadAddressError(f"xor mask {xor_mask} is not one byte")
        current = bytearray(self._sectors.get(sector, _zero_sector(size)))
        current[byte_offset] ^= xor_mask
        self._sectors[sector] = bytes(current)  # repro-lint: allow[crash-point-discipline] at-rest rot is injected platter state, not a write the crash sweep numbers
        self.metrics.add(f"{self._prefix}.sectors_corrupted")

    def corrupt_sectors(self, start: int, n_sectors: int) -> None:
        """Rot each sector of a range deterministically.

        One byte per sector is XOR-flipped; the position and mask are a
        pure function of (fault seed, sector number), so two runs with
        the same seed rot identical bytes — which keeps every report
        downstream byte-deterministic.
        """
        seed = self.faults.seed
        for sector in range(start, start + n_sectors):
            token = (sector + 1) * 2654435761 ^ (seed * 40503)
            offset = token % self.geometry.sector_size
            mask = (token >> 11) % 255 + 1  # never zero: always a real flip
            self.corrupt_at(sector, offset, mask)

    def crash(self) -> None:
        """Take the disk offline immediately (contents persist)."""
        self.faults.crash_now()

    def repair(self) -> None:
        """Bring the disk back online after a crash."""
        self.faults.repair()

    @property
    def crashed(self) -> bool:
        return self.faults.crashed

    # ------------------------------------------------------ internal

    def _check_alive(self) -> None:
        if self.faults.crashed:
            raise DiskCrashedError(f"{self.disk_id}: disk is crashed")

    def _check_media(self, start: int, n_sectors: int) -> None:
        """Raise for the first bad or latently failing sector in range."""
        faults = self.faults
        for sector in range(start, start + n_sectors):
            if faults.is_bad(sector):
                raise BadSectorError(f"{self.disk_id}: sector {sector} unreadable")
        if faults.latent_media_errors:
            for sector in range(start, start + n_sectors):
                if faults.media_failing(sector):
                    self.metrics.add(f"{self._prefix}.media_errors")
                    raise MediaError(
                        f"{self.disk_id}: latent media error at sector {sector}"
                    )

    def _check_range(self, start: int, n_sectors: int) -> None:
        if n_sectors <= 0:
            raise BadAddressError("request must cover at least one sector")
        self.geometry.check_sector(start)
        self.geometry.check_sector(start + n_sectors - 1)

    def _charge(self, start: int, n_sectors: int) -> None:
        elapsed, cylinder, angular = self.timing.service_time_us(
            self.geometry, self._head_cylinder, self._head_angular, start, n_sectors
        )
        self._head_cylinder = cylinder
        self._head_angular = angular
        self.timeline.charge(elapsed)
        self.metrics.add(f"{self._prefix}.busy_us", int(elapsed))
        self.metrics.observe(f"{self._prefix}.service_us", int(elapsed))
        self.metrics.gauge(
            f"{self._prefix}.utilization", self.timeline.utilization_percent()
        )

    def __repr__(self) -> str:
        return (
            f"SimDisk({self.disk_id!r}, {self.geometry.capacity_bytes // (1024 * 1024)}"
            f" MB, crashed={self.crashed})"
        )
