"""Stable storage: mirrored careful writes.

The paper requires "the concept of stable storage to maintain mirror
images of all the vital structural information" (section 2.1) and uses
it for file index tables, shadow pages, write-ahead log records and
intention flags (sections 4, 6.6, 6.7).  This module implements the
classic Lampson careful-replicated-storage discipline over two
simulated disks:

* every record is written **first to mirror A, then to mirror B**, each
  copy carrying a version number and checksum;
* a crash between the two writes (or a torn write within one) leaves at
  least one good copy;
* reads verify the checksum of copy A and fall back to copy B;
* :meth:`recover` scans both mirrors after a crash and repairs the
  out-of-date or corrupt copy from the good one, restoring the
  invariant that both mirrors agree.

Records are addressed by a string key (e.g. ``"fit:1024"`` or
``"intent:tx42:3"``), which is what the higher layers naturally have.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis import monitor as _monitor
from repro.common.errors import (
    BadAddressError,
    DiskCrashedError,
    DiskError,
    StableKeyError,
)
from repro.common.units import SECTOR_SIZE
from repro.simdisk.disk import SimDisk

_MAGIC = b"RSTB"
_TOMBSTONE = b"RDEL"
# header: magic 4s | version Q | payload_len I | crc I | key_len H
_HEADER = struct.Struct("<4sQIIH")
_MAX_KEY = SECTOR_SIZE - _HEADER.size


class StableStore:
    """A careful-replicated record store over two mirror disks.

    Both mirrors must have identical geometry.  Slots are allocated
    sequentially; freeing writes a tombstone so a directory rebuild
    after a crash sees the deletion.
    """

    def __init__(self, mirror_a: SimDisk, mirror_b: SimDisk) -> None:
        if mirror_a.geometry != mirror_b.geometry:
            raise ValueError("stable-store mirrors must share a geometry")
        self.mirror_a = mirror_a
        self.mirror_b = mirror_b
        self._directory: Dict[str, Tuple[int, int]] = {}  # key -> (start, n_sectors)
        self._versions: Dict[str, int] = {}
        self._next_sector = 0
        self._free: Dict[int, list[int]] = {}  # n_sectors -> [start, ...]
        #: Keys mid-relocation: the pre-move slot, kept allocated (and
        #: durable) until the record completes both copies at its new
        #: home — recovery falls back to it if the move never lands.
        self._relocating: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------ api

    def put(self, key: str, payload: bytes) -> None:
        """Durably store ``payload`` under ``key`` (careful write A then B).

        Raises :class:`DiskCrashedError` if a mirror crashes mid-write;
        the record is still recoverable from the surviving copy via
        :meth:`recover` + :meth:`get`.
        """
        _monitor.active().key_write(self, key, name="directory", site="stable.put")
        slot = self._slot_for(key, len(payload))
        version = self._versions.get(key, 0) + 1
        record = self._encode(key, payload, version)
        self.mirror_a.write_sectors(slot[0], record)
        self.mirror_b.write_sectors(slot[0], record)
        self._versions[key] = version
        # Only now that both copies landed is the pre-relocation slot
        # safe to reuse; freeing it earlier would let a crash during
        # the move destroy the sole durable copy of the record.
        old_slot = self._relocating.pop(key, None)
        if old_slot is not None:
            self._free.setdefault(old_slot[1], []).append(old_slot[0])
        # Tell a chaos monitor (if one is attached to the mirrors) that
        # a careful write completed both copies: the trace marks these
        # sync boundaries between the numbered physical crash points.
        monitor = self.mirror_a.faults.monitor
        if monitor is not None and hasattr(monitor, "note_stable_sync"):
            monitor.note_stable_sync(key, slot[0], slot[1])

    def get(self, key: str) -> bytes:
        """Read the record for ``key``, falling back to mirror B.

        Raises :class:`StableKeyError` (a :class:`KeyError`) if the key
        is unknown, :class:`DiskError` if both copies are unreadable.
        """
        _monitor.active().key_read(self, key, name="directory", site="stable.get")
        slot = self._directory.get(key)
        if slot is None:
            raise StableKeyError(key)
        for mirror in (self.mirror_a, self.mirror_b):
            try:
                record = mirror.read_sectors(slot[0], slot[1])
            except (DiskError, DiskCrashedError):
                continue
            decoded = self._decode(record)
            if decoded is not None and decoded[0] == key:
                return decoded[2]
        raise DiskError(f"stable storage: both copies of {key!r} unreadable")

    def delete(self, key: str) -> None:
        """Remove ``key``; its slot is tombstoned on both mirrors and reused.

        The tombstone carries the key and the next version number, so a
        directory rebuild can arbitrate the delete crash window: if the
        tombstone tore on mirror A but landed on mirror B, the slot
        reads (A = stale live record, B = newer tombstone) and the
        higher version — the deletion — must win.  The version counter
        also survives deletion so a later re-put stays monotonic.
        """
        _monitor.active().key_write(
            self, key, name="directory", site="stable.delete"
        )
        slot = self._directory.pop(key, None)
        if slot is None:
            return
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        tomb = self._encode_tombstone(key, version)
        errors: list[Exception] = []
        for mirror in (self.mirror_a, self.mirror_b):
            try:
                mirror.write_sectors(slot[0], tomb)
            except (DiskError, DiskCrashedError) as exc:
                errors.append(exc)
        if len(errors) == 2:
            # Careful writes tolerate losing ONE copy.  With neither
            # mirror holding the tombstone the deletion is not durable
            # — a directory rebuild would resurrect the live record —
            # so the caller must not be told it succeeded.
            self._directory[key] = slot
            raise errors[0]
        self._free.setdefault(slot[1], []).append(slot[0])

    def __contains__(self, key: str) -> bool:
        _monitor.active().key_read(
            self, key, name="directory", site="stable.contains"
        )
        return key in self._directory

    def keys(self) -> Iterator[str]:
        return iter(dict(self._directory))

    # ------------------------------------------------------- recovery

    def recover(self) -> int:
        """Repair the mirrors after a crash; returns records repaired.

        For every slot the directory knows, the newer valid copy is
        rewritten over the stale or corrupt one.  Both mirrors must be
        online (repaired) before calling.
        """
        _monitor.active().write_all(self, name="directory", site="stable.recover")
        repaired = 0
        for key, (start, n_sectors) in list(self._directory.items()):
            old_slot = self._relocating.pop(key, None)
            healed = self._repair_slot(key, start, n_sectors)
            if healed is not None:
                if old_slot is not None:
                    # The move reached at least one mirror durably;
                    # the pre-move slot is finally safe to reuse.
                    self._free.setdefault(old_slot[1], []).append(old_slot[0])
                repaired += healed
                continue
            if old_slot is not None:
                fallback = self._repair_slot(key, old_slot[0], old_slot[1])
                if fallback is not None:
                    # The relocated copy never became durable: fall
                    # back to the intact pre-move record.
                    self._directory[key] = old_slot
                    self._free.setdefault(n_sectors, []).append(start)
                    repaired += 1
                    continue
            # Both copies dead and no pre-move slot to fall back to:
            # the record was being created when the crash hit; it
            # never existed durably.
            del self._directory[key]
            self._versions.pop(key, None)
            repaired += 1
        return repaired

    def _repair_slot(self, key: str, start: int, n_sectors: int) -> Optional[int]:
        """Repair one slot's mirror pair in place.

        Returns None when both copies are dead, 0 when the copies
        already agree, 1 when one copy was rewritten from the other.
        Syncs the in-memory version counter to the surviving copy so
        the next write stays version-monotonic.
        """
        copy_a = self._try_read(self.mirror_a, start, n_sectors)
        copy_b = self._try_read(self.mirror_b, start, n_sectors)
        ok_a = copy_a is not None and copy_a[0] == key
        ok_b = copy_b is not None and copy_b[0] == key
        if not ok_a and not ok_b:
            return None
        if ok_a and ok_b and copy_a[1] == copy_b[1]:
            self._versions[key] = copy_a[1]
            return 0
        if ok_a and (not ok_b or copy_a[1] > copy_b[1]):
            source, target, good = self.mirror_a, self.mirror_b, copy_a
        else:
            source, target, good = self.mirror_b, self.mirror_a, copy_b
        record = source.read_sectors(start, n_sectors)
        target.write_sectors(start, record)
        self._versions[key] = good[1]
        return 1

    def verify_mirrors(self) -> list[str]:
        """Check the careful-write invariant: both mirrors agree.

        For every key the directory knows, both copies must decode,
        carry the same version, and hold identical payloads.  Returns a
        list of human-readable violations (empty = invariant holds);
        the chaos harness runs this after every recovery.
        """
        violations: list[str] = []
        for key, (start, n_sectors) in self._directory.items():
            copy_a = self._try_read(self.mirror_a, start, n_sectors)
            copy_b = self._try_read(self.mirror_b, start, n_sectors)
            if copy_a is None or copy_a[0] != key:
                violations.append(f"stable {key!r}: mirror A copy unreadable")
                continue
            if copy_b is None or copy_b[0] != key:
                violations.append(f"stable {key!r}: mirror B copy unreadable")
                continue
            if copy_a[1] != copy_b[1]:
                violations.append(
                    f"stable {key!r}: version skew (A v{copy_a[1]}, B v{copy_b[1]})"
                )
            elif copy_a[2] != copy_b[2]:
                violations.append(
                    f"stable {key!r}: same version {copy_a[1]} but payloads differ"
                )
        return violations

    def rebuild_directory(self) -> int:
        """Rebuild the in-memory directory by scanning mirror headers.

        Used when the machine holding the in-memory state crashed; the
        mirrors themselves are the authority.  Returns records found.
        """
        _monitor.active().write_all(
            self, name="directory", site="stable.rebuild_directory"
        )
        self._directory.clear()
        self._versions.clear()
        self._free.clear()
        self._relocating.clear()
        sector = 0
        found = 0
        while sector < self._next_sector:
            entry = self._scan_slot(sector)
            if entry is None:
                sector += 1
                continue
            key, version, n_sectors, is_tombstone = entry
            current = self._versions.get(key)
            if not is_tombstone:
                if current is None or version > current:
                    self._directory[key] = (sector, n_sectors)
                    self._versions[key] = version
                    found += 1
            else:
                # Remember the deletion's version so a slot elsewhere
                # holding a stale (older) copy of the key cannot win,
                # and a later re-put stays version-monotonic.
                if key and (current is None or version > current):
                    self._directory.pop(key, None)
                    self._versions[key] = version
                self._free.setdefault(1, []).append(sector)
            sector += n_sectors
        return found

    # ------------------------------------------------------ internal

    def _slot_for(self, key: str, payload_len: int) -> Tuple[int, int]:
        needed = 1 + -(-payload_len // SECTOR_SIZE) if payload_len else 1
        existing = self._directory.get(key)
        if existing is not None and existing[1] >= needed:
            return existing
        if existing is not None:
            # Relocation: keep the old slot allocated until the new
            # record is durable on both mirrors (put/recover free it).
            self._relocating[key] = existing
        free_list = self._free.get(needed)
        if free_list:
            start = free_list.pop()
        else:
            start = self._next_sector
            total = self.mirror_a.geometry.total_sectors
            if start + needed > total:
                raise BadAddressError("stable storage exhausted")
            self._next_sector = start + needed
        slot = (start, needed)
        self._directory[key] = slot
        return slot

    @staticmethod
    def _encode(key: str, payload: bytes, version: int) -> bytes:
        key_bytes = key.encode("utf-8")
        if len(key_bytes) > _MAX_KEY:
            raise ValueError(f"stable-storage key too long: {key!r}")
        header = _HEADER.pack(
            _MAGIC, version, len(payload), zlib.crc32(payload), len(key_bytes)
        )
        first = header + key_bytes
        first += bytes(SECTOR_SIZE - len(first))
        padded_len = -(-len(payload) // SECTOR_SIZE) * SECTOR_SIZE if payload else 0
        return first + payload + bytes(padded_len - len(payload))

    @staticmethod
    def _encode_tombstone(key: str, version: int) -> bytes:
        key_bytes = key.encode("utf-8")
        header = _HEADER.pack(_TOMBSTONE, version, 0, 0, len(key_bytes))
        record = header + key_bytes
        return record + bytes(SECTOR_SIZE - len(record))

    @staticmethod
    def _decode(record: bytes) -> Optional[Tuple[str, int, bytes]]:
        if len(record) < SECTOR_SIZE:
            return None
        magic, version, payload_len, crc, key_len = _HEADER.unpack_from(record)
        if magic != _MAGIC or key_len > _MAX_KEY:
            return None
        key_start = _HEADER.size
        key = record[key_start : key_start + key_len].decode("utf-8", "replace")
        payload = record[SECTOR_SIZE : SECTOR_SIZE + payload_len]
        if len(payload) != payload_len or zlib.crc32(payload) != crc:
            return None
        return key, version, payload

    def _try_read(
        self, mirror: SimDisk, start: int, n_sectors: int
    ) -> Optional[Tuple[str, int, bytes]]:
        try:
            record = mirror.read_sectors(start, n_sectors)
        except (DiskError, DiskCrashedError):
            return None
        decoded = self._decode(record)
        if decoded is None:
            return None
        return decoded

    def _scan_slot(self, sector: int) -> Optional[Tuple[str, int, int, bool]]:
        """Read one slot's header from both mirrors and arbitrate.

        A write (record or tombstone) lands on mirror A before mirror
        B, so the two copies can disagree after a crash.  When both
        headers decode for the *same* key, the higher version is the
        later write and wins — in particular a tombstone that tore on
        mirror A but reached mirror B must beat A's stale live record.
        For differing keys (a freed slot reused mid-put) the live
        record is preferred; either outcome is admissible there, since
        the interrupted put never completed both copies.
        """
        candidates: list[Tuple[str, int, int, bool]] = []
        for mirror in (self.mirror_a, self.mirror_b):
            try:
                head = mirror.read_sectors(sector, 1)
            except (DiskError, DiskCrashedError):
                continue
            magic = head[:4]
            if magic not in (_MAGIC, _TOMBSTONE):
                continue
            _, version, payload_len, crc, key_len = _HEADER.unpack_from(head)
            if key_len > _MAX_KEY:
                continue
            is_tombstone = magic == _TOMBSTONE
            n_sectors = (
                1 if is_tombstone or not payload_len
                else 1 + -(-payload_len // SECTOR_SIZE)
            )
            key = head[_HEADER.size : _HEADER.size + key_len].decode(
                "utf-8", "replace"
            )
            candidates.append((key, version, n_sectors, is_tombstone))
        if not candidates:
            return None
        if len(candidates) == 2 and candidates[0][0] == candidates[1][0]:
            return max(candidates, key=lambda entry: entry[1])
        live = [entry for entry in candidates if not entry[3]]
        return live[0] if live else candidates[0]
