"""Disk service-time model: seek + rotation + transfer.

A disk reference costs:

* a **seek** to the target cylinder — a fixed settle time plus a
  per-cylinder component proportional to the square root of the
  distance (the standard acceleration-limited arm model);
* **rotational latency** — the angular distance from where the platter
  happens to be when the seek completes to the first requested sector;
* **transfer time** — one sector per angular slot as the platter turns,
  with a head switch (track crossing within a request) costing a
  settle time but no seek.

This reproduces the two effects the paper's design exploits: large
contiguous transfers amortise seek and latency over many sectors
(sections 4, 5, 7), and placing the file index table next to the first
data block eliminates a seek (section 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simdisk.geometry import DiskGeometry


@dataclass(frozen=True, slots=True)
class DiskTimingModel:
    """Calibration constants of the service-time model (microseconds).

    Defaults approximate an early-1990s 5400 rpm drive: ~11 ms average
    rotational latency would be rpm-derived; here rotation_time_us is
    the full-revolution time (5400 rpm -> 11111 us).
    """

    seek_settle_us: float = 3000.0
    seek_per_cylinder_us: float = 900.0
    rotation_time_us: float = 11111.0
    head_switch_us: float = 1000.0
    controller_overhead_us: float = 300.0

    def seek_time_us(self, from_cylinder: int, to_cylinder: int) -> float:
        """Arm movement time between cylinders; zero if already there."""
        distance = abs(to_cylinder - from_cylinder)
        if distance == 0:
            return 0.0
        return self.seek_settle_us + self.seek_per_cylinder_us * math.sqrt(distance)

    def slot_time_us(self, geometry: DiskGeometry) -> float:
        """Time for one sector slot to pass under the head."""
        return self.rotation_time_us / geometry.sectors_per_track

    def rotational_latency_us(
        self, geometry: DiskGeometry, angular_now: float, target_slot: int
    ) -> float:
        """Wait for ``target_slot`` to rotate under the head.

        ``angular_now`` is the current angular position in slot units
        (may be fractional).
        """
        slots = geometry.sectors_per_track
        delta = (target_slot - angular_now) % slots
        return delta * self.slot_time_us(geometry)

    def service_time_us(
        self,
        geometry: DiskGeometry,
        current_cylinder: int,
        angular_now: float,
        start_sector: int,
        n_sectors: int,
    ) -> tuple[float, int, float]:
        """Full service time for one contiguous request.

        Returns ``(time_us, final_cylinder, final_angular)`` so the disk
        can carry head state between requests.  ``n_sectors`` may span
        tracks and cylinders; contiguous runs crossing a track boundary
        pay a head switch (and a track-to-track seek at cylinder
        boundaries) but no extra rotational latency, modelling the
        common interleave-free layout.
        """
        if n_sectors <= 0:
            raise ValueError("request must cover at least one sector")
        # Every disk reference lands here, so the walk works on local
        # ints and validates bounds with two comparisons; the slow
        # check_sector calls only run to raise their exact errors.  The
        # float arithmetic is kept operation-for-operation identical to
        # the pre-optimization code — same terms, same order — so every
        # modelled service time is bit-equal to what it always was.
        per_track = geometry.sectors_per_track
        per_cylinder = geometry.sectors_per_cylinder
        if not 0 <= start_sector < geometry.total_sectors:
            geometry.check_sector(start_sector)
        if start_sector + n_sectors > geometry.total_sectors:
            geometry.check_sector(start_sector + n_sectors - 1)

        total = self.controller_overhead_us
        cylinder = start_sector // per_cylinder
        total += self.seek_time_us(current_cylinder, cylinder)
        target_slot = start_sector % per_track
        slot = self.rotation_time_us / per_track
        total += ((target_slot - angular_now) % per_track) * slot

        remaining = n_sectors
        sector = start_sector
        angular = float(target_slot)
        while remaining > 0:
            track_end = (sector // per_track + 1) * per_track
            in_track = min(remaining, track_end - sector)
            total += in_track * slot
            angular = (angular + in_track) % per_track
            sector += in_track
            remaining -= in_track
            if remaining > 0:
                next_cylinder = sector // per_cylinder
                if next_cylinder != cylinder:
                    total += self.seek_time_us(cylinder, next_cylinder)
                    cylinder = next_cylinder
                else:
                    total += self.head_switch_us
        return total, cylinder, angular
