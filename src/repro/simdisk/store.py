"""Chunked sector storage backing :class:`~repro.simdisk.disk.SimDisk`.

The disk model's original store was ``Dict[int, bytes]`` — one dict
entry per sector — which made every reference pay one dict lookup and
one ``bytes`` copy *per sector*, with a generator-fed ``b"".join`` on
top.  At million-reference campaign scale that bookkeeping dwarfs the
modelled service-time math.

:class:`SectorStore` keeps the same observable behaviour (sectors never
written read as zeros; writes may cover a prefix of a request — the
torn-write case) over a chunked ``bytearray`` layout:

* sectors live in fixed-size chunks (``chunk_sectors`` each), allocated
  lazily on first write — a sparse disk stays sparse;
* a contiguous read inside one chunk is a single O(1) slice;
* a read of never-written space returns zeros without touching any
  chunk (the *all-zero fast path*);
* writes splice payload bytes into chunks through one ``memoryview``,
  no per-sector slicing.

:class:`LegacySectorStore` preserves the original per-sector dict
implementation as the behavioural oracle: the differential property
test (``tests/simdisk/test_store.py``) drives both stores with the same
operation sequences and requires byte-identical results, and the M1
meta-benchmark uses it as the pre-optimization baseline lane.

Neither store is a crash-point surface by itself: physical-write
discipline (``note_write`` before mutation) is enforced at the
:class:`SimDisk` call sites by the ``crash-point-discipline`` lint
rule, which knows these stores' mutator names.
"""

from __future__ import annotations

from typing import Dict

#: Default sectors per chunk: 64 x 512-byte sectors = 32 KB chunks,
#: larger than any common request, smaller than a track on the big
#: geometries — most references touch exactly one chunk.
DEFAULT_CHUNK_SECTORS = 64


class SectorStore:
    """Sparse, chunked, ``bytearray``-backed sector storage.

    Args:
        sector_size: bytes per sector (fixed for the store's lifetime).
        chunk_sectors: sectors per lazily-allocated chunk.
    """

    __slots__ = ("sector_size", "chunk_sectors", "_chunk_bytes", "_chunks")

    def __init__(
        self, sector_size: int, *, chunk_sectors: int = DEFAULT_CHUNK_SECTORS
    ) -> None:
        if sector_size <= 0:
            raise ValueError("sector size must be positive")
        if chunk_sectors <= 0:
            raise ValueError("chunk size must be positive")
        self.sector_size = sector_size
        self.chunk_sectors = chunk_sectors
        self._chunk_bytes = sector_size * chunk_sectors
        self._chunks: Dict[int, bytearray] = {}

    # ----------------------------------------------------------- read

    def read_range(self, start: int, n_sectors: int) -> bytes:
        """The bytes of ``n_sectors`` contiguous sectors from ``start``.

        Never-written sectors read as zeros.  The common case — the run
        lies inside one chunk — is a single slice (or a single zero
        allocation when the chunk was never written).
        """
        size = self.sector_size
        chunk_sectors = self.chunk_sectors
        index = start // chunk_sectors
        if index == (start + n_sectors - 1) // chunk_sectors:
            chunk = self._chunks.get(index)
            if chunk is None:
                return bytes(n_sectors * size)  # all-zero fast path
            offset = (start - index * chunk_sectors) * size
            return bytes(chunk[offset : offset + n_sectors * size])
        parts = []
        sector, remaining = start, n_sectors
        while remaining > 0:
            index = sector // chunk_sectors
            in_chunk = min(remaining, (index + 1) * chunk_sectors - sector)
            chunk = self._chunks.get(index)
            if chunk is None:
                parts.append(bytes(in_chunk * size))
            else:
                offset = (sector - index * chunk_sectors) * size
                parts.append(chunk[offset : offset + in_chunk * size])
            sector += in_chunk
            remaining -= in_chunk
        return b"".join(parts)

    # ---------------------------------------------------------- write

    def write_range(self, start: int, data: bytes, n_sectors: int) -> None:
        """Write the first ``n_sectors`` sectors' worth of ``data``.

        ``data`` may be longer than ``n_sectors * sector_size`` — the
        torn-write case, where only a prefix of the payload reaches the
        platter.  ``n_sectors`` of zero writes nothing.
        """
        if n_sectors <= 0:
            return
        size = self.sector_size
        chunk_sectors = self.chunk_sectors
        chunks = self._chunks
        index = start // chunk_sectors
        if index == (start + n_sectors - 1) // chunk_sectors:
            # Single-chunk fast path: one splice, no memoryview.
            chunk = chunks.get(index)
            if chunk is None:
                chunk = bytearray(self._chunk_bytes)
                chunks[index] = chunk
            offset = (start - index * chunk_sectors) * size
            n_bytes = n_sectors * size
            if len(data) != n_bytes:  # torn write: only the prefix lands
                data = data[:n_bytes]
            chunk[offset : offset + n_bytes] = data
            return
        view = memoryview(data)
        sector, taken, remaining = start, 0, n_sectors
        while remaining > 0:
            index = sector // chunk_sectors
            in_chunk = min(remaining, (index + 1) * chunk_sectors - sector)
            chunk = chunks.get(index)
            if chunk is None:
                chunk = bytearray(self._chunk_bytes)
                chunks[index] = chunk
            offset = (sector - index * chunk_sectors) * size
            n_bytes = in_chunk * size
            chunk[offset : offset + n_bytes] = view[taken : taken + n_bytes]
            sector += in_chunk
            taken += n_bytes
            remaining -= in_chunk
        view.release()

    def xor_byte(self, sector: int, byte_offset: int, mask: int) -> None:
        """Flip bits of one stored byte in place (at-rest corruption)."""
        chunk_sectors = self.chunk_sectors
        index = sector // chunk_sectors
        chunk = self._chunks.get(index)
        if chunk is None:
            chunk = bytearray(self._chunk_bytes)
            self._chunks[index] = chunk
        offset = (sector - index * chunk_sectors) * self.sector_size
        chunk[offset + byte_offset] ^= mask

    # ------------------------------------------------------- analysis

    def chunk_count(self) -> int:
        """Chunks currently allocated (sparseness probe for tests)."""
        return len(self._chunks)

    def __repr__(self) -> str:
        return (
            f"SectorStore({len(self._chunks)} chunks of "
            f"{self.chunk_sectors} x {self.sector_size} B)"
        )


class LegacySectorStore:
    """The original ``Dict[int, bytes]`` per-sector store.

    Kept verbatim as the oracle for the differential property test and
    as the M1 meta-benchmark's pre-optimization lane — not used by any
    production path.
    """

    __slots__ = ("sector_size", "_by_sector", "_zero")

    def __init__(self, sector_size: int) -> None:
        if sector_size <= 0:
            raise ValueError("sector size must be positive")
        self.sector_size = sector_size
        self._by_sector: Dict[int, bytes] = {}
        self._zero = bytes(sector_size)

    def read_range(self, start: int, n_sectors: int) -> bytes:
        zero = self._zero
        return b"".join(
            self._by_sector.get(sector, zero)
            for sector in range(start, start + n_sectors)
        )

    def write_range(self, start: int, data: bytes, n_sectors: int) -> None:
        size = self.sector_size
        for index in range(max(0, n_sectors)):
            offset = index * size
            self._by_sector[start + index] = bytes(data[offset : offset + size])

    def xor_byte(self, sector: int, byte_offset: int, mask: int) -> None:
        current = bytearray(self._by_sector.get(sector, self._zero))
        current[byte_offset] ^= mask
        self._by_sector[sector] = bytes(current)

    def chunk_count(self) -> int:
        return len(self._by_sector)

    def __repr__(self) -> str:
        return f"LegacySectorStore({len(self._by_sector)} sectors)"
