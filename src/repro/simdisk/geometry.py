"""Disk geometry: cylinders, tracks, sectors.

The track is the unit the RHODOS disk service's cache thinks in
(paper section 4: after serving a read, "the disk service caches the
rest of the data from the same track"), so the geometry must expose
which sectors share a track and where track boundaries fall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import BadAddressError
from repro.common.units import SECTOR_SIZE


@dataclass(frozen=True, slots=True)
class DiskGeometry:
    """Physical layout of a simulated disk.

    Sectors are numbered linearly 0..capacity-1 in the conventional
    order: all sectors of cylinder 0 (head 0's track, then head 1's,
    ...), then cylinder 1, and so on.

    The derived sizes (``total_sectors`` etc.) are precomputed plain
    attributes, not properties: the timing model and the disk's bounds
    checks read them on every reference, and a geometry is immutable,
    so recomputing ``cylinders * heads * sectors_per_track`` per read
    was pure hot-path waste.

    Attributes:
        cylinders: number of cylinders (seek positions).
        heads: tracks per cylinder (number of recording surfaces).
        sectors_per_track: sectors on each track.
        sector_size: bytes per sector (fixed at 512 in this code base).
    """

    cylinders: int
    heads: int
    sectors_per_track: int
    sector_size: int = SECTOR_SIZE
    # ------------------------------------------------- derived sizes
    sectors_per_cylinder: int = field(init=False, repr=False, compare=False)
    total_sectors: int = field(init=False, repr=False, compare=False)
    capacity_bytes: int = field(init=False, repr=False, compare=False)
    total_tracks: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.cylinders <= 0 or self.heads <= 0 or self.sectors_per_track <= 0:
            raise ValueError("geometry dimensions must be positive")
        if self.sector_size != SECTOR_SIZE:
            raise ValueError(f"sector size is fixed at {SECTOR_SIZE} bytes")
        per_cylinder = self.heads * self.sectors_per_track
        object.__setattr__(self, "sectors_per_cylinder", per_cylinder)
        object.__setattr__(self, "total_sectors", self.cylinders * per_cylinder)
        object.__setattr__(
            self, "capacity_bytes", self.cylinders * per_cylinder * self.sector_size
        )
        object.__setattr__(self, "total_tracks", self.cylinders * self.heads)

    # ------------------------------------------------------- mappings

    def check_sector(self, sector: int) -> None:
        """Raise :class:`BadAddressError` unless ``sector`` is on the disk."""
        if not 0 <= sector < self.total_sectors:
            raise BadAddressError(
                f"sector {sector} outside disk of {self.total_sectors} sectors"
            )

    def cylinder_of(self, sector: int) -> int:
        """Cylinder containing ``sector`` (determines seek distance)."""
        self.check_sector(sector)
        return sector // self.sectors_per_cylinder

    def track_of(self, sector: int) -> int:
        """Linear track index containing ``sector`` (cache granularity)."""
        self.check_sector(sector)
        return sector // self.sectors_per_track

    def track_bounds(self, track: int) -> tuple[int, int]:
        """(first_sector, last_sector_exclusive) of a linear track index."""
        if not 0 <= track < self.total_tracks:
            raise BadAddressError(
                f"track {track} outside disk of {self.total_tracks} tracks"
            )
        first = track * self.sectors_per_track
        return first, first + self.sectors_per_track

    def rotational_position(self, sector: int) -> int:
        """Sector's angular slot within its track, 0..sectors_per_track-1."""
        self.check_sector(sector)
        return sector % self.sectors_per_track

    # ------------------------------------------------------- presets

    @classmethod
    def small(cls) -> "DiskGeometry":
        """A 64 MB disk for unit tests: 256 cylinders x 8 heads x 64 sectors."""
        return cls(cylinders=256, heads=8, sectors_per_track=64)

    @classmethod
    def medium(cls) -> "DiskGeometry":
        """A 1 GB disk for integration tests and most benchmarks."""
        return cls(cylinders=2048, heads=16, sectors_per_track=64)

    @classmethod
    def large(cls) -> "DiskGeometry":
        """An 8 GB disk for the multi-disk / big-file experiments."""
        return cls(cylinders=8192, heads=16, sectors_per_track=128)
