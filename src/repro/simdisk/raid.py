"""RAID tier under the disk service: striped volumes with parity.

The paper's disk service promises "any set of contiguous fragments in
one disk reference" and backs vital structures with mirrored stable
storage — but a whole-disk loss still takes the volume down with it.
A :class:`StripedVolume` closes that gap: it presents one logical disk
over N member :class:`~repro.simdisk.disk.SimDisk` drives with a
pluggable layout —

* **raid0** — chunk-interleaved striping, no redundancy (the
  bandwidth/latency comparator of the Linux RAID study);
* **raid1** — every member carries the full image; reads pick one
  mirror (one reference), writes fan out to all of them;
* **raid5** — rotating parity: each stripe row of ``n-1`` data chunks
  carries one parity chunk (XOR of the row), the parity member
  rotating row by row so parity traffic spreads across the array.

**Single-reference contract.**  The stripe unit (``chunk_sectors``) is
the largest run a member serves in one reference, and a logical
request decomposes into *at most one* contiguous physical span per
member: consecutive chunks of one member are physically adjacent in
every layout, so a RAID-5 span simply over-reads the parity chunks it
straddles rather than splitting the reference.  Member references
overlap through the deferred-time frame machinery
(:class:`~repro.common.frames.FrameFork`): inside a pipeline's service
frame the spans replay from the fork point and join at the slowest
member, while blocking callers get the classic sequential semantics.

**Degraded mode.**  On a member :class:`DiskCrashedError` — or a media
error a repair rewrite cannot heal — the array marks the member failed
and keeps serving: raid1 falls back to a surviving mirror, raid5
reconstructs the missing span as the XOR of every surviving member's
same span (parity rotation makes that identity hold for data and
parity chunks alike).  Degraded writes keep the parity invariant for
the *surviving* state, so an acked write is always reconstructable —
zero acked-write loss while redundancy lasts.

**Membership is on disk.**  The leading chunks of every member form a
metadata area: a superblock (layout parameters, a monotonically
increasing *epoch*, the failed/rebuilding membership bitmaps) and a
write-intent journal.  Every membership transition bumps the epoch and
rewrites the superblocks of the surviving members, so a machine
restart (:meth:`StripedVolume.recover`) re-learns from the platters
which members are stale — a mirror that missed degraded writes can
never be silently trusted again.  The state machine is OPTIMAL →
DEGRADED → REBUILDING → (OPTIMAL | FAILED); transitions fire the
``on_state_change`` listener the cluster routes into the
:class:`~repro.recovery.health.HealthRegistry`.

**The degraded write hole is journalled shut.**  With a stale data
column in a row, that column's bytes exist only as the parity identity
over the survivors, so a crash *between* the member writes of a row
update would silently change what the column reconstructs to — losing
data acked long before the in-flight write.  Before any such update
the array journals the reconstructed old value on an in-sync member
(payload first, then a single-sector header that commits the record);
:meth:`StripedVolume.recover` replays armed records by recomputing the
parity so the stale column reconstructs to its journalled value again.
In OPTIMAL mode no journal is needed: a full resync recomputes
redundancy from data, and only un-acked torn rows can differ.

**Rebuild.**  Replacing a failed member (fresh platter via
:meth:`~repro.simdisk.disk.SimDisk.replace_platter`) starts a
background rebuild: :class:`RaidRebuilder` walks the member's physical
chunks, reconstructing each from the survivors, gated on an idle
predicate exactly like the PR 6 scrubber.  Writes that land below the
rebuild watermark are written through to the target so the rebuilt
region stays fresh; chunks above the watermark are reconstructed from
the survivors' *current* content when the cursor reaches them.

Every physical write funnels through one of the registered write
sites (``_member_write`` / ``_parity_write`` / ``_superblock_write`` /
``_journal_write`` / ``RaidRebuilder._write_target``), so the chaos
sweep's crash-point numbering covers parity updates, journal arming,
and rebuild traffic like any other platter mutation.
"""

from __future__ import annotations

import enum
import struct
import zlib
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import monitor as _monitor
from repro.common.errors import (
    BadAddressError,
    DiskCrashedError,
    DiskError,
    MediaError,
)
from repro.common.frames import FrameFork
from repro.common.metrics import Metrics
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry


class ArrayFailedError(DiskCrashedError):
    """More members lost than the layout's redundancy covers.

    A :class:`DiskCrashedError` subclass so every existing caller that
    treats a crashed disk as "volume down" needs no new handling — the
    array delivers the same verdict, never stale or corrupt bytes.
    """


class _RetryOp(DiskError):
    """Internal signal: membership changed mid-operation, replay it.

    Raised after a member failure discovered inside a fan-out has been
    recorded (epoch bumped, superblocks rewritten); the operation
    re-plans against the new membership.  Never escapes the array.
    """


class ArrayState(enum.Enum):
    """Array serving states, ordered by how much redundancy is left."""

    OPTIMAL = 0
    DEGRADED = 1
    REBUILDING = 2
    FAILED = 3


#: Accepted layout names -> on-disk level codes.
LEVELS: Dict[str, int] = {"raid0": 0, "raid1": 1, "raid5": 5}

_SB_MAGIC = b"RHODRAID"
_SB_VERSION = 1
#: magic, version, level, n_members, chunk_sectors, member_index,
#: epoch, failed_bits, rebuilding_bits, reserved
_SB_BODY = struct.Struct("<8sHBBIIQIIQ")
_SB_CRC = struct.Struct("<I")


def _pack_superblock(
    level: int,
    n_members: int,
    chunk_sectors: int,
    member_index: int,
    epoch: int,
    failed_bits: int,
    rebuilding_bits: int,
    sector_size: int,
) -> bytes:
    body = _SB_BODY.pack(
        _SB_MAGIC, _SB_VERSION, level, n_members, chunk_sectors,
        member_index, epoch, failed_bits, rebuilding_bits, 0,
    )
    blob = body + _SB_CRC.pack(zlib.crc32(body))
    return blob + bytes(sector_size - len(blob))


def _parse_superblock(
    raw: bytes, *, level: int, n_members: int, chunk_sectors: int,
    member_index: int,
) -> Optional[Tuple[int, int, int]]:
    """``(epoch, failed_bits, rebuilding_bits)`` or None if not ours.

    A blank replacement platter, a foreign disk, or a superblock torn
    by a crash all parse as None — the member is then *stale* and must
    be rebuilt before it is trusted.
    """
    size = _SB_BODY.size
    if len(raw) < size + _SB_CRC.size:
        return None
    body, (crc,) = raw[:size], _SB_CRC.unpack_from(raw, size)
    if zlib.crc32(body) != crc:
        return None
    magic, version, sb_level, sb_n, sb_chunk, sb_index, epoch, failed, rebuilding, _ = (
        _SB_BODY.unpack(body)
    )
    if magic != _SB_MAGIC or version != _SB_VERSION:
        return None
    if (sb_level, sb_n, sb_chunk, sb_index) != (
        level, n_members, chunk_sectors, member_index
    ):
        return None
    return epoch, failed, rebuilding


_JR_MAGIC = b"RHODRJNL"
#: magic, version, stale_member, pad, row, lo, n_sectors, epoch,
#: payload_crc
_JR_BODY = struct.Struct("<8sHBBIIIQI")
_JR_CRC = struct.Struct("<I")


def _pack_journal(
    stale: int,
    row: int,
    lo: int,
    n_sectors: int,
    epoch: int,
    payload: bytes,
    sector_size: int,
) -> bytes:
    body = _JR_BODY.pack(
        _JR_MAGIC, _SB_VERSION, stale, 0, row, lo, n_sectors, epoch,
        zlib.crc32(payload),
    )
    blob = body + _JR_CRC.pack(zlib.crc32(body))
    return blob + bytes(sector_size - len(blob))


def _parse_journal(raw: bytes) -> Optional[Tuple[int, int, int, int, int]]:
    """``(stale_member, row, lo, n_sectors, payload_crc)`` or None.

    A cleared slot (zeros), a torn header, or a foreign sector all
    parse as None — the journal is then simply inactive.
    """
    size = _JR_BODY.size
    if len(raw) < size + _JR_CRC.size:
        return None
    body, (crc,) = raw[:size], _JR_CRC.unpack_from(raw, size)
    if zlib.crc32(body) != crc:
        return None
    magic, version, stale, _, row, lo, n_sectors, _, payload_crc = (
        _JR_BODY.unpack(body)
    )
    if magic != _JR_MAGIC or version != _SB_VERSION:
        return None
    return stale, row, lo, n_sectors, payload_crc


def _xor(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (the parity identity)."""
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(len(a), "little")


def _overlay(base: bytes, offset: int, piece: bytes) -> bytes:
    """``base`` with ``piece`` spliced in at ``offset``."""
    buf = bytearray(base)
    buf[offset : offset + len(piece)] = piece
    return bytes(buf)


class StripedVolume:
    """One logical disk over N member disks with a pluggable RAID layout.

    Duck-types the :class:`~repro.simdisk.disk.SimDisk` surface the
    disk service consumes (``disk_id``, ``geometry``, ``read_sectors``,
    ``write_sectors``, ``read_in_passing``, ``track_of``,
    ``track_bounds``, ``head_cylinder``, ``crash``/``repair``/
    ``crashed``), so a :class:`~repro.disk_service.server.DiskServer`
    and its :class:`~repro.disk_service.pipeline.DiskPipeline` stack on
    an array exactly as on a single drive.

    Args:
        array_id: identifies the array in metric names (``raid.<id>.*``).
        members: the member drives — same geometry, same clock.  The
            leading member chunks are reserved for the array metadata
            (superblock + write-intent journal).
        level: ``raid0`` / ``raid1`` / ``raid5``.
        chunk_sectors: sectors per stripe unit (must divide into the
            member capacity at least twice).
        metrics: shared counter registry.
        init: write fresh superblocks (a newly created array).  Pass
            False to assemble from existing platters via :meth:`recover`.
    """

    def __init__(
        self,
        array_id: str,
        members: Sequence[SimDisk],
        *,
        level: str = "raid5",
        chunk_sectors: int = 64,
        metrics: Optional[Metrics] = None,
        init: bool = True,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown RAID level {level!r}")
        self.level = LEVELS[level]
        if len(members) < 2:
            raise ValueError("an array needs at least two members")
        if self.level == 5 and len(members) < 3:
            raise ValueError("raid5 needs at least three members")
        if chunk_sectors <= 0:
            raise ValueError("chunk size must be positive")
        base = members[0].geometry
        for member in members:
            if member.geometry.total_sectors != base.total_sectors:
                raise ValueError("members must share one geometry")
            if member.clock is not members[0].clock:
                raise ValueError("members must share one clock")
        self.array_id = array_id
        self.disk_id = array_id
        self.clock = members[0].clock
        self.metrics = metrics if metrics is not None else members[0].metrics
        self.chunk_sectors = chunk_sectors
        self._members: List[SimDisk] = list(members)
        self._n = len(members)
        self._sector_size = base.sector_size
        self._chunk_bytes = chunk_sectors * base.sector_size
        #: Physical chunks per member.
        self.member_chunks = base.total_sectors // chunk_sectors
        #: Member metadata area: sector 0 the superblock, sector 1 the
        #: write-intent journal header, sectors 2.. the journal payload
        #: (up to one full chunk).  Data starts at the chunk after it.
        self._meta_chunks = -(-(2 + chunk_sectors) // chunk_sectors)
        if self.member_chunks <= self._meta_chunks:
            raise ValueError("chunk size leaves no data chunks per member")
        self._data_start = self._meta_chunks * chunk_sectors
        data_members = {0: self._n, 1: 1, 5: self._n - 1}[self.level]
        self.data_members = data_members
        data_sectors = (
            data_members
            * (self.member_chunks - self._meta_chunks)
            * chunk_sectors
        )
        per_cylinder = base.sectors_per_cylinder
        cylinders = data_sectors // per_cylinder
        if cylinders < 1:
            raise ValueError("array too small for one logical cylinder")
        #: The logical geometry the disk service sees; capacity is the
        #: data capacity trimmed down to whole cylinders.
        self.geometry = DiskGeometry(
            cylinders=cylinders,
            heads=base.heads,
            sectors_per_track=base.sectors_per_track,
        )
        self._total_sectors = self.geometry.total_sectors
        self._head_cylinder = 0
        # ----------------------------------------------- array state
        self._failed: Set[int] = set()
        self._rebuilding: Optional[int] = None
        #: Physical chunks of the rebuild target already reconstructed
        #: (exclusive bound); writes below it write through.
        self._rebuild_watermark = 0
        self._epoch = 0
        self._state = ArrayState.OPTIMAL
        #: ``listener(old_state, new_state)``; the cluster routes this
        #: into the health registry (the array cannot import recovery —
        #: layering).
        self.on_state_change: Optional[
            Callable[[ArrayState, ArrayState], None]
        ] = None
        # -------------------------------------------------- metrics
        self._prefix = f"raid.{array_id}"
        m = self.metrics
        self._c_reads = m.counter(f"{self._prefix}.reads")
        self._c_writes = m.counter(f"{self._prefix}.writes")
        self._c_degraded_reads = m.counter(f"{self._prefix}.degraded_reads")
        self._c_degraded_writes = m.counter(f"{self._prefix}.degraded_writes")
        self._c_reconstructed = m.counter(
            f"{self._prefix}.segments_reconstructed"
        )
        self._c_parity_writes = m.counter(f"{self._prefix}.parity_writes")
        self._g_state = m.gauge_handle(f"{self._prefix}.state")
        self._g_failed = m.gauge_handle(f"{self._prefix}.failed_members")
        self._g_rebuild = m.gauge_handle(f"{self._prefix}.rebuild_percent")
        self._g_state.set(0)
        self._g_failed.set(0)
        if init:
            self._epoch = 1
            self._write_superblocks(range(self._n))

    # ------------------------------------------------------ identity

    @property
    def members(self) -> Tuple[SimDisk, ...]:
        return tuple(self._members)

    @property
    def meta_chunks(self) -> int:
        """Physical chunks reserved per member for array metadata."""
        return self._meta_chunks

    @property
    def state(self) -> ArrayState:
        return self._state

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def failed_members(self) -> Tuple[int, ...]:
        return tuple(sorted(self._failed))

    @property
    def rebuild_target(self) -> Optional[int]:
        return self._rebuilding

    @property
    def crashed(self) -> bool:
        """Down for callers: redundancy exhausted or every member dark."""
        return self._state is ArrayState.FAILED or all(
            member.crashed for member in self._members
        )

    @property
    def head_cylinder(self) -> int:
        """Logical cylinder of the last request (schedulers sort by it)."""
        return self._head_cylinder

    def track_of(self, sector: int) -> int:
        return self.geometry.track_of(sector)

    def track_bounds(self, track: int) -> Tuple[int, int]:
        return self.geometry.track_bounds(track)

    # ------------------------------------------------ layout algebra

    def chunk_to_member(self, chunk: int) -> Tuple[int, int]:
        """Logical data chunk -> ``(member_index, physical_chunk)``.

        The metadata area (superblock + journal) occupies the first
        physical chunks, so data starts at ``_meta_chunks``.  For raid1
        the image lands on *every* member; the mapping returns member 0
        as the canonical placement.
        """
        if chunk < 0:
            raise BadAddressError(f"chunk {chunk} is negative")
        meta = self._meta_chunks
        if self.level == 0:
            return chunk % self._n, meta + chunk // self._n
        if self.level == 1:
            return 0, meta + chunk
        row, k = divmod(chunk, self._n - 1)
        parity = self.parity_member(row)
        member = k if k < parity else k + 1
        return member, meta + row

    def member_to_chunk(self, member: int, physical_chunk: int) -> Optional[int]:
        """Inverse mapping; None for metadata and parity chunks."""
        if not 0 <= member < self._n:
            raise BadAddressError(f"no member {member}")
        meta = self._meta_chunks
        if physical_chunk < meta or physical_chunk >= self.member_chunks:
            return None
        if self.level == 0:
            return (physical_chunk - meta) * self._n + member
        if self.level == 1:
            return physical_chunk - meta
        row = physical_chunk - meta
        parity = self.parity_member(row)
        if member == parity:
            return None
        k = member if member < parity else member - 1
        return row * (self._n - 1) + k

    def parity_member(self, row: int) -> int:
        """The member holding row ``row``'s parity chunk (raid5).

        Left-asymmetric rotation: row 0 parks parity on the last
        member, each following row moves it one member to the left.
        """
        if self.level != 5:
            raise ValueError("only raid5 has parity rows")
        return (self._n - 1 - row) % self._n

    def _segments(
        self, start: int, n_sectors: int
    ) -> List[Tuple[int, int, int, int]]:
        """Decompose a logical run into ``(member, phys, len, logical)``.

        Consecutive chunks of one member are physically adjacent in
        every layout, so the per-member union of these segments is one
        contiguous span — the single-reference contract.
        """
        chunk_sectors = self.chunk_sectors
        out: List[Tuple[int, int, int, int]] = []
        sector, end = start, start + n_sectors
        while sector < end:
            chunk, offset = divmod(sector, chunk_sectors)
            length = min(chunk_sectors - offset, end - sector)
            member, physical = self.chunk_to_member(chunk)
            out.append(
                (member, physical * chunk_sectors + offset, length, sector)
            )
            sector += length
        return out

    # --------------------------------------------------- fan-out core

    def _fanout(self, calls: List[Tuple[int, Callable[[], object]]]) -> Dict:
        """Run member operations as overlapping fork branches.

        Returns ``{member_index: ("ok", value) | ("crashed", exc) |
        ("media", exc)}``.  Inside a service frame the branches replay
        from the fork point and the join charges the slowest member;
        in blocking mode they run sequentially, as blocking callers
        always did.
        """
        fork = FrameFork(self.clock)
        outcomes: Dict[int, Tuple[str, object]] = {}
        for index, thunk in calls:
            with fork.branch():
                try:
                    outcomes[index] = ("ok", thunk())
                except DiskCrashedError as exc:
                    outcomes[index] = ("crashed", exc)
                except MediaError as exc:
                    outcomes[index] = ("media", exc)
        fork.join()
        return outcomes

    def _crashed_members(self, outcomes: Dict) -> List[int]:
        return sorted(
            index for index, (kind, _) in outcomes.items() if kind == "crashed"
        )

    def _handle_crashes(self, outcomes: Dict) -> None:
        """Record fan-out crashes; replay the operation if still serving."""
        crashed = self._crashed_members(outcomes)
        if not crashed:
            return
        self._note_member_failures(crashed)
        self._raise_if_failed()
        raise _RetryOp(f"{self.array_id}: membership changed, replaying")

    def _raise_if_failed(self) -> None:
        if self._state is ArrayState.FAILED:
            raise ArrayFailedError(
                f"{self.array_id}: redundancy exhausted "
                f"(failed members {self.failed_members})"
            )

    # ------------------------------------------------- write funnels
    #
    # Every physical write the array issues goes through exactly one
    # of these three methods (plus RaidRebuilder._write_target); they
    # are the reviewed crash-point sites the chaos sweep numbers.

    def _member_write(self, index: int, physical_sector: int, data: bytes) -> None:
        """Data-path write to one member (registered write site)."""
        self._members[index].write_sectors(physical_sector, data)

    def _parity_write(self, index: int, physical_sector: int, data: bytes) -> None:
        """Parity write to one member (registered write site)."""
        self._members[index].write_sectors(physical_sector, data)
        self._c_parity_writes.add()

    def _superblock_write(self, index: int, blob: bytes) -> None:
        """Superblock write to one member (registered write site)."""
        self._members[index].write_sectors(0, blob)
        self.metrics.add(f"{self._prefix}.superblock_writes")

    def _journal_write(
        self, index: int, physical_sector: int, data: bytes
    ) -> None:
        """Write-intent journal write to one member (registered site)."""
        self._members[index].write_sectors(physical_sector, data)

    # ------------------------------------------- write-intent journal
    #
    # The degraded write hole: with a stale data column in a row, the
    # column's content exists only as parity XOR data, so a crash
    # between a row update's member writes changes what the column
    # reconstructs to — losing bytes that were acked long before the
    # in-flight write.  Before such an update the array journals the
    # reconstructed old value (payload, then a single-sector header
    # that commits the record) on the lowest in-sync member; recovery
    # replays armed records by recomputing the parity so the stale
    # column reconstructs to its journalled value again.  Replay is
    # idempotent: after a completed update the recomputation reproduces
    # the parity already on disk.

    def _journal_arm(
        self,
        member: int,
        stale: int,
        row: int,
        lo: int,
        n_sectors: int,
        payload: bytes,
    ) -> None:
        """Persist the stale column's old value before mutating a row."""
        self._journal_write(member, 2, payload)
        header = _pack_journal(
            stale, row, lo, n_sectors, self._epoch, payload,
            self._sector_size,
        )
        self._journal_write(member, 1, header)
        self.metrics.add(f"{self._prefix}.journal_arms")

    def _journal_clear(self, member: int) -> None:
        self._journal_write(member, 1, bytes(self._sector_size))

    def _replay_journal(self) -> None:
        """Replay armed write-intent records after a restart."""
        if self.level != 5:
            return
        for index, member in enumerate(self._members):
            if index in self._failed or member.crashed:
                continue
            try:
                raw = member.read_sectors(1, 1)
            except (DiskCrashedError, MediaError):
                continue
            parsed = _parse_journal(raw)
            if parsed is None:
                continue
            stale, row, lo, n_sectors, payload_crc = parsed
            replayed = False
            if (
                stale in self._failed
                and stale < self._n
                and 0 <= row < self.member_chunks - self._meta_chunks
                and stale != self.parity_member(row)
                and 0 < n_sectors
                and lo + n_sectors <= self.chunk_sectors
            ):
                replayed = self._replay_record(
                    index, stale, row, lo, n_sectors, payload_crc
                )
            try:
                self._journal_clear(index)
            except DiskCrashedError:
                continue
            if replayed:
                self.metrics.add(f"{self._prefix}.journal_replays")

    def _replay_record(
        self,
        member: int,
        stale: int,
        row: int,
        lo: int,
        n_sectors: int,
        payload_crc: int,
    ) -> bool:
        parity_member = self.parity_member(row)
        span_lo = (self._meta_chunks + row) * self.chunk_sectors + lo
        try:
            payload = self._members[member].read_sectors(2, n_sectors)
        except (DiskCrashedError, MediaError):
            return False
        if zlib.crc32(payload) != payload_crc:
            return False
        acc: Optional[bytes] = None
        try:
            for other in range(self._n):
                if other in (parity_member, stale):
                    continue
                column = self._members[other].read_sectors(span_lo, n_sectors)
                acc = column if acc is None else _xor(acc, column)
            assert acc is not None
            self._parity_write(parity_member, span_lo, _xor(acc, payload))
        except (DiskCrashedError, MediaError):
            return False
        return True

    # --------------------------------------------------- membership

    def _write_superblocks(self, targets) -> None:
        """Best-effort superblock round to ``targets``, in member order.

        A member that crashes during its superblock write is folded
        into the failed set by the caller's next round; a torn
        superblock parses as stale on recovery, which is the safe
        direction.
        """
        failed_bits = 0
        for index in self._failed:
            failed_bits |= 1 << index
        rebuilding_bits = (
            1 << self._rebuilding if self._rebuilding is not None else 0
        )
        for index in sorted(targets):
            if self._members[index].crashed:
                continue
            blob = _pack_superblock(
                self.level, self._n, self.chunk_sectors, index, self._epoch,
                failed_bits, rebuilding_bits, self._sector_size,
            )
            try:
                self._superblock_write(index, blob)
            except DiskCrashedError:
                # Recorded by the caller's failure loop; the torn
                # superblock reads as stale, never as fresher state.
                continue

    def _note_member_failures(self, indices: Sequence[int]) -> None:
        """Fold newly failed members in; one epoch bump per batch.

        Iterates until the superblock round itself stops crashing
        members (bounded by the member count), then recomputes state.
        """
        pending = [
            i for i in sorted(set(indices))
            # The rebuild target is already in the failed set; losing it
            # again must still cancel the rebuild it anchors.
            if i not in self._failed or i == self._rebuilding
        ]
        if not pending:
            return
        while pending:
            for index in pending:
                self._failed.add(index)
                if not self._members[index].crashed:
                    self._members[index].crash()
                if self._rebuilding == index:
                    # A mid-rebuild target is stale again: the rebuild
                    # is cancelled, the member stays failed.
                    self._rebuilding = None
                    self._rebuild_watermark = 0
                self.metrics.add(f"{self._prefix}.member_failures")
            self._epoch += 1
            survivors = [
                i for i in range(self._n)
                if i not in self._failed and not self._members[i].crashed
            ]
            self._write_superblocks(survivors)
            pending = [
                i for i in survivors if self._members[i].crashed
            ]
        self._refresh_state()

    def fail_member(self, index: int) -> None:
        """Kill one member drive (the scriptable whole-disk loss).

        Idempotent; crashes the drive if it is still up, records the
        failure, bumps the epoch, and rewrites the survivors'
        superblocks.
        """
        if not 0 <= index < self._n:
            raise BadAddressError(f"no member {index}")
        if index in self._failed and index != self._rebuilding:
            return
        self._note_member_failures([index])

    def replace_member(self, index: int, *, blank: bool = True) -> None:
        """Swap a failed member's platter and mark it rebuilding.

        ``blank=True`` models a replacement drive
        (:meth:`~repro.simdisk.disk.SimDisk.replace_platter`); False
        re-adds the old platter after a transient outage — either way
        the member stays untrusted until the rebuild completes.
        """
        if self.level == 0:
            raise ValueError("raid0 has no redundancy to rebuild from")
        if index not in self._failed:
            raise ValueError(f"member {index} is not failed")
        if self._rebuilding is not None:
            raise ValueError(
                f"member {self._rebuilding} is already rebuilding"
            )
        member = self._members[index]
        if blank:
            member.replace_platter()
        else:
            member.repair()
        self._rebuilding = index
        self._rebuild_watermark = self._meta_chunks  # metadata area below
        self._epoch += 1
        self.metrics.add(f"{self._prefix}.member_replacements")
        self._g_rebuild.set(0)
        self._write_superblocks(range(self._n))
        self._refresh_state()

    def _complete_rebuild(self) -> None:
        target = self._rebuilding
        self._rebuilding = None
        self._rebuild_watermark = 0
        if target is not None:
            self._failed.discard(target)
        self._epoch += 1
        self._g_rebuild.set(100)
        self._write_superblocks(range(self._n))
        self._refresh_state()

    def _refresh_state(self) -> None:
        if self.level == 0:
            serving = not self._failed
        elif self.level == 1:
            serving = len(self._failed) < self._n
        else:
            serving = len(self._failed) <= 1
        if not serving:
            new = ArrayState.FAILED
        elif self._rebuilding is not None:
            new = ArrayState.REBUILDING
        elif self._failed:
            new = ArrayState.DEGRADED
        else:
            new = ArrayState.OPTIMAL
        old, self._state = self._state, new
        self._g_state.set(new.value)
        self._g_failed.set(len(self._failed))
        if new is not old and self.on_state_change is not None:
            self.on_state_change(old, new)

    # ---------------------------------------------------- lifecycle

    def crash(self) -> None:
        """Machine crash: every member goes dark (contents persist)."""
        for member in self._members:
            if not member.crashed:
                member.crash()

    def repair(self) -> None:
        """Machine restart: repair the members, re-learn membership.

        The full parity resync belongs to :meth:`recover`; callers on
        the restart path that cannot afford a platter walk pass through
        here and schedule a rebuild for whatever the superblocks say is
        stale.
        """
        for member in self._members:
            member.repair()
        self.recover(resync=False)

    def recover(self, *, resync: bool = True) -> None:
        """Re-learn membership from the superblocks after a restart.

        The highest valid epoch wins; its failed/rebuilding bitmaps are
        the authoritative stale set (an interrupted rebuild restarts
        from scratch).  Members whose superblock is unreadable or not
        ours are stale too.  With ``resync=True`` and no stale member,
        the parity of every row (raid5) or the mirror agreement of
        every chunk (raid1) is then re-established from the data —
        closing the write hole a crash mid-stripe leaves.
        """
        per_member: List[Optional[Tuple[int, int, int]]] = []
        for index, member in enumerate(self._members):
            parsed = None
            if not member.crashed:
                try:
                    raw = member.read_sectors(0, 1)
                    parsed = _parse_superblock(
                        raw, level=self.level, n_members=self._n,
                        chunk_sectors=self.chunk_sectors, member_index=index,
                    )
                except (DiskCrashedError, MediaError):
                    parsed = None
            per_member.append(parsed)
        best: Optional[Tuple[int, int, int]] = None
        for parsed in per_member:
            if parsed is not None and (best is None or parsed[0] > best[0]):
                best = parsed
        self._rebuilding = None
        self._rebuild_watermark = 0
        if best is None:
            # Virgin platters everywhere: initialise a fresh array.
            self._failed = {
                i for i, m in enumerate(self._members) if m.crashed
            }
            self._epoch = 1
        else:
            _, failed_bits, rebuilding_bits = best
            stale = failed_bits | rebuilding_bits
            failed = {i for i in range(self._n) if stale >> i & 1}
            for index, parsed in enumerate(per_member):
                if parsed is None:
                    failed.add(index)
            self._failed = failed
            self._epoch = best[0] + 1
        self._refresh_state()
        if self._state is not ArrayState.FAILED:
            self._replay_journal()
        if (
            resync
            and self.level != 0
            and not self._failed
            and self._state is not ArrayState.FAILED
        ):
            self._resync()
        survivors = [i for i in range(self._n) if i not in self._failed]
        self._write_superblocks(survivors)
        self._refresh_state()

    def _resync(self) -> None:
        """Recompute redundancy from data over every row (write hole).

        Only runs with every member in sync: a stale member is the
        rebuild's job, not resync's.  Acked rows already satisfy the
        invariant, so only rows torn by an un-acked in-flight write are
        rewritten — and those carry no content promise.
        """
        chunk_sectors = self.chunk_sectors
        for row in range(self.member_chunks - self._meta_chunks):
            physical = (self._meta_chunks + row) * chunk_sectors
            if self.level == 1:
                reference = self._members[0].read_sectors(
                    physical, chunk_sectors
                )
                for index in range(1, self._n):
                    if self._members[index].read_sectors(
                        physical, chunk_sectors
                    ) != reference:
                        self._member_write(index, physical, reference)
                        self.metrics.add(f"{self._prefix}.resync_repairs")
                continue
            parity_member = self.parity_member(row)
            expected: Optional[bytes] = None
            for index in range(self._n):
                if index == parity_member:
                    continue
                chunk = self._members[index].read_sectors(
                    physical, chunk_sectors
                )
                expected = chunk if expected is None else _xor(expected, chunk)
            assert expected is not None
            stored = self._members[parity_member].read_sectors(
                physical, chunk_sectors
            )
            if stored != expected:
                self._parity_write(parity_member, physical, expected)
                self.metrics.add(f"{self._prefix}.resync_repairs")

    # -------------------------------------------------------- reads

    def read_sectors(self, start: int, n_sectors: int) -> bytes:
        """Read a contiguous logical run — one span per member."""
        mon = _monitor.active()
        if mon.enabled:
            mon.chain(self)
        self._check_request(start, n_sectors)
        for _ in range(self._n + 1):
            self._raise_if_failed()
            try:
                data = self._read_attempt(start, n_sectors, in_passing=False)
            except _RetryOp:
                continue
            self._c_reads.add()
            if self._failed:
                self._c_degraded_reads.add()
            self._head_cylinder = self.geometry.cylinder_of(
                start + n_sectors - 1
            )
            return data
        raise ArrayFailedError(f"{self.array_id}: no serving membership")

    def read_in_passing(self, start: int, n_sectors: int) -> bytes:
        """Track readahead across the members (no disk references)."""
        self._check_request(start, n_sectors)
        for _ in range(self._n + 1):
            self._raise_if_failed()
            try:
                return self._read_attempt(start, n_sectors, in_passing=True)
            except _RetryOp:
                continue
        raise ArrayFailedError(f"{self.array_id}: no serving membership")

    def _read_attempt(
        self, start: int, n_sectors: int, *, in_passing: bool
    ) -> bytes:
        if self.level == 1:
            return self._read_raid1(start, n_sectors, in_passing=in_passing)
        segments = self._segments(start, n_sectors)
        stale = self._stale_member()
        size = self._sector_size
        # One contiguous span per member: its own segments, plus (in
        # degraded raid5) every stale segment's range for the XOR.
        spans: Dict[int, Tuple[int, int]] = {}

        def widen(index: int, lo: int, hi: int) -> None:
            held = spans.get(index)
            spans[index] = (
                (lo, hi) if held is None
                else (min(held[0], lo), max(held[1], hi))
            )

        stale_segments = []
        for member, physical, length, logical in segments:
            if member == stale:
                if self.level == 0:
                    raise ArrayFailedError(
                        f"{self.array_id}: raid0 member {member} lost"
                    )
                stale_segments.append((member, physical, length, logical))
                for other in range(self._n):
                    if other != stale and other not in self._failed:
                        widen(other, physical, physical + length)
            else:
                widen(member, physical, physical + length)
        calls = []
        for index in sorted(spans):
            lo, hi = spans[index]
            member = self._members[index]
            reader = member.read_in_passing if in_passing else member.read_sectors
            calls.append(
                (index, (lambda r=reader, l=lo, n=hi - lo: r(l, n)))
            )
        outcomes = self._fanout(calls)
        self._handle_crashes(outcomes)
        buffers = self._settle_media(outcomes, spans, in_passing=in_passing)
        out = bytearray(n_sectors * size)
        for member, physical, length, logical in segments:
            if member == stale:
                continue
            lo, _ = spans[member]
            offset = (physical - lo) * size
            out[(logical - start) * size : (logical - start + length) * size] = (
                buffers[member][offset : offset + length * size]
            )
        for member, physical, length, logical in stale_segments:
            piece: Optional[bytes] = None
            for other in sorted(spans):
                lo, _ = spans[other]
                offset = (physical - lo) * size
                slice_ = buffers[other][offset : offset + length * size]
                piece = slice_ if piece is None else _xor(piece, slice_)
            assert piece is not None
            out[(logical - start) * size : (logical - start + length) * size] = piece
            self._c_reconstructed.add()
        return bytes(out)

    def _read_raid1(
        self, start: int, n_sectors: int, *, in_passing: bool
    ) -> bytes:
        physical = self._data_start + start
        last_media: Optional[MediaError] = None
        for index in range(self._n):
            if index in self._failed:
                continue
            member = self._members[index]
            reader = member.read_in_passing if in_passing else member.read_sectors
            try:
                return reader(physical, n_sectors)
            except DiskCrashedError:
                self._note_member_failures([index])
                self._raise_if_failed()
                raise _RetryOp(f"{self.array_id}: mirror {index} lost")
            except MediaError as exc:
                last_media = exc
                if in_passing:
                    continue
                healed = self._repair_mirror_media(index, physical, n_sectors)
                if healed is not None:
                    return healed
        assert last_media is not None
        raise last_media

    def _repair_mirror_media(
        self, index: int, physical: int, n_sectors: int
    ) -> Optional[bytes]:
        """Rewrite a mirror's failing range from a surviving mirror.

        Returns the content on success; marks the member failed (and
        returns None, letting the caller fall through to the next
        mirror) when the rewrite does not take — the *unrepairable*
        media case.
        """
        for other in range(self._n):
            if other == index or other in self._failed:
                continue
            try:
                content = self._members[other].read_sectors(physical, n_sectors)
            except (DiskCrashedError, MediaError):
                continue
            try:
                self._member_write(index, physical, content)
                self._members[index].read_sectors(physical, n_sectors)
            except DiskCrashedError:
                self._note_member_failures([index])
                return content
            except MediaError:
                self._note_member_failures([index])
                return content
            self.metrics.add(f"{self._prefix}.media_repairs")
            return content
        return None

    def _settle_media(
        self, outcomes: Dict, spans: Dict[int, Tuple[int, int]], *,
        in_passing: bool,
    ) -> Dict[int, bytes]:
        """Resolve media errors from a read fan-out, repairing in place.

        A failing span is reconstructed from the surviving members and
        rewritten (a rewrite heals latent errors); if the platter still
        will not serve it, the member is *unrepairably* failing and is
        retired from the array.
        """
        buffers: Dict[int, bytes] = {}
        media = []
        for index in sorted(outcomes):
            kind, value = outcomes[index]
            if kind == "ok":
                buffers[index] = value  # type: ignore[assignment]
            elif kind == "media":
                media.append((index, value))
        for index, error in media:
            lo, hi = spans[index]
            if self.level == 0:
                raise error  # type: ignore[misc]
            content = self._reconstruct_span(index, lo, hi - lo)
            if content is None:
                raise error  # type: ignore[misc]
            try:
                self._member_write(index, lo, content)
                self._members[index].read_sectors(lo, hi - lo)
                self.metrics.add(f"{self._prefix}.media_repairs")
            except (DiskCrashedError, MediaError):
                self._note_member_failures([index])
                self._raise_if_failed()
                raise _RetryOp(
                    f"{self.array_id}: member {index} unrepairable"
                )
            buffers[index] = content
        return buffers

    def _reconstruct_span(
        self, index: int, physical: int, n_sectors: int
    ) -> Optional[bytes]:
        """A member's physical span, rebuilt from the survivors.

        raid5: XOR of every other in-sync member's same span (valid for
        data and parity chunks alike).  Returns None when redundancy is
        already spent.
        """
        if self.level != 5:
            return None
        others = [
            i for i in range(self._n) if i != index and i not in self._failed
        ]
        if len(others) != self._n - 1:
            return None
        piece: Optional[bytes] = None
        for other in others:
            chunk = self._members[other].read_sectors(physical, n_sectors)
            piece = chunk if piece is None else _xor(piece, chunk)
        return piece

    def _stale_member(self) -> Optional[int]:
        """The single member reads must avoid, if any (raid5/raid0)."""
        if not self._failed:
            return None
        return min(self._failed)

    # -------------------------------------------------------- writes

    def write_sectors(self, start: int, data: bytes) -> None:
        """Write a contiguous logical run, maintaining redundancy."""
        mon = _monitor.active()
        if mon.enabled:
            mon.chain(self)
        size = self._sector_size
        n_bytes = len(data)
        if n_bytes == 0 or n_bytes % size != 0:
            raise BadAddressError(
                f"write length {n_bytes} is not a positive multiple of {size}"
            )
        n_sectors = n_bytes // size
        self._check_request(start, n_sectors)
        for _ in range(self._n + 1):
            self._raise_if_failed()
            try:
                if self.level == 0:
                    self._write_raid0(start, data, n_sectors)
                elif self.level == 1:
                    self._write_raid1(start, data, n_sectors)
                else:
                    self._write_raid5(start, data, n_sectors)
            except _RetryOp:
                continue
            self._c_writes.add()
            if self._failed:
                self._c_degraded_writes.add()
            self._head_cylinder = self.geometry.cylinder_of(
                start + n_sectors - 1
            )
            return
        raise ArrayFailedError(f"{self.array_id}: no serving membership")

    def _write_raid0(self, start: int, data: bytes, n_sectors: int) -> None:
        if self._failed:
            raise ArrayFailedError(f"{self.array_id}: raid0 member lost")
        size = self._sector_size
        pieces: Dict[int, List[bytes]] = {}
        first: Dict[int, int] = {}
        for member, physical, length, logical in self._segments(start, n_sectors):
            first.setdefault(member, physical)
            pieces.setdefault(member, []).append(
                data[(logical - start) * size : (logical - start + length) * size]
            )
        calls = [
            (
                index,
                (
                    lambda i=index, lo=first[index],
                    payload=b"".join(pieces[index]): self._member_write(
                        i, lo, payload
                    )
                ),
            )
            for index in sorted(pieces)
        ]
        outcomes = self._fanout(calls)
        if self._crashed_members(outcomes):
            self._note_member_failures(self._crashed_members(outcomes))
            self._raise_if_failed()
        for index in sorted(outcomes):
            kind, value = outcomes[index]
            if kind == "media":
                raise value  # type: ignore[misc]

    def _raid1_write_targets(self, physical: int, n_sectors: int) -> List[
        Tuple[int, int, int]
    ]:
        """``(member, phys, n)`` per mirror, clipping the rebuild target
        to its watermark (the rebuilt prefix must stay fresh; the rest
        is the rebuilder's job)."""
        targets = []
        for index in range(self._n):
            if index in self._failed and index != self._rebuilding:
                continue
            if index == self._rebuilding:
                limit = self._rebuild_watermark * self.chunk_sectors
                if physical >= limit:
                    continue
                targets.append((index, physical, min(n_sectors, limit - physical)))
            else:
                targets.append((index, physical, n_sectors))
        return targets

    def _write_raid1(self, start: int, data: bytes, n_sectors: int) -> None:
        physical = self._data_start + start
        size = self._sector_size
        targets = self._raid1_write_targets(physical, n_sectors)
        calls = [
            (
                index,
                (
                    lambda i=index, lo=lo, payload=data[: n * size]:
                    self._member_write(i, lo, payload)
                ),
            )
            for index, lo, n in targets
        ]
        outcomes = self._fanout(calls)
        crashed = self._crashed_members(outcomes)
        full_copies = sum(
            1
            for index, lo, n in targets
            if outcomes[index][0] == "ok"
            and n == n_sectors
            and index != self._rebuilding
        )
        if crashed:
            self._note_member_failures(crashed)
            self._raise_if_failed()
            if full_copies == 0:
                raise _RetryOp(f"{self.array_id}: no mirror took the write")

    def _write_raid5(self, start: int, data: bytes, n_sectors: int) -> None:
        chunk_sectors = self.chunk_sectors
        d = self._n - 1
        size = self._sector_size
        row_sectors = d * chunk_sectors
        rows: Dict[int, List[Tuple[int, int, int, int]]] = {}
        segment_sector, end = start, start + n_sectors
        while segment_sector < end:
            chunk, offset = divmod(segment_sector, chunk_sectors)
            length = min(chunk_sectors - offset, end - segment_sector)
            row, k = divmod(chunk, d)
            rows.setdefault(row, []).append(
                (k, offset, length, segment_sector)
            )
            segment_sector += length
        full = [
            row for row, segs in rows.items()
            if sum(length for _, _, length, _ in segs) == row_sectors
        ]
        full.sort()
        runs: List[Tuple[int, int]] = []
        for row in full:
            if runs and runs[-1][1] + 1 == row:
                runs[-1] = (runs[-1][0], row)
            else:
                runs.append((row, row))
        for first_row, last_row in runs:
            self._write_full_rows(first_row, last_row, start, data)
        for row in sorted(rows):
            if row not in full:
                self._write_partial_row(row, rows[row], start, data)

    def _row_buffers(
        self, first_row: int, last_row: int, start: int, data: bytes
    ) -> Dict[int, bytes]:
        """Per-member span payloads (data + rotated parity) for a run
        of fully covered stripe rows."""
        chunk_bytes = self._chunk_bytes
        d = self._n - 1
        parts: Dict[int, List[bytes]] = {i: [] for i in range(self._n)}
        for row in range(first_row, last_row + 1):
            base = (row * d * self.chunk_sectors - start) * self._sector_size
            chunks = [
                data[base + k * chunk_bytes : base + (k + 1) * chunk_bytes]
                for k in range(d)
            ]
            parity = chunks[0]
            for chunk in chunks[1:]:
                parity = _xor(parity, chunk)
            parity_member = self.parity_member(row)
            for index in range(self._n):
                if index == parity_member:
                    parts[index].append(parity)
                else:
                    k = index if index < parity_member else index - 1
                    parts[index].append(chunks[k])
        return {index: b"".join(parts[index]) for index in parts}

    def _write_full_rows(
        self, first_row: int, last_row: int, start: int, data: bytes
    ) -> None:
        chunk_sectors = self.chunk_sectors
        meta = self._meta_chunks
        buffers = self._row_buffers(first_row, last_row, start, data)
        physical = (meta + first_row) * chunk_sectors
        calls = []
        for index in range(self._n):
            if index in self._failed and index != self._rebuilding:
                continue
            payload = buffers[index]
            if index == self._rebuilding:
                # Write through only the rebuilt prefix of the target.
                if meta + first_row >= self._rebuild_watermark:
                    continue
                keep = min(
                    last_row - first_row + 1,
                    self._rebuild_watermark - (meta + first_row),
                )
                payload = payload[: keep * self._chunk_bytes]
            calls.append(
                (
                    index,
                    (
                        lambda i=index, lo=physical, p=payload:
                        self._member_write(i, lo, p)
                    ),
                )
            )
        outcomes = self._fanout(calls)
        self._handle_crashes(outcomes)
        for index in sorted(outcomes):
            kind, value = outcomes[index]
            if kind == "media":
                raise value  # type: ignore[misc]

    def _write_partial_row(
        self,
        row: int,
        segments: List[Tuple[int, int, int, int]],
        start: int,
        data: bytes,
    ) -> None:
        """Read-modify-write one partially covered stripe row.

        The small-write penalty lives here: covered columns and the
        parity chunk are read over the union range, the parity delta is
        folded in, and both are rewritten.  With a stale data column in
        the row the old values are recovered through the parity
        identity instead of reading the stale platter — and the
        recovered value is journalled before any member write goes out,
        so a crash between the row's writes cannot strand the stale
        column's acked bytes (the degraded write hole).
        """
        chunk_sectors = self.chunk_sectors
        size = self._sector_size
        parity_member = self.parity_member(row)
        physical = (self._meta_chunks + row) * chunk_sectors
        stale = self._stale_member()
        lo = min(offset for _, offset, _, _ in segments)
        hi = max(offset + length for _, offset, length, _ in segments)
        span_lo, span_n = physical + lo, hi - lo
        covered: Dict[int, Tuple[int, bytes]] = {}
        for k, offset, length, logical in segments:
            member = k if k < parity_member else k + 1
            piece = data[
                (logical - start) * size : (logical - start + length) * size
            ]
            covered[member] = (offset, piece)
        write_through = (
            self._rebuilding is not None
            and self._meta_chunks + row < self._rebuild_watermark
        )
        # --- read phase -------------------------------------------
        # A stale *data* column makes any parity update hazardous (the
        # column's value is the parity identity over the others), so
        # its old value is recovered up front whether or not the write
        # covers it, and journalled before the writes go out.
        stale_data = stale is not None and stale != parity_member
        need_all_columns = stale_data or (
            stale == parity_member and write_through
        )
        reads: Dict[int, Tuple[int, int]] = {}
        if need_all_columns:
            for index in range(self._n):
                if index == stale:
                    continue
                reads[index] = (span_lo, span_n)
        elif stale == parity_member:
            pass  # exact-slice writes only; no parity to maintain
        else:
            for member in covered:
                if member in self._failed:
                    continue
                reads[member] = (span_lo, span_n)
            reads[parity_member] = (span_lo, span_n)
        calls = [
            (
                index,
                (
                    lambda m=self._members[index], lo_=reads[index][0],
                    n_=reads[index][1]: m.read_sectors(lo_, n_)
                ),
            )
            for index in sorted(reads)
        ]
        outcomes = self._fanout(calls)
        self._handle_crashes(outcomes)
        old = self._settle_media(
            outcomes,
            {index: (span_lo, span_lo + span_n) for index in reads},
            in_passing=False,
        )
        # --- compute phase ----------------------------------------
        posts: Dict[int, bytes] = {}
        for member, (offset, piece) in sorted(covered.items()):
            if member in old:
                posts[member] = _overlay(
                    old[member], (offset - lo) * size, piece
                )
        stale_old: Optional[bytes] = None
        parity_new: Optional[bytes] = None
        if need_all_columns:
            if stale_data:
                assert stale is not None
                # Stale column's old value via the parity identity,
                # then overlay the new slice if the write covers it.
                recovered = old[parity_member]
                for j in range(self._n):
                    if j not in (parity_member, stale):
                        recovered = _xor(recovered, old[j])
                stale_old = recovered
                if stale in covered:
                    offset, piece = covered[stale]
                    recovered = _overlay(
                        recovered, (offset - lo) * size, piece
                    )
                posts[stale] = recovered
            # Fresh parity over the union range from post-write state.
            acc: Optional[bytes] = None
            for index in range(self._n):
                if index == parity_member:
                    continue
                column = posts.get(index, old.get(index))
                if column is None:
                    continue
                acc = column if acc is None else _xor(acc, column)
            parity_new = acc
        elif stale != parity_member:
            delta: Optional[bytes] = None
            for member in sorted(posts):
                change = _xor(old[member], posts[member])
                delta = change if delta is None else _xor(delta, change)
            assert delta is not None
            parity_new = _xor(old[parity_member], delta)
        # --- journal phase ----------------------------------------
        journal_member: Optional[int] = None
        if stale_data:
            assert stale is not None and stale_old is not None
            journal_member = min(
                i for i in range(self._n) if i not in self._failed
            )
            try:
                self._journal_arm(
                    journal_member, stale, row, lo, span_n, stale_old
                )
            except DiskCrashedError:
                self._note_member_failures([journal_member])
                self._raise_if_failed()
                raise _RetryOp(
                    f"{self.array_id}: journal member {journal_member} lost"
                )
        # --- write phase ------------------------------------------
        write_calls = []
        for member in sorted(covered):
            if member in self._failed and not (
                member == self._rebuilding and write_through
            ):
                continue
            if member in posts and member != stale:
                payload, at = posts[member], span_lo
            else:
                offset, piece = covered[member]
                payload, at = piece, physical + offset
            write_calls.append(
                (
                    member,
                    (
                        lambda i=member, lo_=at, p=payload:
                        self._member_write(i, lo_, p)
                    ),
                )
            )
        if parity_new is not None and (
            parity_member not in self._failed
            or (parity_member == self._rebuilding and write_through)
        ):
            write_calls.append(
                (
                    parity_member,
                    (
                        lambda i=parity_member, lo_=span_lo, p=parity_new:
                        self._parity_write(i, lo_, p)
                    ),
                )
            )
        outcomes = self._fanout(write_calls)
        self._handle_crashes(outcomes)
        for index in sorted(outcomes):
            kind, value = outcomes[index]
            if kind == "media":
                raise value  # type: ignore[misc]
        if journal_member is not None:
            try:
                self._journal_clear(journal_member)
            except DiskCrashedError:
                # The row update itself landed; losing the journal
                # member now only costs redundancy, never the write.
                self._note_member_failures([journal_member])
                self._raise_if_failed()

    # ------------------------------------------------------ internal

    def _check_request(self, start: int, n_sectors: int) -> None:
        if n_sectors <= 0:
            raise BadAddressError("request must cover at least one sector")
        if not 0 <= start or start + n_sectors > self._total_sectors:
            self.geometry.check_sector(start)
            self.geometry.check_sector(start + n_sectors - 1)

    def __repr__(self) -> str:
        return (
            f"StripedVolume({self.array_id!r}, raid{self.level}x{self._n}, "
            f"{self._state.name.lower()})"
        )


class RaidRebuilder:
    """Background reconstruction of a replaced member, scrubber-style.

    Walks the target's physical data chunks (the metadata area is
    rewritten by the membership machinery), reconstructing each from
    the surviving members — a mirror copy for raid1, the XOR of every
    survivor for raid5 — and advancing the array's write-through
    watermark as it goes.  :meth:`step` yields to foreground traffic
    when the ``idle_gate`` reports the pipeline busy, exactly like the
    PR 6 scrubber; :meth:`run_cycle` forces completion.

    Args:
        array: the owning array; must currently be REBUILDING.
        chunks_per_step: physical chunks reconstructed per granted step.
        idle_gate: truthy return = foreground busy, skip this step.
    """

    def __init__(
        self,
        array: StripedVolume,
        *,
        chunks_per_step: int = 32,
        idle_gate: Optional[Callable[[], bool]] = None,
    ) -> None:
        if array.rebuild_target is None:
            raise ValueError("array has no rebuild target")
        if chunks_per_step < 1:
            raise ValueError("need at least one chunk per step")
        self.array = array
        self.target = array.rebuild_target
        self.chunks_per_step = chunks_per_step
        self.idle_gate = idle_gate
        self._cursor = array._meta_chunks  # data starts past metadata
        self._prefix = f"raid.{array.array_id}.rebuild"

    @property
    def done(self) -> bool:
        """True once the rebuild completed or was cancelled."""
        return self.array.rebuild_target != self.target

    @property
    def cursor(self) -> int:
        return self._cursor

    def progress_percent(self) -> int:
        meta = self.array._meta_chunks
        total = self.array.member_chunks - meta
        return min(100, (self._cursor - meta) * 100 // total)

    def step(self, *, force: bool = False) -> int:
        """Rebuild up to ``chunks_per_step`` chunks; 0 if gated or done.

        A second failure mid-step cancels (raid5 → FAILED) and the
        rebuilder reports done; the array state is authoritative.
        """
        if self.done or self.array.state is not ArrayState.REBUILDING:
            return 0
        if not force and self.idle_gate is not None and self.idle_gate():
            self.array.metrics.add(f"{self._prefix}.steps_yielded")
            return 0
        built = 0
        while built < self.chunks_per_step and not self.done:
            if self._cursor >= self.array.member_chunks:
                break
            if not self._rebuild_chunk(self._cursor):
                return built
            self._cursor += 1
            built += 1
            self.array._rebuild_watermark = self._cursor
            self.array.metrics.add(f"{self._prefix}.chunks")
        self.array._g_rebuild.set(self.progress_percent())
        if self._cursor >= self.array.member_chunks and not self.done:
            self.array._complete_rebuild()
        return built

    def run_cycle(self) -> None:
        """Force the rebuild to completion (ignoring the idle gate)."""
        while not self.done:
            if self.step(force=True) == 0 and not self.done:
                return  # array left REBUILDING (second failure)

    def _rebuild_chunk(self, physical_chunk: int) -> bool:
        array = self.array
        chunk_sectors = array.chunk_sectors
        physical = physical_chunk * chunk_sectors
        content: Optional[bytes] = None
        try:
            if array.level == 1:
                for index in range(array._n):
                    if index == self.target or index in array._failed:
                        continue
                    content = array._members[index].read_sectors(
                        physical, chunk_sectors
                    )
                    break
            else:
                for index in range(array._n):
                    if index == self.target or index in array._failed:
                        continue
                    piece = array._members[index].read_sectors(
                        physical, chunk_sectors
                    )
                    content = piece if content is None else _xor(content, piece)
        except DiskCrashedError:
            crashed = [
                i for i in range(array._n)
                if array._members[i].crashed and i not in array._failed
            ]
            array._note_member_failures(crashed)
            return False
        except MediaError:
            # Redundancy is already spent on the target; an unreadable
            # survivor chunk means this stripe cannot be reconstructed.
            array._note_member_failures([self.target])
            return False
        if content is None:
            array._note_member_failures([self.target])
            return False
        try:
            self._write_target(physical, content)
        except DiskCrashedError:
            array._note_member_failures([self.target])
            return False
        return True

    def _write_target(self, physical: int, content: bytes) -> None:
        """Rebuild write to the target member (registered write site)."""
        self.array._members[self.target].write_sectors(physical, content)
