"""Fault injection for the simulated disks.

The paper's reliability machinery — stable storage (section 4),
intention flags and crash recovery (sections 6.6–6.7) — only earns its
keep under failures, so the disk model can inject them on demand:

* **crash**: the disk stops serving; writes in flight may be *torn*
  (a prefix of the sectors written, the rest lost), which is exactly
  the failure careful replicated writes defend against;
* **bad sectors**: persistent media failures on read;
* **latent sector errors**: a sector that reads fine for its first
  ``after_reads`` accesses and then fails persistently — the failure
  mode background scrubbing exists to find before a client does.  A
  rewrite heals the sector (the drive remaps it), which is what makes
  repair-from-redundancy effective;
* **scheduled crash points**: "crash after the k-th write", used by the
  recovery tests to prove atomicity at every step of a commit;
* **write monitors**: an external observer (the chaos subsystem's
  :class:`~repro.chaos.trace.CrashPointMonitor`) may number every write
  across a whole group of disks and decide, per write, whether to crash
  the group — which is how the crash-schedule explorer enumerates every
  instant a volume could die.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Protocol, Sequence, Set

#: Knuth's multiplicative hash constant; used to derive per-sector
#: deterministic values (the chaos tracer uses the same scatter).
_SCATTER = 2654435761


class WriteMonitor(Protocol):
    """Observer of physical writes, able to veto them with a crash.

    Returning ``None`` lets the write proceed; returning an integer
    crashes the disk during this write with that many sectors surviving
    (a torn write).
    """

    def on_write(
        self, faults: "FaultInjector", disk_id: str, start: int, n_sectors: int
    ) -> Optional[int]: ...


class FaultInjector:
    """Per-disk fault state, consulted by :class:`~repro.simdisk.disk.SimDisk`."""

    __slots__ = (
        "seed",
        "_rng",
        "crashed",
        "bad_sectors",
        "_media_errors",
        "_crash_after_writes",
        "_writes_seen",
        "torn_write_fraction",
        "monitor",
        "last_crash_note",
    )

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.crashed = False
        self.bad_sectors: Set[int] = set()
        #: Latent sector errors: sector -> successful reads remaining
        #: before the sector starts failing (0 = failing already).
        self._media_errors: Dict[int, int] = {}
        self._crash_after_writes: Optional[int] = None
        self._writes_seen = 0
        self.torn_write_fraction: float = 0.5
        #: Shared observer numbering writes across a disk group (chaos).
        self.monitor: Optional[WriteMonitor] = None
        #: Reproduction hint for the most recent injected crash; the
        #: disk appends it to the DiskCrashedError message so any red
        #: test names the seed / crash point that triggers it again.
        self.last_crash_note: Optional[str] = None

    # ------------------------------------------------------- control

    def crash_now(self) -> None:
        """Immediately take the disk offline."""
        self.crashed = True

    def repair(self) -> None:
        """Bring a crashed disk back (its contents persist).

        Clears :attr:`last_crash_note` too: the note is a reproduction
        hint for the crash that just happened, and letting it survive a
        repair means a *later* crash can append a stale hint naming the
        wrong crash point.
        """
        self.crashed = False
        self._crash_after_writes = None
        self._writes_seen = 0
        self.last_crash_note = None

    def reset(self) -> None:
        """Factory-fresh fault state for a replacement drive.

        Clears the crash, every media fault, and any scheduled crash
        point, and re-seeds the private RNG so the replacement's torn
        writes replay deterministically from the same seed.  The shared
        :attr:`monitor` stays attached: a drive swapped into a monitored
        group keeps its writes numbered by the chaos sweep.
        """
        self.crashed = False
        self.bad_sectors.clear()
        self._media_errors.clear()
        self._crash_after_writes = None
        self._writes_seen = 0
        self.last_crash_note = None
        self._rng = random.Random(self.seed)

    def crash_after_writes(self, n: int) -> None:
        """Schedule a crash during the n-th write from now (1-based).

        The crashing write is torn: a random prefix of its sectors
        reaches the platter.
        """
        if n < 1:
            raise ValueError("crash point must be >= 1")
        self._crash_after_writes = n
        self._writes_seen = 0

    def mark_bad(self, sector: int) -> None:
        """Make ``sector`` permanently unreadable."""
        self.bad_sectors.add(sector)

    def heal(self, sector: int) -> None:
        """Repair a bad sector (e.g. after a rewrite remaps it)."""
        self.bad_sectors.discard(sector)
        self._media_errors.pop(sector, None)

    def schedule_media_error(self, sector: int, *, after_reads: int = 0) -> None:
        """Make ``sector`` develop a latent error on a read schedule.

        The sector serves ``after_reads`` more reads normally, then
        every later read fails with :class:`~repro.common.errors.MediaError`
        — persistently, until a rewrite of the sector heals it
        (:meth:`heal_range`, called by the disk's write path).
        """
        if after_reads < 0:
            raise ValueError("after_reads cannot be negative")
        self._media_errors[sector] = after_reads

    def heal_range(self, start: int, n_sectors: int) -> None:
        """A rewrite remaps latent errors in ``[start, start+n)``.

        Only *scheduled* media errors heal on rewrite; sectors marked
        with :meth:`mark_bad` stay bad until explicitly healed (the
        legacy hard-failure semantics the stable-storage tests rely on).
        """
        for sector in range(start, start + n_sectors):
            self._media_errors.pop(sector, None)

    def pick_targets(
        self, population: Sequence[int], count: int, *, salt: int = 0
    ) -> List[int]:
        """A seed-deterministic sample of fault-injection targets.

        Derives a private RNG from ``(seed, salt)`` so campaigns and
        tests can pick corruption/error sites reproducibly without
        disturbing :attr:`_rng` (whose draw sequence the torn-write
        schedule depends on).
        """
        if count < 0:
            raise ValueError(f"cannot pick {count} fault targets")
        if count >= len(population):
            return sorted(population)
        rng = random.Random((self.seed + 1) * _SCATTER + salt)
        return sorted(rng.sample(list(population), count))

    # ------------------------------------------------------ queries

    def note_write(
        self, n_sectors: int, *, disk_id: str = "?", start: int = -1
    ) -> Optional[int]:
        """Called by the disk before each write of ``n_sectors``.

        Returns None for a normal write, or the number of sectors that
        actually reach the platter (possibly 0) if this write crashes
        the disk.  A shared :attr:`monitor` is consulted first, then the
        per-disk crash-after-writes schedule.
        """
        if self.monitor is None and self._crash_after_writes is None:
            # Fault-free fast path: a healthy unmonitored disk pays two
            # attribute reads per write, nothing else.
            return 0 if self.crashed else None
        if self.crashed:
            return 0
        if self.monitor is not None:
            note_before = self.last_crash_note
            survivors = self.monitor.on_write(self, disk_id, start, n_sectors)
            if survivors is not None:
                self.crashed = True
                if self.last_crash_note is note_before:
                    # The monitor crashed us without leaving its own
                    # repro hint — without this, the DiskCrashedError
                    # would append a *stale* note from an earlier
                    # scheduled crash instead.
                    self.last_crash_note = (
                        f"monitor crash during write to {disk_id} at sector "
                        f"{start} (faults seed={self.seed})"
                    )
                # A buggy monitor returning a negative survivor count
                # must not drive sector accounting negative downstream.
                return min(max(survivors, 0), n_sectors)
        if self._crash_after_writes is None:
            return None
        self._writes_seen += 1
        if self._writes_seen < self._crash_after_writes:
            return None
        self.crashed = True
        self._crash_after_writes = None
        self.last_crash_note = (
            f"faults seed={self.seed}, scheduled crash at write "
            f"#{self._writes_seen} of this disk"
        )
        survivors = int(n_sectors * self.torn_write_fraction * self._rng.random())
        return min(survivors, n_sectors)

    @property
    def writes_seen(self) -> int:
        """Writes counted toward the scheduled crash point so far."""
        return self._writes_seen

    def is_bad(self, sector: int) -> bool:
        return sector in self.bad_sectors

    def media_failing(self, sector: int) -> bool:
        """Consulted once per read attempt of ``sector``.

        Counts the latent-error onset schedule down; returns True once
        the sector's grace reads are exhausted.  A failing sector stays
        failing across re-reads until a rewrite heals it.
        """
        remaining = self._media_errors.get(sector)
        if remaining is None:
            return False
        if remaining > 0:
            self._media_errors[sector] = remaining - 1
            return False
        return True

    @property
    def latent_media_errors(self) -> int:
        """Sectors with a scheduled (or active) latent error."""
        return len(self._media_errors)
