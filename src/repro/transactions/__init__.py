"""The RHODOS transaction service.

Entirely optional and event-driven (paper sections 2.2, 6): a
per-machine **transaction agent** comes into existence on the first
``tbegin`` and ceases to exist when the last transaction on that
machine completes or aborts.  File operations under transaction
semantics use their own verbs — tbegin, tcreate, topen, tdelete,
tread, tpread, twrite, tpwrite, tget_attribute, tlseek, tclose, tend,
tabort — so there is "no ambiguity as to whether a particular file
operation belongs to the basic file service or the transaction
service".

Concurrency control is strict two-phase locking with three lock modes
(read-only, Iread, Iwrite; Table 1) at three optional granularities
(record / page / file), one lock table per granularity per file
server.  Deadlock is resolved by timeouts: a lock is invulnerable for
LT, renewable while uncontended up to N times, then broken and its
holder aborted.  Recovery uses an intentions list whose tentative
changes are made permanent by write-ahead logging when the file's data
blocks are contiguous (preserving contiguity) and by the shadow-page
technique when they are not; an intention flag on stable storage makes
commit atomic across crashes.
"""

from repro.transactions.locks import DataItem, LockMode, locks_compatible
from repro.transactions.lock_manager import AcquireResult, LockManager, TimeoutPolicy
from repro.transactions.transaction import Transaction, TransactionPhase, TransactionStatus
from repro.transactions.intentions import IntentionRecord, IntentionFlag, Technique
from repro.transactions.coordinator import TransactionCoordinator
from repro.transactions.agent import TransactionAgent, TransactionAgentHost

__all__ = [
    "DataItem",
    "LockMode",
    "locks_compatible",
    "AcquireResult",
    "LockManager",
    "TimeoutPolicy",
    "Transaction",
    "TransactionPhase",
    "TransactionStatus",
    "IntentionRecord",
    "IntentionFlag",
    "Technique",
    "TransactionCoordinator",
    "TransactionAgent",
    "TransactionAgentHost",
]
