"""The intentions list: records, flags, and their stable-storage codec.

Paper section 6.6–6.7: recovery uses the *intentions list* approach
(chosen over file versions for its lower disk cost).  Each record in
the list maintains the descriptors of the data item and the tentative
data item; an **intention flag** records the transaction's status —
tentative, commit or abort — and "keeps necessary information to allow
a file server to take a decision on how the changes in the intentions
list will be made permanent, i.e., by shadow page technique or wal
approach".

The after-image bytes themselves live in the tentative item's disk
extent; the records (metadata only) and the flag live in stable
storage, written *before* the flag flips to commit — that flip is the
commit point, and replaying records after a crash is idempotent.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import DiskError
from repro.common.ids import SystemName
from repro.disk_service.addresses import Extent
from repro.file_service.attributes import LockingLevel
from repro.simdisk.stable import StableStore
from repro.transactions.transaction import TransactionStatus


class Technique(enum.Enum):
    """How a tentative change is made permanent (paper section 6.7)."""

    WAL = "wal"  # write-ahead log: in-place update, contiguity preserved
    SHADOW = "shadow"  # descriptor swap: cheap commit, contiguity destroyed


@dataclass(frozen=True, slots=True)
class IntentionRecord:
    """One entry of a transaction's intentions list.

    Attributes:
        tid: owning transaction descriptor.
        sequence: application order within the transaction.
        name: the file the change applies to.
        level: locking granularity the item was locked at.
        lo: byte offset where the change begins.
        length: number of bytes of after-image data (stored in
            ``extent`` on the volume's main disk).
        extent: disk space holding the after-image (the tentative data
            item's descriptor).
        technique: WAL or SHADOW.
        block_index: for SHADOW, which logical block's descriptor to
            swap to ``extent.start``.
    """

    tid: int
    sequence: int
    name: SystemName
    level: LockingLevel
    lo: int
    length: int
    extent: Extent
    technique: Technique
    block_index: int = -1

    # ------------------------------------------------------- codec

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "tid": self.tid,
                "seq": self.sequence,
                "volume": self.name.volume_id,
                "fit": self.name.fit_address,
                "generation": self.name.generation,
                "level": self.level.name,
                "lo": self.lo,
                "length": self.length,
                "extent_start": self.extent.start,
                "extent_length": self.extent.length,
                "technique": self.technique.value,
                "block_index": self.block_index,
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "IntentionRecord":
        raw = json.loads(blob.decode("utf-8"))
        return cls(
            tid=raw["tid"],
            sequence=raw["seq"],
            name=SystemName(raw["volume"], raw["fit"], raw["generation"]),
            level=LockingLevel[raw["level"]],
            lo=raw["lo"],
            length=raw["length"],
            extent=Extent(raw["extent_start"], raw["extent_length"]),
            technique=Technique(raw["technique"]),
            block_index=raw["block_index"],
        )


class IntentionFlag:
    """The per-transaction status flag on one volume's stable storage."""

    def __init__(self, stable: StableStore, tid: int) -> None:
        self.stable = stable
        self.key = f"txnflag:{tid}"

    def set(self, status: TransactionStatus) -> None:
        self.stable.put(self.key, status.value.encode("ascii"))

    def get(self) -> Optional[TransactionStatus]:
        try:
            return TransactionStatus(self.stable.get(self.key).decode("ascii"))
        except KeyError:
            return None

    def clear(self) -> None:
        self.stable.delete(self.key)


class IntentionStore:
    """Intention records of one volume, persisted in its stable store.

    Implements the paper's get-intention / set-intention /
    remove-intention operations.
    """

    def __init__(self, stable: StableStore) -> None:
        self.stable = stable

    @staticmethod
    def _key(tid: int, sequence: int) -> str:
        return f"intent:{tid}:{sequence}"

    def set_intention(self, record: IntentionRecord) -> None:
        self.stable.put(self._key(record.tid, record.sequence), record.to_bytes())

    def get_intentions(self, tid: int) -> List[IntentionRecord]:
        """All durable records of one transaction, in sequence order."""
        prefix = f"intent:{tid}:"
        records = []
        for key in self.stable.keys():
            if key.startswith(prefix):
                records.append(IntentionRecord.from_bytes(self.stable.get(key)))
        records.sort(key=lambda record: record.sequence)
        return records

    def remove_intentions(self, tid: int) -> int:
        prefix = f"intent:{tid}:"
        removed = 0
        for key in list(self.stable.keys()):
            if key.startswith(prefix):
                self.stable.delete(key)
                removed += 1
        return removed

    def transactions_with_intentions(self) -> List[int]:
        tids = set()
        for key in self.stable.keys():
            if key.startswith("intent:"):
                tids.add(int(key.split(":")[1]))
        return sorted(tids)

    def flagged_transactions(self) -> List[int]:
        tids = set()
        for key in self.stable.keys():
            if key.startswith("txnflag:"):
                tids.add(int(key.split(":")[1]))
        return sorted(tids)

    # ------------------------------------------- multi-volume commit

    def set_decision(self, tid: int, volumes: List[int]) -> None:
        """Record the commit decision of a multi-volume transaction.

        Written on the coordinator volume (the lowest involved volume
        id) *before* the per-volume intention flags flip.  A crash
        between the flag flips then leaves the decision as the single
        source of truth: a recovering volume that finds records but no
        flag consults every registered volume for the decision before
        presuming abort — which is what makes a two-volume commit
        all-or-nothing across volumes, not just within one.
        """
        payload = json.dumps({"tid": tid, "volumes": sorted(volumes)})
        self.stable.put(f"txndecision:{tid}", payload.encode("utf-8"))

    def get_decision(self, tid: int) -> Optional[List[int]]:
        """Volumes of a committed multi-volume transaction, or None.

        A decision whose careful write never completed (both copies
        unreadable) reads as None: the transaction is presumed aborted.
        """
        try:
            blob = self.stable.get(f"txndecision:{tid}")
        except (KeyError, DiskError):
            return None
        return json.loads(blob.decode("utf-8"))["volumes"]

    def remove_decision(self, tid: int) -> None:
        self.stable.delete(f"txndecision:{tid}")

    def decided_transactions(self) -> List[int]:
        return sorted(
            int(key.split(":")[1])
            for key in self.stable.keys()
            if key.startswith("txndecision:")
        )
