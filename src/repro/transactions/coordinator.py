"""The transaction coordinator: commit, abort, crash recovery.

This is the file-server side of the transaction service: it owns one
lock manager and one intention store per volume, runs the two-phase
commit discipline of sections 6.6–6.7 against the disk and file
services, and replays or discards intentions after a crash.

Commit of a transaction with tentative items:

1. **Prepare** — every tentative item's after-image is written to a
   freshly allocated disk extent (the durable *tentative data item*),
   and an intention record naming both descriptors goes to stable
   storage, tagged with the technique that will make it permanent:
   **WAL** when the file's data blocks are contiguous (in-place update
   preserves the contiguity the allocator worked for) or **shadow
   page** when they are not (descriptor swap, cheaper commit I/O, but
   it "destroys the contiguity of data blocks").  Record-level items
   always use WAL ("there is no justification to tie up a complete
   block or fragment").
2. **Commit point** — the intention flag flips to ``commit`` on stable
   storage.  A crash before this point aborts the transaction; after
   it, recovery redoes the intentions (both techniques are idempotent).
3. **Apply** — WAL records are written in place through the file
   service; shadow records swap the block descriptor in the FIT to the
   tentative extent and free the old block.
4. **Cleanup** — records and flag are removed, WAL extents freed,
   locks released (the unlock phase of 2PL ends here).
"""

from __future__ import annotations

from typing import Dict, List, Literal, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import (
    BadAddressError,
    DiskError,
    InvalidTransactionStateError,
    TransactionError,
)
from repro.common.ids import SystemName, monotonic_id_factory
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER, Tracer
from repro.common.units import BLOCK_SIZE, FRAGMENTS_PER_BLOCK, fragments_for_bytes
from repro.disk_service.addresses import Extent
from repro.file_service.attributes import LockingLevel
from repro.file_service.server import FileServer
from repro.transactions.intentions import (
    IntentionFlag,
    IntentionRecord,
    IntentionStore,
    Technique,
)
from repro.transactions.lock_manager import LockManager, TimeoutPolicy
from repro.transactions.transaction import (
    TentativeItem,
    Transaction,
    TransactionPhase,
    TransactionStatus,
)

TechniqueChoice = Literal["auto", "wal", "shadow"]


class _VolumeBinding:
    """Everything the coordinator needs about one volume."""

    __slots__ = ("file_server", "locks", "intents")

    def __init__(self, file_server: FileServer, locks: LockManager) -> None:
        self.file_server = file_server
        self.locks = locks
        self.intents = IntentionStore(file_server.disk.stable)


class TransactionCoordinator:
    """System-wide transaction machinery over a set of volumes.

    Args:
        clock, metrics: the shared simulation context.
        policy: LT/N timeout policy applied by every volume's lock
            manager (experiments E8/A2 sweep it).
        technique: ``"auto"`` (the paper's contiguity rule), or force
            ``"wal"`` / ``"shadow"`` everywhere (experiment E9).
        cross_level: enable the paper's deferred relaxation — conflict
            detection across locking granularities (section 6.1).
    """

    def __init__(
        self,
        clock: SimClock,
        metrics: Metrics,
        *,
        policy: Optional[TimeoutPolicy] = None,
        technique: TechniqueChoice = "auto",
        cross_level: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.policy = policy or TimeoutPolicy()
        self.technique: TechniqueChoice = technique
        self.cross_level = cross_level
        self._volumes: Dict[int, _VolumeBinding] = {}
        self._next_tid = monotonic_id_factory()
        self._live: Dict[int, Transaction] = {}
        #: CHAOS-TEST-ONLY.  When True, recovery deliberately skips
        #: replaying committed intentions (and their cleanup ordering),
        #: leaving whatever partial state the crash produced.  Exists so
        #: the crash sweep can prove it *detects* a broken recovery
        #: path; never set this outside tests.
        self.unsafe_skip_redo = False

    # ------------------------------------------------------- wiring

    def register_volume(self, file_server: FileServer) -> None:
        if file_server.volume_id in self._volumes:
            raise TransactionError(f"volume {file_server.volume_id} already registered")
        locks = LockManager(
            self.clock,
            self.metrics,
            self.policy,
            name=f"lock_manager.{file_server.volume_id}",
            cross_level=self.cross_level,
        )
        self._volumes[file_server.volume_id] = _VolumeBinding(file_server, locks)

    def lock_manager(self, volume_id: int) -> LockManager:
        return self._binding(volume_id).locks

    def file_server(self, volume_id: int) -> FileServer:
        return self._binding(volume_id).file_server

    def volume_ids(self) -> List[int]:
        return sorted(self._volumes)

    # ----------------------------------------------------- lifecycle

    def begin(
        self,
        machine_id: str,
        process_id: int = 0,
        *,
        parent: Optional[Transaction] = None,
    ) -> Transaction:
        if parent is not None and not parent.is_live:
            raise InvalidTransactionStateError(
                f"cannot nest under transaction {parent.tid}: it is "
                f"{parent.status.value}"
            )
        transaction = Transaction(
            tid=self._next_tid(),
            machine_id=machine_id,
            process_id=process_id,
            started_at_us=self.clock.now_us,
            parent=parent,
        )
        if parent is not None:
            parent.children.append(transaction)
            self.metrics.add("transactions.nested_begun")
        self._live[transaction.tid] = transaction
        self.metrics.add("transactions.begun")
        return transaction

    def live_count(self) -> int:
        return sum(1 for txn in self._live.values() if txn.is_live)

    def forget(self, transaction: Transaction) -> None:
        self._live.pop(transaction.tid, None)

    # -------------------------------------------------------- commit

    def commit(self, transaction: Transaction) -> None:
        """Make the transaction's tentative changes permanent (tend).

        A *nested* transaction's commit does not touch the disk: its
        tentative items, tentative sizes, created/deleted file lists
        and locks merge into the parent, whose own (eventual) top-level
        commit makes everything durable at once.
        """
        with self.tracer.span(
            "transactions", "commit", tid=transaction.tid
        ), self.metrics.timer("transactions.commit_us", self.clock):
            self._do_commit(transaction)

    def _do_commit(self, transaction: Transaction) -> None:
        if transaction.status is not TransactionStatus.TENTATIVE:
            raise InvalidTransactionStateError(
                f"transaction {transaction.tid} is {transaction.status.value}, "
                f"cannot commit"
            )
        if any(child.is_live for child in transaction.children):
            raise InvalidTransactionStateError(
                f"transaction {transaction.tid} still has live nested "
                f"children; finish them first"
            )
        if transaction.parent is not None:
            self._commit_child(transaction)
            return
        transaction.phase = TransactionPhase.UNLOCKING
        items = transaction.all_tentative_items()
        records: List[IntentionRecord] = []
        involved: set[int] = set()
        for entry in items:
            record = self._prepare_item(transaction, entry)
            records.append(record)
            involved.add(record.name.volume_id)
        for _, name in transaction.deleted_files:
            involved.add(name.volume_id)
        if records:
            # Free-space checkpoints so recovery's bitmap knows about the
            # tentative extents allocated above.
            for volume_id in involved:
                self._binding(volume_id).file_server.disk.checkpoint_free_space()
            if len(involved) > 1:
                # Multi-volume commit point: one decision record on the
                # coordinator volume (lowest id) *before* any per-volume
                # flag flips.  A crash between the flips is then still
                # atomic: recovery on a flag-less volume finds the
                # decision and redoes instead of presuming abort.
                self._binding(min(involved)).intents.set_decision(
                    transaction.tid, sorted(involved)
                )
            # The commit point: flags flip to 'commit' on stable storage.
            for volume_id in involved:
                IntentionFlag(
                    self._binding(volume_id).file_server.disk.stable,
                    transaction.tid,
                ).set(TransactionStatus.COMMITTED)
        transaction.status = TransactionStatus.COMMITTED
        for record in records:
            self._apply(record)
        self._apply_sizes(transaction)
        for _, name in transaction.deleted_files:
            self._binding(name.volume_id).file_server.delete(name)
        self._cleanup_committed(transaction.tid, records, involved)
        if records and len(involved) > 1:
            # Only after every volume's records and flags are gone: a
            # stale decision is harmless (nothing left to redo), but
            # removing it early would let a crash turn a redo into a
            # presumed abort on a volume that still holds records.
            self._binding(min(involved)).intents.remove_decision(transaction.tid)
        self._release_locks(transaction)
        self.forget(transaction)
        self.metrics.add("transactions.committed")

    def _commit_child(self, child: Transaction) -> None:
        """Merge a committing nested transaction into its parent."""
        parent = child.parent
        assert parent is not None
        child.phase = TransactionPhase.UNLOCKING
        child.status = TransactionStatus.COMMITTED
        # Tentative items: the child's data already layers on top of the
        # parent's (reads composed the ancestry), so later sequences win.
        for entry in child.all_tentative_items():
            entry.sequence = parent.next_sequence()
            if entry.item.level is LockingLevel.RECORD:
                parent.tentative_records.append(entry)
            else:
                parent.tentative_map[entry.item] = entry
        for name, size in child.tentative_sizes.items():
            parent.tentative_sizes[name] = max(
                parent.tentative_sizes.get(name, 0), size
            )
        parent.created_files.extend(child.created_files)
        parent.deleted_files.extend(child.deleted_files)
        parent.open_files.update(child.open_files)
        for binding in self._volumes.values():
            binding.locks.transfer_locks(child, parent)
        parent.children.remove(child)
        self.forget(child)
        self.metrics.add("transactions.nested_committed")

    # --------------------------------------------------------- abort

    def abort(self, transaction: Transaction, *, reason: str = "tabort") -> None:
        """Discard the transaction's tentative changes (tabort).

        Aborting a parent cascades to its live nested children; aborting
        a child discards only the child's own work.
        """
        with self.tracer.span(
            "transactions", "abort", tid=transaction.tid, reason=reason
        ), self.metrics.timer("transactions.abort_us", self.clock):
            self._do_abort(transaction, reason=reason)

    def _do_abort(self, transaction: Transaction, *, reason: str) -> None:
        if transaction.status is TransactionStatus.COMMITTED:
            raise InvalidTransactionStateError(
                f"transaction {transaction.tid} already committed"
            )
        for child in list(transaction.children):
            if child.is_live:
                self.abort(child, reason=f"parent-{reason}")
        if transaction.parent is not None:
            transaction.parent.children = [
                sibling
                for sibling in transaction.parent.children
                if sibling.tid != transaction.tid
            ]
        transaction.phase = TransactionPhase.UNLOCKING
        if transaction.status is TransactionStatus.TENTATIVE:
            transaction.status = TransactionStatus.ABORTED
            transaction.abort_reason = reason
        for entry in transaction.all_tentative_items():
            if entry.extent is not None:
                self._safe_free(entry.volume_id, entry.extent)
                entry.extent = None
        for _, name in transaction.created_files:
            binding = self._binding(name.volume_id)
            if binding.file_server.exists(name):
                binding.file_server.delete(name)
        self._release_locks(transaction)
        self.forget(transaction)
        self.metrics.add("transactions.aborted")

    # ------------------------------------------------------ timeouts

    def expire_locks(self, now_us: int) -> List[Transaction]:
        """Run the LT/N timeout policy on every volume; returns victims.

        Victims' locks are broken and their status set to ABORTED; the
        transaction agent surfaces the abort (and cleans up) on the
        victim's next operation.
        """
        victims: List[Transaction] = []
        for binding in self._volumes.values():
            victims.extend(binding.locks.expire(now_us))
        return victims

    def next_expiry_us(self) -> Optional[int]:
        expiries = [
            expiry
            for binding in self._volumes.values()
            if (expiry := binding.locks.next_expiry_us()) is not None
        ]
        return min(expiries) if expiries else None

    # ------------------------------------------------------ recovery

    def recover_volume(self, volume_id: int) -> Tuple[int, int]:
        """Crash recovery for one volume; returns (redone, discarded).

        Transactions whose intention flag says ``commit`` are redone
        (their after-images are on disk, the operations idempotent);
        anything else — tentative flags, orphan records — is discarded
        and its tentative extents freed.  The whole pass is one traced
        span and one ``transactions.recovery_us`` timing observation:
        recovery time is the half of the availability story that crash
        injection alone does not measure.
        """
        with self.tracer.span(
            "transactions", "recover_volume", volume=volume_id
        ) as span, self.metrics.timer("transactions.recovery_us", self.clock):
            redone, discarded = self._recover_volume(volume_id)
            span.annotate("redone", redone)
            span.annotate("discarded", discarded)
        return redone, discarded

    def _recover_volume(self, volume_id: int) -> Tuple[int, int]:
        binding = self._binding(volume_id)
        # Stable storage first: its recovery drops records that never
        # completed their first careful write (both copies dead), which
        # the file/disk recovery below must not trip over when it reads
        # the bitmap checkpoint.
        binding.file_server.disk.stable.recover()
        binding.file_server.recover()
        redone = 0
        discarded = 0
        flagged = set(binding.intents.flagged_transactions())
        with_records = set(binding.intents.transactions_with_intentions())
        for tid in sorted(flagged | with_records):
            flag = IntentionFlag(binding.file_server.disk.stable, tid)
            status = flag.get()
            records = binding.intents.get_intentions(tid)
            committed = status is TransactionStatus.COMMITTED
            if not committed and status is None:
                # No flag on this volume — but a multi-volume commit may
                # have crashed between its flag flips.  The decision
                # record on the coordinator volume is authoritative.
                decision = self._find_decision(tid)
                committed = decision is not None and volume_id in decision
            if committed and self.unsafe_skip_redo:
                # Deliberately broken path (see __init__): drop the redo
                # information without replaying it.  The crash sweep
                # must flag the partial state this leaves behind.
                binding.intents.remove_intentions(tid)
                flag.clear()
                redone += 1
            elif committed:
                for record in records:
                    self._apply(record)
                self._cleanup_committed(tid, records, {volume_id})
                redone += 1
            else:
                for record in records:
                    self._safe_free(volume_id, record.extent)
                binding.intents.remove_intentions(tid)
                flag.clear()
                discarded += 1
        self._collect_stale_decisions()
        binding.file_server.disk.checkpoint_free_space()
        self.metrics.add("transactions.recoveries")
        return redone, discarded

    def _find_decision(self, tid: int) -> Optional[List[int]]:
        """The commit decision for ``tid``, wherever it was recorded."""
        for other in self._volumes.values():
            decision = other.intents.get_decision(tid)
            if decision is not None:
                return decision
        return None

    def _collect_stale_decisions(self) -> None:
        """Drop decision records whose transactions are fully cleaned up.

        A decision may only disappear once no registered volume holds
        records or a flag for the transaction; until then it must stay,
        because it is what turns a flag-less recovery into a redo.
        """
        for other in self._volumes.values():
            for tid in other.intents.decided_transactions():
                try:
                    live = any(
                        candidate.intents.get_intentions(tid)
                        or IntentionFlag(
                            candidate.file_server.disk.stable, tid
                        ).get()
                        is not None
                        for candidate in self._volumes.values()
                    )
                except DiskError:
                    # A peer volume is offline: keep the decision; its
                    # recovery may still need it.
                    continue
                if not live:
                    other.intents.remove_decision(tid)

    # ------------------------------------------------------ internal

    def _binding(self, volume_id: int) -> _VolumeBinding:
        binding = self._volumes.get(volume_id)
        if binding is None:
            raise TransactionError(f"volume {volume_id} is not registered")
        return binding

    def _prepare_item(
        self, transaction: Transaction, entry: TentativeItem
    ) -> IntentionRecord:
        """Durable tentative data item + intention record for one entry."""
        name = entry.item.name
        binding = self._binding(name.volume_id)
        level = entry.item.level
        size = transaction.tentative_sizes.get(name)
        if level is LockingLevel.RECORD:
            lo = entry.item.lo
            length = len(entry.data)
            extent = binding.file_server.disk.allocate(
                fragments_for_bytes(length), scratch=True
            )
            technique = Technique.WAL
            block_index = -1
        elif level is LockingLevel.PAGE:
            lo = entry.item.lo
            block_index = lo // BLOCK_SIZE
            length = min(BLOCK_SIZE, (size if size is not None else lo + BLOCK_SIZE) - lo)
            extent = binding.file_server.disk.allocate_block(1, scratch=True)
            technique = self._choose_technique(binding, name, block_index)
        else:  # FILE level: the whole file, applied in place.
            lo = 0
            length = len(entry.data)
            n_blocks = max(1, -(-length // BLOCK_SIZE))
            extent = self._allocate_blocks(binding, n_blocks)
            technique = Technique.WAL
            block_index = -1
        padded = entry.data[:length] + bytes(extent.byte_size - min(length, len(entry.data)))
        if len(entry.data) < length:
            # Page buffers are always full blocks, so this only happens
            # for file-level items whose data already equals the size.
            padded = entry.data + bytes(extent.byte_size - len(entry.data))
        binding.file_server.disk.put(extent, padded[: extent.byte_size])
        entry.extent = extent
        entry.volume_id = name.volume_id
        record = IntentionRecord(
            tid=transaction.tid,
            sequence=entry.sequence,
            name=name,
            level=level,
            lo=lo,
            length=length,
            extent=extent,
            technique=technique,
            block_index=block_index,
        )
        binding.intents.set_intention(record)
        self.metrics.add("transactions.intentions_written")
        return record

    def _choose_technique(
        self, binding: _VolumeBinding, name: SystemName, block_index: int
    ) -> Technique:
        """The paper's rule: WAL when contiguous, shadow when not."""
        if self.technique == "wal":
            return Technique.WAL
        if self.technique == "shadow":
            desc = binding.file_server.block_descriptor(name, block_index)
            return Technique.SHADOW if desc is not None else Technique.WAL
        desc = binding.file_server.block_descriptor(name, block_index)
        if desc is None:
            return Technique.WAL  # extension of the file: nothing to shadow
        if block_index == 0 and desc.address == name.fit_address + 1:
            # The first data block sits right after the FIT — the very
            # adjacency dynamic FIT creation bought; never shadow it away.
            return Technique.WAL
        if desc.count > 1:
            return Technique.WAL
        if block_index > 0:
            prev = binding.file_server.block_descriptor(name, block_index - 1)
            if (
                prev is not None
                and prev.address + FRAGMENTS_PER_BLOCK == desc.address
            ):
                return Technique.WAL
        if binding.file_server.load_fit(name).mapped_blocks() <= 1:
            # A lone block has nothing to be contiguous with; in-place
            # update keeps it where the allocator put it.
            return Technique.WAL
        return Technique.SHADOW

    def _allocate_blocks(self, binding: _VolumeBinding, n_blocks: int) -> Extent:
        try:
            return binding.file_server.disk.allocate_block(n_blocks, scratch=True)
        except DiskError:
            # Large file-level items may not fit contiguously; the
            # after-image is scratch data, a gathered extent would do,
            # but records carry one extent — fall back block-by-block
            # is not possible, so surface the condition honestly.
            raise

    def _apply(self, record: IntentionRecord) -> None:
        """Make one intention permanent (idempotent for crash redo)."""
        binding = self._binding(record.name.volume_id)
        data = binding.file_server.disk.get(record.extent)[: record.length]
        if record.technique is Technique.WAL:
            binding.file_server.write(record.name, record.lo, data)
            self.metrics.add("transactions.wal_applies")
        else:
            old = binding.file_server.replace_block_descriptor(
                record.name, record.block_index, record.extent.start
            )
            if record.length > 0:
                binding.file_server.set_file_size_at_least(
                    record.name, record.lo + record.length
                )
            if old is not None and old != record.extent.start:
                self._safe_free(
                    record.name.volume_id,
                    Extent.for_block_run(old, 1),
                )
            self.metrics.add("transactions.shadow_applies")

    def _apply_sizes(self, transaction: Transaction) -> None:
        for name, size in transaction.tentative_sizes.items():
            self._binding(name.volume_id).file_server.set_file_size_at_least(
                name, size
            )

    def _cleanup_committed(
        self, tid: int, records: List[IntentionRecord], involved: set[int]
    ) -> None:
        # WAL discipline: the applied effects (including FIT attribute
        # updates sitting dirty in the server cache) must be durable
        # BEFORE the redo information is discarded — flush first, then
        # drop records and flags.  A crash inside the flush re-runs the
        # idempotent redo; a crash after it needs nothing.
        for volume_id in involved:
            self._binding(volume_id).file_server.flush()
        for record in records:
            if record.technique is Technique.WAL:
                self._safe_free(record.name.volume_id, record.extent)
            self.metrics.add("transactions.intentions_removed")
        for volume_id in involved:
            binding = self._binding(volume_id)
            binding.intents.remove_intentions(tid)
            IntentionFlag(binding.file_server.disk.stable, tid).clear()

    def _release_locks(self, transaction: Transaction) -> None:
        for binding in self._volumes.values():
            binding.locks.release_all(transaction)

    def _safe_free(self, volume_id: int, extent: Extent) -> None:
        """Free an extent, tolerating already-free state (crash redo)."""
        try:
            self._binding(volume_id).file_server.disk.free(extent)
        except BadAddressError:
            pass
