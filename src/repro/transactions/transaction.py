"""Transaction state: phases, status, tentative data items.

Paper section 6.2: every transaction proceeds through two phases —
**locking** (growing: new locks acquired, changes recorded in isolated
*tentative data items* invisible to other transactions) and
**unlocking** (shrinking: entered at commit/abort; locks are only
released after the changes are made permanent).  Section 6.7: a
tentative data item is represented by a page or pages in page/file
mode and by fragments or blocks in record mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.ids import SystemName
from repro.disk_service.addresses import Extent
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.transactions.locks import DataItem


class TransactionPhase(enum.Enum):
    """The two phases of two-phase locking."""

    LOCKING = "locking"  # growing: may acquire, may not release
    UNLOCKING = "unlocking"  # shrinking: may release, may not acquire


class TransactionStatus(enum.Enum):
    """The intention flag's states (paper section 6.7)."""

    TENTATIVE = "tentative"
    COMMITTED = "commit"
    ABORTED = "abort"


@dataclass
class TentativeItem:
    """One isolated copy of a data item, private to its transaction.

    ``data`` is the item's tentative content for ``[item.lo, item.hi)``
    (for file-level items, ``hi`` is clamped to the tentative file
    size).  ``extent`` is the disk space holding the after-image once
    the item has been prepared for commit; ``volume_id`` says which
    disk server allocated it.
    """

    item: DataItem
    data: bytes
    sequence: int
    extent: Optional[Extent] = None
    volume_id: int = -1

    @property
    def lo(self) -> int:
        return self.item.lo


@dataclass
class TxnOpenFile:
    """Per-descriptor state inside one transaction."""

    name: SystemName
    position: int = 0
    level: LockingLevel = LockingLevel.PAGE


@dataclass
class Transaction:
    """Everything the service knows about one transaction.

    Transactions may be *nested* (the paper acknowledges nested
    transactions in section 6.4): a child shares its ancestors' locks,
    sees their tentative data, and on commit merges its own tentative
    items and locks into its parent — only the top-level commit touches
    the disk.  A child abort discards only the child's work.
    """

    tid: int
    machine_id: str
    process_id: int
    phase: TransactionPhase = TransactionPhase.LOCKING
    status: TransactionStatus = TransactionStatus.TENTATIVE
    abort_reason: str = ""
    started_at_us: int = 0
    parent: Optional["Transaction"] = None
    children: List["Transaction"] = field(default_factory=list)
    open_files: Dict[int, TxnOpenFile] = field(default_factory=dict)
    #: Page/file-mode tentative items, merged per data item.
    tentative_map: Dict[DataItem, TentativeItem] = field(default_factory=dict)
    #: Record-mode tentative items, in write order (later overlays earlier).
    tentative_records: List[TentativeItem] = field(default_factory=list)
    #: Tentative file sizes (files whose size this transaction changes).
    tentative_sizes: Dict[SystemName, int] = field(default_factory=dict)
    #: Files created inside the transaction (deleted again on abort).
    created_files: List[Tuple[AttributedName, SystemName]] = field(
        default_factory=list
    )
    #: Files tdelete()d inside the transaction (removed at commit).
    deleted_files: List[Tuple[AttributedName, SystemName]] = field(
        default_factory=list
    )
    _sequence: int = 0

    # ------------------------------------------------------- queries

    @property
    def is_live(self) -> bool:
        return self.status is TransactionStatus.TENTATIVE

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    def ancestry(self) -> List["Transaction"]:
        """Root-first chain of ancestors ending with this transaction."""
        chain: List[Transaction] = []
        node: Optional[Transaction] = self
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return chain

    def is_ancestor_or_self(self, other: "Transaction") -> bool:
        """True if ``other`` is this transaction or one of its ancestors."""
        node: Optional[Transaction] = self
        while node is not None:
            if node.tid == other.tid:
                return True
            node = node.parent
        return False

    def next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def all_tentative_items(self) -> List[TentativeItem]:
        """Every tentative item in application (sequence) order."""
        items = list(self.tentative_map.values()) + list(self.tentative_records)
        items.sort(key=lambda entry: entry.sequence)
        return items

    def tentative_for_file(self, name: SystemName) -> List[TentativeItem]:
        return [
            entry for entry in self.all_tentative_items() if entry.item.name == name
        ]

    def overlay(self, name: SystemName, offset: int, data: bytes) -> bytes:
        """Apply this transaction's tentative writes on top of ``data``.

        ``data`` is the committed content of ``[offset, offset+len)``;
        the result is what this transaction must observe there
        (read-your-writes isolation).
        """
        if not self.tentative_map and not self.tentative_records:
            return data
        buffer = bytearray(data)
        end = offset + len(buffer)
        for entry in self.tentative_for_file(name):
            lo = max(entry.item.lo, offset)
            hi = min(entry.item.lo + len(entry.data), end)
            if lo >= hi:
                continue
            source_lo = lo - entry.item.lo
            buffer[lo - offset : hi - offset] = entry.data[
                source_lo : source_lo + (hi - lo)
            ]
        return bytes(buffer)
