"""The lock tables and lock manager: Table 1, wait queues, timeouts.

Paper section 6.5: "A lock table is a list of records: process
identifier, transaction descriptor, phase of the transaction, type of
lock, lock granted or not, retry count, descriptor of data item, and
references to the same transaction and same data items. ... For each
level of locking, a file server maintains a separate lock table" —
which "significantly reduces the number of records managed by each
lock table".  Records waiting on the same data item form a FIFO queue
so the first waiter acquires the lock as soon as the holder commits or
aborts.

Section 6.4 (deadlock): each granted lock is invulnerable for a
period **LT**.  At each expiry, if another transaction is competing
for the item the lock is broken and its holder aborted; if nobody is
competing it is renewed, up to **N** renewals, after which the holder
is aborted regardless ("it is suspected that the transaction is
deadlocked").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import SerializabilityError
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.file_service.attributes import LockingLevel
from repro.transactions.locks import DataItem, LockMode, locks_compatible
from repro.transactions.transaction import (
    Transaction,
    TransactionPhase,
    TransactionStatus,
)

#: Mode ordering for upgrades: a held mode covers any weaker request.
_STRENGTH = {LockMode.RO: 0, LockMode.IR: 1, LockMode.IW: 2}


@dataclass(frozen=True, slots=True)
class TimeoutPolicy:
    """The LT / N knobs of the paper's timeout deadlock resolution.

    "Computing a value for the timeout period is not a simple matter"
    (section 6.4) — which is exactly why these are parameters, swept by
    experiments E8 and A2.
    """

    lt_us: int = 200_000
    max_renewals: int = 3

    def __post_init__(self) -> None:
        if self.lt_us <= 0 or self.max_renewals < 1:
            raise ValueError("LT must be positive and N >= 1")


class AcquireResult(enum.Enum):
    GRANTED = "granted"
    WAITING = "waiting"


@dataclass
class LockRecord:
    """One row of a lock table (paper section 6.5's field list)."""

    process_id: int
    transaction: Transaction
    phase: TransactionPhase
    mode: LockMode
    granted: bool
    retry_count: int  # renewals consumed (the paper's retry count)
    item: DataItem
    enqueued_at_us: int = 0
    granted_at_us: int = 0
    next_expiry_us: int = 0

    @property
    def tid(self) -> int:
        return self.transaction.tid


class LockTable:
    """All lock records of one granularity level for one file server."""

    def __init__(self, level: LockingLevel) -> None:
        self.level = level
        # Per-file lists model the paper's same-data-item queues; order
        # within the waiting list is FIFO.
        self._granted: Dict[SystemName, List[LockRecord]] = {}
        self._waiting: Dict[SystemName, List[LockRecord]] = {}

    # ------------------------------------------------------- queries

    def granted_on(self, item: DataItem) -> List[LockRecord]:
        return [
            record
            for record in self._granted.get(item.name, [])
            if record.item.conflicts_with(item)
        ]

    def waiting_on(self, item: DataItem) -> List[LockRecord]:
        return [
            record
            for record in self._waiting.get(item.name, [])
            if record.item.conflicts_with(item)
        ]

    def records_of(self, tid: int) -> List[LockRecord]:
        found = []
        for table in (self._granted, self._waiting):
            for records in table.values():
                found.extend(record for record in records if record.tid == tid)
        return found

    def all_granted(self) -> List[LockRecord]:
        return [record for records in self._granted.values() for record in records]

    def all_waiting(self) -> List[LockRecord]:
        return [record for records in self._waiting.values() for record in records]

    def get_lock_record(
        self, tid: int, item: DataItem, *, granted_only: bool = False
    ) -> Optional[LockRecord]:
        """The paper's get-lock-record operation."""
        for record in self._granted.get(item.name, []):
            if record.tid == tid and record.item == item:
                return record
        if granted_only:
            return None
        for record in self._waiting.get(item.name, []):
            if record.tid == tid and record.item == item:
                return record
        return None

    def record_count(self) -> int:
        return len(self.all_granted()) + len(self.all_waiting())

    # ------------------------------------------------------- updates

    def add_granted(self, record: LockRecord) -> None:
        record.granted = True
        self._granted.setdefault(record.item.name, []).append(record)

    def add_waiting(self, record: LockRecord) -> None:
        record.granted = False
        self._waiting.setdefault(record.item.name, []).append(record)

    def remove(self, record: LockRecord) -> None:
        for table in (self._granted, self._waiting):
            records = table.get(record.item.name)
            if records and record in records:
                records.remove(record)
                if not records:
                    del table[record.item.name]

    def remove_transaction(self, tid: int) -> List[LockRecord]:
        removed = self.records_of(tid)
        for record in removed:
            self.remove(record)
        return removed


class LockManager:
    """Lock acquisition, conversion, release, promotion and timeouts.

    One lock manager serves one file server (volume); it keeps the
    paper's three per-granularity lock tables.
    """

    def __init__(
        self,
        clock: SimClock,
        metrics: Metrics,
        policy: TimeoutPolicy | None = None,
        *,
        name: str = "lock_manager",
        cross_level: bool = False,
    ) -> None:
        self.clock = clock
        self.metrics = metrics
        self.policy = policy or TimeoutPolicy()
        self.name = name
        #: The paper assumes "a file cannot be subjected to more than one
        #: level of locking by concurrent transactions" but notes the
        #: constraint "can be relaxed, if required, at a later stage"
        #: (section 6.1).  ``cross_level=True`` is that relaxation:
        #: grants additionally conflict with overlapping byte ranges
        #: held at *other* granularities.
        self.cross_level = cross_level
        self.tables: Dict[LockingLevel, LockTable] = {
            LockingLevel.RECORD: LockTable(LockingLevel.RECORD),
            LockingLevel.PAGE: LockTable(LockingLevel.PAGE),
            LockingLevel.FILE: LockTable(LockingLevel.FILE),
        }

    # ------------------------------------------------------- acquire

    def acquire(
        self,
        transaction: Transaction,
        item: DataItem,
        mode: LockMode,
        *,
        process_id: int = 0,
    ) -> AcquireResult:
        """The paper's set-lock: grant, convert, or enqueue.

        Strict two-phase locking: acquiring in the unlocking phase is a
        serializability violation and raises.
        """
        if transaction.phase is not TransactionPhase.LOCKING:
            raise SerializabilityError(
                f"transaction {transaction.tid} cannot acquire locks in its "
                f"unlocking phase (two-phase rule)"
            )
        table = self.tables[item.level]
        existing = table.get_lock_record(transaction.tid, item, granted_only=True)
        if existing is not None and _STRENGTH[existing.mode] >= _STRENGTH[mode]:
            return AcquireResult.GRANTED
        if transaction.parent is not None and self._ancestry_covers(
            table, transaction, item, mode
        ):
            # A nested transaction inherits access to data its ancestors
            # hold locks on; the ancestor's lock protects the item until
            # the top-level commit, so no new record is needed.
            return AcquireResult.GRANTED
        if self._grantable(
            table, transaction, item, mode, conversion=existing is not None
        ):
            if existing is not None:
                # Lock conversion (paper 6.3): upgrade in place.
                existing.mode = mode
                existing.granted_at_us = self.clock.now_us
                existing.next_expiry_us = self.clock.now_us + self.policy.lt_us
                existing.retry_count = 0
                self.metrics.add(f"{self.name}.conversions")
            else:
                record = self._new_record(transaction, item, mode, process_id)
                record.granted_at_us = self.clock.now_us
                record.next_expiry_us = self.clock.now_us + self.policy.lt_us
                table.add_granted(record)
            self.metrics.add(f"{self.name}.grants")
            return AcquireResult.GRANTED
        waiting = table.get_lock_record(transaction.tid, item)
        if waiting is None or waiting.granted:
            record = self._new_record(transaction, item, mode, process_id)
            record.enqueued_at_us = self.clock.now_us
            table.add_waiting(record)
        else:
            waiting.mode = mode  # strengthen the queued request
        self.metrics.add(f"{self.name}.waits")
        return AcquireResult.WAITING

    def is_granted(self, transaction: Transaction, item: DataItem, mode: LockMode) -> bool:
        """Poll used by parked clients: has my queued request been granted?"""
        table = self.tables[item.level]
        record = table.get_lock_record(transaction.tid, item, granted_only=True)
        if record is not None and _STRENGTH[record.mode] >= _STRENGTH[mode]:
            return True
        return transaction.parent is not None and self._ancestry_covers(
            table, transaction, item, mode
        )

    def _ancestry_covers(
        self,
        table: LockTable,
        transaction: Transaction,
        item: DataItem,
        mode: LockMode,
    ) -> bool:
        """Does an ancestor hold a lock covering ``item`` at >= ``mode``?"""
        for record in table.granted_on(item):
            if (
                record.tid != transaction.tid
                and transaction.is_ancestor_or_self(record.transaction)
                and record.item.lo <= item.lo
                and item.hi <= record.item.hi
                and _STRENGTH[record.mode] >= _STRENGTH[mode]
            ):
                return True
        return False

    def transfer_locks(self, child: Transaction, parent: Transaction) -> int:
        """Anti-inherit a committing child's locks to its parent.

        Granted records are re-owned by the parent (merged into an
        existing parent record on the same item, keeping the stronger
        mode); leftover waiting records are dropped.  Returns the
        number of records transferred or merged.
        """
        moved = 0
        for table in self.tables.values():
            for record in table.records_of(child.tid):
                if not record.granted:
                    table.remove(record)
                    continue
                parent_record = table.get_lock_record(
                    parent.tid, record.item, granted_only=True
                )
                if parent_record is not None:
                    if _STRENGTH[record.mode] > _STRENGTH[parent_record.mode]:
                        parent_record.mode = record.mode
                    table.remove(record)
                else:
                    record.transaction = parent
                moved += 1
        return moved

    # ------------------------------------------------------- release

    def release_all(self, transaction: Transaction) -> None:
        """The unlock phase: drop every lock and promote waiters."""
        affected_levels = []
        for level, table in self.tables.items():
            removed = table.remove_transaction(transaction.tid)
            if removed:
                affected_levels.append(level)
        if self.cross_level and affected_levels:
            # A released record-level lock can unblock a page-level
            # waiter (and vice versa): promote every table.
            affected_levels = list(self.tables)
        for level in affected_levels:
            self._promote(self.tables[level])
        self.metrics.add(f"{self.name}.releases")

    # ------------------------------------------------------ timeouts

    def next_expiry_us(self) -> Optional[int]:
        """Earliest pending lock expiry, or None if nothing is granted."""
        expiries = [
            record.next_expiry_us
            for table in self.tables.values()
            for record in table.all_granted()
        ]
        return min(expiries) if expiries else None

    def expire(self, now_us: int) -> List[Transaction]:
        """Run the LT/N policy; returns transactions aborted by timeout.

        The aborted transactions' locks are broken and their waiters
        promoted; the owners' status is set to ABORTED so their next
        operation surfaces :class:`LockTimeoutError`.
        """
        victims: List[Transaction] = []
        for table in self.tables.values():
            for record in list(table.all_granted()):
                if record.next_expiry_us > now_us or not record.transaction.is_live:
                    continue
                competing = bool(table.waiting_on(record.item))
                record.retry_count += 1
                if competing or record.retry_count >= self.policy.max_renewals:
                    victims.append(record.transaction)
                    self.metrics.add(f"{self.name}.timeout_aborts")
                else:
                    record.next_expiry_us += self.policy.lt_us
                    self.metrics.add(f"{self.name}.renewals")
        for victim in victims:
            if victim.is_live:
                victim.status = TransactionStatus.ABORTED
                victim.abort_reason = "lock-timeout"
            self.release_all(victim)
        return victims

    # ------------------------------------------------------ internal

    def _grantable(
        self,
        table: LockTable,
        transaction: Transaction,
        item: DataItem,
        mode: LockMode,
        *,
        conversion: bool = False,
    ) -> bool:
        others = [
            record
            for record in table.granted_on(item)
            if not transaction.is_ancestor_or_self(record.transaction)
        ]
        # FIFO fairness: an earlier conflicting waiter of another
        # transaction blocks us from jumping the queue — except for a
        # *conversion*: the requester already holds the item, so making
        # it wait behind queued requests would deadlock it with them
        # (they cannot be granted while it holds its current lock).
        earlier_waiters = (
            []
            if conversion
            else [
                record
                for record in table.waiting_on(item)
                if not transaction.is_ancestor_or_self(record.transaction)
            ]
        )
        if self.cross_level:
            others = others + self._cross_level_holders(table, transaction, item)
        if mode is LockMode.RO:
            if any(record.mode is not LockMode.RO for record in others):
                return False
            # ...unless we are a reader joining readers with only reader
            # waiters ahead (an IR/IW waiter ahead blocks new ROs — the
            # paper's anti-starvation rule generalised to the queue).
            if any(record.mode is not LockMode.RO for record in earlier_waiters):
                return False
            return True
        if mode is LockMode.IR:
            if any(not locks_compatible(record.mode, LockMode.IR) for record in others):
                return False
            if any(record.mode is LockMode.IR for record in others):
                return False  # single-IR rule
            if earlier_waiters:
                return False
            return True
        # IW: "provided the data item is not locked by any transaction,
        # or the data item is Iread locked by the same transaction."
        if others:
            return False
        if earlier_waiters:
            return False
        return True

    def _cross_level_holders(
        self, home_table: LockTable, transaction: Transaction, item: DataItem
    ) -> List[LockRecord]:
        """Granted records at *other* levels overlapping ``item``'s bytes.

        Waiters at other levels are deliberately ignored: cross-level
        grants are blocked only by holders, which keeps the relaxation
        sound (serializability comes from holder conflicts) without
        entangling the per-level FIFO queues; a starving cross-level
        waiter is eventually served by the LT/N timeout machinery.
        """
        holders: List[LockRecord] = []
        for level, table in self.tables.items():
            if table is home_table:
                continue
            for record in table.all_granted():
                if (
                    not transaction.is_ancestor_or_self(record.transaction)
                    and record.item.conflicts_across_levels(item)
                ):
                    holders.append(record)
        return holders

    def _new_record(
        self,
        transaction: Transaction,
        item: DataItem,
        mode: LockMode,
        process_id: int,
    ) -> LockRecord:
        return LockRecord(
            process_id=process_id,
            transaction=transaction,
            phase=transaction.phase,
            mode=mode,
            granted=False,
            retry_count=0,
            item=item,
        )

    def _promote(self, table: LockTable) -> None:
        """Grant queued requests that have become compatible, in FIFO order."""
        changed = True
        while changed:
            changed = False
            for record in list(table.all_waiting()):
                if not record.transaction.is_live:
                    table.remove(record)
                    changed = True
                    continue
                if self._promotable(table, record):
                    table.remove(record)
                    existing = table.get_lock_record(
                        record.tid, record.item, granted_only=True
                    )
                    if existing is not None:
                        existing.mode = record.mode
                        existing.granted_at_us = self.clock.now_us
                        existing.next_expiry_us = (
                            self.clock.now_us + self.policy.lt_us
                        )
                        existing.retry_count = 0
                    else:
                        record.granted_at_us = self.clock.now_us
                        record.next_expiry_us = self.clock.now_us + self.policy.lt_us
                        record.retry_count = 0
                        table.add_granted(record)
                    self.metrics.add(f"{self.name}.promotions")
                    changed = True

    def _promotable(self, table: LockTable, record: LockRecord) -> bool:
        """Like _grantable, but 'earlier waiters' means earlier in queue."""
        others = [
            granted
            for granted in table.granted_on(record.item)
            if not record.transaction.is_ancestor_or_self(granted.transaction)
        ]
        if self.cross_level:
            others = others + self._cross_level_holders(
                table, record.transaction, record.item
            )
        conversion = (
            table.get_lock_record(record.tid, record.item, granted_only=True)
            is not None
        )
        if conversion:
            ahead: List[LockRecord] = []
        else:
            queue = table.waiting_on(record.item)
            ahead = [
                waiter
                for waiter in queue[: queue.index(record)]
                if not record.transaction.is_ancestor_or_self(waiter.transaction)
                and waiter.transaction.is_live
            ]
        if record.mode is LockMode.RO:
            return (
                all(other.mode is LockMode.RO for other in others)
                and all(waiter.mode is LockMode.RO for waiter in ahead)
            )
        if record.mode is LockMode.IR:
            return (
                all(other.mode is LockMode.RO for other in others)
                and not ahead
            )
        return not others and not ahead
