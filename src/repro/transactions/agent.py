"""The transaction agent: the client interface to the transaction service.

"The transaction agent in RHODOS is a process which allows operations
on a file using the semantics of transactions.  The transaction agent
process is highly dynamic because the first request to initiate a
transaction in a client's machine brings this process into existence
and it ceases to exist as soon as the last transaction in the client's
machine either completes successfully or aborts" (paper section 6).

Operations (their own verbs, so there is "no ambiguity" with the basic
service): tbegin, tcreate, topen, tdelete, tread, tpread, twrite,
tpwrite, tget_attribute, tlseek, tclose, tend, tabort.

Blocking: when a lock must wait, operations raise
:class:`~repro.simkernel.runner.LockWaitPending`, which the
interleaved runner turns into parking + retry — the in-simulation
equivalent of the paper's "the transaction will be put into the wait
queue".  A transaction aborted by the timeout policy surfaces
:class:`~repro.common.errors.LockTimeoutError` from its next
operation.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import (
    BadDescriptorError,
    FileSizeError,
    InvalidTransactionStateError,
    LockTimeoutError,
    TransactionAbortedError,
)
from repro.common.ids import DEVICE_DESCRIPTOR_LIMIT, SystemName
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.file_service.attributes import FileAttributes, LockingLevel, ServiceType
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.simkernel.runner import LockWaitPending
from repro.transactions.coordinator import TransactionCoordinator
from repro.transactions.lock_manager import AcquireResult
from repro.transactions.locks import (
    DataItem,
    FILE_RANGE_END,
    LockMode,
    file_item,
    page_item,
    record_item,
)
from repro.transactions.transaction import (
    TentativeItem,
    Transaction,
    TransactionStatus,
    TxnOpenFile,
)

#: Files opened at least this often get record-level locking under
#: LockingLevel.DEFAULT — "to support default level of locking it
#: exploits the knowledge of how frequently a file is used" (section 7):
#: hot files want maximum concurrency.
_HOT_FILE_OPENS = 8

_FIRST_TXN_DESCRIPTOR = DEVICE_DESCRIPTOR_LIMIT + 500_000


class TransactionAgent:
    """Per-machine transaction interface (one incarnation; see the host).

    Args:
        machine_id: this machine's id.
        naming: the naming service.
        coordinator: the system-wide transaction coordinator.
        clock, metrics: shared simulation context.
    """

    def __init__(
        self,
        machine_id: str,
        naming: NamingService,
        coordinator: TransactionCoordinator,
        clock: SimClock,
        metrics: Metrics,
    ) -> None:
        self.machine_id = machine_id
        self.naming = naming
        self.coordinator = coordinator
        self.clock = clock
        self.metrics = metrics
        self._prefix = f"transaction_agent.{machine_id}"
        self._transactions: Dict[int, Transaction] = {}
        self._next_descriptor = _FIRST_TXN_DESCRIPTOR

    # ===================================================== lifecycle

    def tbegin(self, *, process_id: int = 0, parent: Optional[int] = None) -> int:
        """Start a transaction; returns its transaction descriptor.

        ``parent`` nests the new transaction inside a live one: the
        child shares the parent's locks and tentative view, and its own
        effects reach the disk only when the top-level ancestor commits.
        """
        parent_transaction = None
        if parent is not None:
            parent_transaction = self._live(parent)
        transaction = self.coordinator.begin(
            self.machine_id, process_id, parent=parent_transaction
        )
        self._transactions[transaction.tid] = transaction
        self.metrics.add(f"{self._prefix}.tbegins")
        return transaction.tid

    def tend(self, tid: int) -> None:
        """Commit: tentative changes become permanent, locks released."""
        transaction = self._live(tid)
        self.coordinator.commit(transaction)
        del self._transactions[tid]
        self.metrics.add(f"{self._prefix}.tends")

    def tabort(self, tid: int) -> None:
        """Abort: tentative changes discarded, locks released."""
        transaction = self._transactions.get(tid)
        if transaction is None:
            raise InvalidTransactionStateError(f"no transaction {tid}")
        self._unbind_created(transaction)
        self.coordinator.abort(transaction)
        del self._transactions[tid]
        self.metrics.add(f"{self._prefix}.taborts")

    def active_transactions(self) -> List[int]:
        return sorted(self._transactions)

    # ========================================================= files

    def tcreate(
        self,
        tid: int,
        name: AttributedName,
        *,
        volume_id: Optional[int] = None,
        locking_level: LockingLevel = LockingLevel.DEFAULT,
    ) -> int:
        """Create a file inside a transaction; undone if it aborts."""
        transaction = self._live(tid)
        if volume_id is None:
            hinted = name.get("volume")
            volume_id = (
                int(hinted) if hinted is not None else self.coordinator.volume_ids()[0]
            )
        server = self.coordinator.file_server(volume_id)
        system_name = server.create(
            service_type=ServiceType.TRANSACTION, locking_level=locking_level
        )
        self.naming.bind(name, system_name)
        transaction.created_files.append((name, system_name))
        level = self._effective_level(server.get_attribute(system_name))
        # Lock out everyone else until commit: a whole-range exclusive
        # item in the level's own table (so page/record lockers conflict).
        self._acquire(
            transaction,
            DataItem(system_name, level, 0, FILE_RANGE_END),
            LockMode.IW,
        )
        descriptor = self._open_descriptor(transaction, system_name, server, level)
        self.metrics.add(f"{self._prefix}.tcreates")
        return descriptor

    def topen(
        self,
        tid: int,
        name: AttributedName,
        *,
        locking_level: Optional[LockingLevel] = None,
    ) -> int:
        """Open a file for transactional I/O; returns an object descriptor.

        ``locking_level`` overrides the file's own level for this open —
        meaningful with the cross-level relaxation, where concurrent
        transactions may lock the same file at different granularities.
        """
        transaction = self._live(tid)
        system_name = self.naming.resolve_file(name)
        server = self.coordinator.file_server(system_name.volume_id)
        attrs = server.open(system_name)
        if attrs.service_type is not ServiceType.TRANSACTION:
            server.set_service_type(system_name, ServiceType.TRANSACTION)
        level = (
            locking_level
            if locking_level is not None
            else self._effective_level(attrs)
        )
        descriptor = self._open_descriptor(transaction, system_name, server, level)
        self.metrics.add(f"{self._prefix}.topens")
        return descriptor

    def topen_system(
        self,
        tid: int,
        system_name: SystemName,
        *,
        locking_level: Optional[LockingLevel] = None,
    ) -> int:
        """Open a file by its system name directly (no naming lookup).

        System services (e.g. the transactional directory layer) hold
        system names that have no attributed-name binding; this is
        their entry into transactional I/O.
        """
        transaction = self._live(tid)
        server = self.coordinator.file_server(system_name.volume_id)
        attrs = server.open(system_name)
        if attrs.service_type is not ServiceType.TRANSACTION:
            server.set_service_type(system_name, ServiceType.TRANSACTION)
        level = (
            locking_level
            if locking_level is not None
            else self._effective_level(attrs)
        )
        descriptor = self._open_descriptor(transaction, system_name, server, level)
        self.metrics.add(f"{self._prefix}.topens")
        return descriptor

    def tcreate_system(self, tid: int, *, volume_id: int) -> int:
        """Create an unnamed file transactionally (system services).

        The file gets no attributed-name binding; the caller records
        its system name wherever it keeps references (e.g. a parent
        directory's entry table).  Undone if the transaction aborts.
        """
        transaction = self._live(tid)
        server = self.coordinator.file_server(volume_id)
        system_name = server.create(service_type=ServiceType.TRANSACTION)
        transaction.created_files.append((None, system_name))
        level = self._effective_level(server.get_attribute(system_name))
        self._acquire(
            transaction,
            DataItem(system_name, level, 0, FILE_RANGE_END),
            LockMode.IW,
        )
        descriptor = self._open_descriptor(transaction, system_name, server, level)
        self.metrics.add(f"{self._prefix}.tcreates")
        return descriptor

    def tdelete_system(self, tid: int, system_name: SystemName) -> None:
        """Transactionally delete a file by system name (at commit)."""
        transaction = self._live(tid)
        server = self.coordinator.file_server(system_name.volume_id)
        attrs = server.get_attribute(system_name)
        level = self._effective_level(attrs)
        self._acquire(
            transaction,
            DataItem(system_name, level, 0, FILE_RANGE_END),
            LockMode.IW,
        )
        transaction.deleted_files.append((None, system_name))
        self.metrics.add(f"{self._prefix}.tdeletes")

    def system_name_of(self, tid: int, descriptor: int) -> SystemName:
        """The system name behind a transactional descriptor."""
        transaction = self._live(tid)
        return self._open_file(transaction, descriptor).name

    def tclose(self, tid: int, descriptor: int) -> None:
        """Close a transactional descriptor (locks are kept until tend)."""
        transaction = self._live(tid)
        if transaction.open_files.pop(descriptor, None) is None:
            raise BadDescriptorError(f"descriptor {descriptor} not open in txn {tid}")
        self.metrics.add(f"{self._prefix}.tcloses")

    def tdelete(self, tid: int, name: AttributedName) -> None:
        """Delete a file transactionally: effective only at commit."""
        transaction = self._live(tid)
        system_name = self.naming.resolve_file(name)
        server = self.coordinator.file_server(system_name.volume_id)
        attrs = server.get_attribute(system_name)
        level = self._effective_level(attrs)
        self._acquire(
            transaction,
            DataItem(system_name, level, 0, FILE_RANGE_END),
            LockMode.IW,
        )
        transaction.deleted_files.append((name, system_name))
        self.naming.unbind(name)
        self.metrics.add(f"{self._prefix}.tdeletes")

    # ========================================================== read

    def tread(
        self, tid: int, descriptor: int, n_bytes: int, *, for_update: bool = False
    ) -> bytes:
        """Read at the descriptor's position, advancing it.

        ``for_update=True`` takes Iread locks (reading in order to
        modify); otherwise read-only locks.
        """
        transaction = self._live(tid)
        open_file = self._open_file(transaction, descriptor)
        data = self._read_at(
            transaction, open_file, open_file.position, n_bytes, for_update
        )
        open_file.position += len(data)
        return data

    def tpread(
        self,
        tid: int,
        descriptor: int,
        n_bytes: int,
        offset: int,
        *,
        for_update: bool = False,
    ) -> bytes:
        """Positional transactional read; position untouched."""
        transaction = self._live(tid)
        open_file = self._open_file(transaction, descriptor)
        return self._read_at(transaction, open_file, offset, n_bytes, for_update)

    # ========================================================= write

    def twrite(self, tid: int, descriptor: int, data: bytes) -> int:
        """Write at the descriptor's position (tentatively), advancing it."""
        transaction = self._live(tid)
        open_file = self._open_file(transaction, descriptor)
        written = self._write_at(transaction, open_file, open_file.position, data)
        open_file.position += written
        return written

    def tpwrite(self, tid: int, descriptor: int, data: bytes, offset: int) -> int:
        """Positional transactional write; position untouched."""
        transaction = self._live(tid)
        open_file = self._open_file(transaction, descriptor)
        return self._write_at(transaction, open_file, offset, data)

    # ========================================================== misc

    def tlseek(self, tid: int, descriptor: int, offset: int, whence: int = os.SEEK_SET) -> int:
        transaction = self._live(tid)
        open_file = self._open_file(transaction, descriptor)
        if whence == os.SEEK_SET:
            new = offset
        elif whence == os.SEEK_CUR:
            new = open_file.position + offset
        elif whence == os.SEEK_END:
            new = self._size(transaction, open_file) + offset
        else:
            raise FileSizeError(f"bad whence {whence}")
        if new < 0:
            raise FileSizeError(f"seek to negative position {new}")
        open_file.position = new
        return new

    def tget_attribute(self, tid: int, descriptor: int) -> FileAttributes:
        """Attributes as this transaction sees them (tentative size)."""
        transaction = self._live(tid)
        open_file = self._open_file(transaction, descriptor)
        server = self.coordinator.file_server(open_file.name.volume_id)
        attrs = server.get_attribute(open_file.name)
        attrs.file_size = max(
            attrs.file_size,
            self._tentative_size(transaction, open_file.name),
        )
        return attrs

    # ====================================================== internal

    def _live(self, tid: int) -> Transaction:
        transaction = self._transactions.get(tid)
        if transaction is None:
            raise InvalidTransactionStateError(f"no transaction {tid} on this machine")
        if not transaction.is_live:
            # Aborted behind our back (lock timeout): clean up and surface.
            self._unbind_created(transaction)
            self.coordinator.abort(transaction)
            del self._transactions[tid]
            if transaction.abort_reason == "lock-timeout":
                raise LockTimeoutError(
                    f"transaction {tid} was aborted by lock timeout"
                )
            raise TransactionAbortedError(
                f"transaction {tid} was aborted ({transaction.abort_reason})",
                reason=transaction.abort_reason,
            )
        return transaction

    def _open_file(self, transaction: Transaction, descriptor: int) -> TxnOpenFile:
        open_file = transaction.open_files.get(descriptor)
        if open_file is None:
            raise BadDescriptorError(
                f"descriptor {descriptor} not open in transaction {transaction.tid}"
            )
        return open_file

    def _open_descriptor(
        self,
        transaction: Transaction,
        system_name: SystemName,
        server,
        level: LockingLevel,
    ) -> int:
        descriptor = self._next_descriptor
        self._next_descriptor += 1
        transaction.open_files[descriptor] = TxnOpenFile(
            name=system_name, position=0, level=level
        )
        return descriptor

    @staticmethod
    def _effective_level(attrs: FileAttributes) -> LockingLevel:
        if attrs.locking_level is not LockingLevel.DEFAULT:
            return attrs.locking_level
        # The default exploits how frequently the file is used.
        if attrs.open_count_total >= _HOT_FILE_OPENS:
            return LockingLevel.RECORD
        return LockingLevel.PAGE

    # ---- locking

    def _items_for_range(
        self, open_file: TxnOpenFile, offset: int, length: int
    ) -> List[DataItem]:
        if length <= 0:
            return []
        name = open_file.name
        if open_file.level is LockingLevel.FILE:
            return [file_item(name)]
        if open_file.level is LockingLevel.RECORD:
            return [record_item(name, offset, length)]
        first = offset // BLOCK_SIZE
        last = (offset + length - 1) // BLOCK_SIZE
        return [page_item(name, page, BLOCK_SIZE) for page in range(first, last + 1)]

    def _acquire(
        self, transaction: Transaction, item: DataItem, mode: LockMode
    ) -> None:
        manager = self.coordinator.lock_manager(item.name.volume_id)
        result = manager.acquire(
            transaction, item, mode, process_id=transaction.process_id
        )
        if result is AcquireResult.GRANTED:
            return
        self.metrics.add(f"{self._prefix}.lock_waits")

        def ready() -> bool:
            return (
                manager.is_granted(transaction, item, mode)
                or not transaction.is_live
            )

        # LockWaitPending is the runner's control-flow signal (caught by
        # name, never an error); forcing it under RhodosError would let
        # broad facility handlers swallow a pending wait.
        # repro-lint: allow[error-taxonomy] control-flow signal, not an error
        raise LockWaitPending(str(item), ready)

    # ---- data plane

    def _read_at(
        self,
        transaction: Transaction,
        open_file: TxnOpenFile,
        offset: int,
        n_bytes: int,
        for_update: bool,
    ) -> bytes:
        if offset < 0 or n_bytes < 0:
            raise FileSizeError(f"bad read range ({offset}, {n_bytes})")
        mode = LockMode.IR if for_update else LockMode.RO
        for item in self._items_for_range(open_file, offset, n_bytes):
            self._acquire(transaction, item, mode)
        server = self.coordinator.file_server(open_file.name.volume_id)
        base = server.read(open_file.name, offset, n_bytes)
        size = max(
            self._tentative_size(transaction, open_file.name),
            offset + len(base),
        )
        end = min(offset + n_bytes, size)
        if end <= offset:
            self.metrics.add(f"{self._prefix}.treads")
            return b""
        padded = base + bytes(end - offset - len(base)) if len(base) < end - offset else base
        data = padded[: end - offset]
        # Nested transactions see their ancestors' tentative writes,
        # overlaid root-first so the innermost transaction wins.
        for node in transaction.ancestry():
            data = node.overlay(open_file.name, offset, data)
        self.metrics.add(f"{self._prefix}.treads")
        return data

    def _write_at(
        self,
        transaction: Transaction,
        open_file: TxnOpenFile,
        offset: int,
        data: bytes,
    ) -> int:
        if offset < 0:
            raise FileSizeError(f"bad write offset {offset}")
        if not data:
            return 0
        for item in self._items_for_range(open_file, offset, len(data)):
            self._acquire(transaction, item, LockMode.IW)
        name = open_file.name
        server = self.coordinator.file_server(name.volume_id)
        level = open_file.level
        end = offset + len(data)
        if level is LockingLevel.RECORD:
            transaction.tentative_records.append(
                TentativeItem(
                    item=record_item(name, offset, len(data)),
                    data=bytes(data),
                    sequence=transaction.next_sequence(),
                )
            )
        elif level is LockingLevel.PAGE:
            cursor = offset
            view = memoryview(data)
            while cursor < end:
                page = cursor // BLOCK_SIZE
                within = cursor - page * BLOCK_SIZE
                chunk = min(BLOCK_SIZE - within, end - cursor)
                self._merge_page(
                    transaction, server, name, page, within, bytes(view[:chunk])
                )
                view = view[chunk:]
                cursor += chunk
        else:  # FILE level
            self._merge_file(transaction, server, name, offset, data)
        current = transaction.tentative_sizes.get(name)
        if current is None:
            current = server.get_attribute(name).file_size
        transaction.tentative_sizes[name] = max(current, end)
        self.metrics.add(f"{self._prefix}.twrites")
        return len(data)

    def _merge_page(
        self,
        transaction: Transaction,
        server,
        name: SystemName,
        page: int,
        within: int,
        chunk: bytes,
    ) -> None:
        item = page_item(name, page, BLOCK_SIZE)
        entry = transaction.tentative_map.get(item)
        if entry is None:
            base = server.read(name, page * BLOCK_SIZE, BLOCK_SIZE)
            buffer = bytearray(BLOCK_SIZE)
            buffer[: len(base)] = base
            # A nested transaction's page starts from the ancestors' view.
            composed = bytes(buffer)
            for node in transaction.ancestry()[:-1]:
                composed = node.overlay(name, page * BLOCK_SIZE, composed)
            entry = TentativeItem(
                item=item,
                data=composed,
                sequence=transaction.next_sequence(),
            )
            transaction.tentative_map[item] = entry
        buffer = bytearray(entry.data)
        buffer[within : within + len(chunk)] = chunk
        entry.data = bytes(buffer)

    def _merge_file(
        self,
        transaction: Transaction,
        server,
        name: SystemName,
        offset: int,
        data: bytes,
    ) -> None:
        item = file_item(name)
        entry = transaction.tentative_map.get(item)
        if entry is None:
            size = max(
                server.get_attribute(name).file_size,
                self._tentative_size(transaction, name),
            )
            base = server.read(name, 0, size)
            base = base + bytes(size - len(base))
            composed = bytes(base)
            for node in transaction.ancestry()[:-1]:
                composed = node.overlay(name, 0, composed)
            entry = TentativeItem(
                item=item,
                data=composed,
                sequence=transaction.next_sequence(),
            )
            transaction.tentative_map[item] = entry
        end = offset + len(data)
        buffer = bytearray(entry.data)
        if len(buffer) < end:
            buffer.extend(bytes(end - len(buffer)))
        buffer[offset:end] = data
        entry.data = bytes(buffer)

    def _size(self, transaction: Transaction, open_file: TxnOpenFile) -> int:
        server = self.coordinator.file_server(open_file.name.volume_id)
        return max(
            server.get_attribute(open_file.name).file_size,
            self._tentative_size(transaction, open_file.name),
        )

    @staticmethod
    def _tentative_size(transaction: Transaction, name: SystemName) -> int:
        return max(
            (
                node.tentative_sizes.get(name, 0)
                for node in transaction.ancestry()
            ),
            default=0,
        )

    def _unbind_created(self, transaction: Transaction) -> None:
        for attributed, _ in transaction.created_files:
            if attributed is not None and attributed in self.naming:
                try:
                    self.naming.unbind(attributed)
                except Exception:  # noqa: BLE001 - best effort on abort
                    pass
        for attributed, system_name in transaction.deleted_files:
            if attributed is None:
                continue
            if transaction.status is not TransactionStatus.COMMITTED:
                self.naming.rebind(attributed, system_name)


class TransactionAgentHost:
    """The dynamic lifecycle wrapper around the transaction agent.

    "The presence of a transaction agent is event driven: it is invoked
    only when there is a need to perform file operations involving
    transactions" (section 7).  The host spawns an agent on the first
    ``tbegin`` and destroys it when the machine's last transaction
    completes or aborts; ``agent_exists`` and the spawn/exit metrics
    let tests observe exactly that.
    """

    def __init__(
        self,
        machine_id: str,
        naming: NamingService,
        coordinator: TransactionCoordinator,
        clock: SimClock,
        metrics: Metrics,
    ) -> None:
        self.machine_id = machine_id
        self.naming = naming
        self.coordinator = coordinator
        self.clock = clock
        self.metrics = metrics
        self._agent: Optional[TransactionAgent] = None

    # ------------------------------------------------------ lifecycle

    @property
    def agent_exists(self) -> bool:
        return self._agent is not None

    def tbegin(self, *, process_id: int = 0, parent: Optional[int] = None) -> int:
        if self._agent is None:
            self._agent = TransactionAgent(
                self.machine_id,
                self.naming,
                self.coordinator,
                self.clock,
                self.metrics,
            )
            self.metrics.add(f"transaction_agent.{self.machine_id}.spawns")
        return self._agent.tbegin(process_id=process_id, parent=parent)

    def _require(self) -> TransactionAgent:
        if self._agent is None:
            raise InvalidTransactionStateError(
                f"no transaction agent on machine {self.machine_id!r} "
                f"(no transaction has begun)"
            )
        return self._agent

    def _maybe_exit(self) -> None:
        if self._agent is not None and not self._agent.active_transactions():
            self._agent = None
            self.metrics.add(f"transaction_agent.{self.machine_id}.exits")

    # ------------------------------------------------- delegated ops

    def tend(self, tid: int) -> None:
        try:
            self._require().tend(tid)
        finally:
            self._maybe_exit()

    def tabort(self, tid: int) -> None:
        try:
            self._require().tabort(tid)
        finally:
            self._maybe_exit()

    def tcreate(self, tid: int, name: AttributedName, **kwargs) -> int:
        return self._require().tcreate(tid, name, **kwargs)

    def topen(self, tid: int, name: AttributedName, **kwargs) -> int:
        return self._require().topen(tid, name, **kwargs)

    def topen_system(self, tid: int, system_name, **kwargs) -> int:
        return self._require().topen_system(tid, system_name, **kwargs)

    def tcreate_system(self, tid: int, *, volume_id: int) -> int:
        return self._require().tcreate_system(tid, volume_id=volume_id)

    def tdelete_system(self, tid: int, system_name) -> None:
        self._require().tdelete_system(tid, system_name)

    def system_name_of(self, tid: int, descriptor: int):
        return self._require().system_name_of(tid, descriptor)

    def tclose(self, tid: int, descriptor: int) -> None:
        self._require().tclose(tid, descriptor)

    def tdelete(self, tid: int, name: AttributedName) -> None:
        self._require().tdelete(tid, name)

    def tread(self, tid: int, descriptor: int, n_bytes: int, **kwargs) -> bytes:
        return self._wrap(lambda agent: agent.tread(tid, descriptor, n_bytes, **kwargs))

    def tpread(
        self, tid: int, descriptor: int, n_bytes: int, offset: int, **kwargs
    ) -> bytes:
        return self._wrap(
            lambda agent: agent.tpread(tid, descriptor, n_bytes, offset, **kwargs)
        )

    def twrite(self, tid: int, descriptor: int, data: bytes) -> int:
        return self._wrap(lambda agent: agent.twrite(tid, descriptor, data))

    def tpwrite(self, tid: int, descriptor: int, data: bytes, offset: int) -> int:
        return self._wrap(lambda agent: agent.tpwrite(tid, descriptor, data, offset))

    def tlseek(self, tid: int, descriptor: int, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._require().tlseek(tid, descriptor, offset, whence)

    def tget_attribute(self, tid: int, descriptor: int) -> FileAttributes:
        return self._require().tget_attribute(tid, descriptor)

    # ------------------------------------------------------ internal

    def _wrap(self, fn):
        """Run an op; if it surfaces an abort, let the agent wind down."""
        try:
            return fn(self._require())
        except TransactionAbortedError:
            self._maybe_exit()
            raise
