"""Lock modes, data items, and Table 1 compatibility.

Paper section 6.3: the locks are **read-only (RO)**, **Iread (IR)**
and **Iwrite (IW)**.

* RO — set to perform a query; shareable with other ROs and with a
  single IR.
* IR — set when reading a data item *in order to modify it*; grantable
  when the item is free or only RO-locked.  Once an IR is in place no
  *new* RO may be set (this prevents the permanent blocking the paper
  describes), and at most one IR exists per item (sharing IR would
  force mass aborts when the modifier commits).
* IW — exclusive; grantable only when the item is not locked by any
  *other* transaction.  A transaction holding IR (or RO) on the item
  may convert its own lock to IW.

Data items come in the three granularities of section 6.1: a record
(an arbitrary byte range — "as fine as a single byte or as coarse as
an entire file"), a page, or the complete file.  Two items conflict
only if they denote overlapping data of the same file at the same
granularity (the paper assumes concurrent transactions use one level
per file; see section 6.1's closing constraint).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.ids import SystemName
from repro.file_service.attributes import LockingLevel


class LockMode(enum.Enum):
    """The three lock modes of Table 1."""

    RO = "read-only"
    IR = "Iread"
    IW = "Iwrite"


def locks_compatible(held: LockMode, requested: LockMode) -> bool:
    """Table 1 for locks held by *other* transactions.

    Same-transaction requests never consult this function — they are
    conversions, handled by the lock manager.
    """
    if held is LockMode.RO:
        # RO shares with new ROs and with a single IR (the manager
        # enforces the single-IR rule; compatibility-wise IR is ok).
        return requested in (LockMode.RO, LockMode.IR)
    # IR admits no new locks at all (including RO — the anti-starvation
    # rule), IW admits nothing.
    return False


@dataclass(frozen=True, slots=True)
class DataItem:
    """The lockable unit: a byte range of one file at one granularity.

    ``lo``/``hi`` delimit the byte range [lo, hi): for PAGE items this
    is the page's range, for FILE items the whole representable range,
    for RECORD items exactly the record's bytes.
    """

    name: SystemName
    level: LockingLevel
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi <= self.lo:
            raise ValueError(f"bad data-item range [{self.lo}, {self.hi})")

    def conflicts_with(self, other: "DataItem") -> bool:
        """True when the two items denote overlapping data of one file.

        Same-level only: the paper's simplifying constraint that "a
        file cannot be subjected to more than one level of locking by
        concurrent transactions" (section 6.1).
        """
        return (
            self.name == other.name
            and self.level == other.level
            and self.lo < other.hi
            and other.lo < self.hi
        )

    def conflicts_across_levels(self, other: "DataItem") -> bool:
        """Overlap test ignoring granularity.

        Section 6.1 notes its one-level-per-file constraint "can be
        relaxed, if required, at a later stage"; this predicate is that
        relaxation: a record and the page containing it denote the same
        bytes and therefore conflict.
        """
        return (
            self.name == other.name
            and self.lo < other.hi
            and other.lo < self.hi
        )

    def __str__(self) -> str:
        return (
            f"{self.name}:{self.level.name.lower()}[{self.lo}:{self.hi}]"
        )


#: Whole-file data items use this as their exclusive upper bound.
FILE_RANGE_END = 2**62


def file_item(name: SystemName) -> DataItem:
    """The data item for file-level locking."""
    return DataItem(name, LockingLevel.FILE, 0, FILE_RANGE_END)


def page_item(name: SystemName, page_index: int, page_size: int) -> DataItem:
    """The data item for one page under page-level locking."""
    lo = page_index * page_size
    return DataItem(name, LockingLevel.PAGE, lo, lo + page_size)


def record_item(name: SystemName, offset: int, length: int) -> DataItem:
    """The data item for a byte-range record under record-level locking."""
    return DataItem(name, LockingLevel.RECORD, offset, offset + length)
