"""Regenerate the full experiment report.

``python -m repro.tools.report [output.md]`` runs the benchmark suite
(which prints every experiment table and asserts every claim's shape)
and collects the tables into one markdown document — the executable
companion to EXPERIMENTS.md.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path


def find_benchmarks_dir() -> Path:
    """Locate the benchmarks/ directory of the repository."""
    candidates = [
        Path.cwd() / "benchmarks",
        Path(__file__).resolve().parents[3] / "benchmarks",
    ]
    for candidate in candidates:
        if candidate.is_dir() and any(candidate.glob("bench_*.py")):
            return candidate
    raise SystemExit(
        "could not find the benchmarks/ directory; run from the repo root"
    )


def run_suite(benchmarks_dir: Path) -> str:
    """Run the suite, returning its stdout; raises on any failure."""
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(benchmarks_dir),
            "--benchmark-only",
            "--benchmark-disable-gc",
            "-q",
            "-s",
        ],
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        sys.stderr.write(completed.stdout[-4000:])
        raise SystemExit("benchmark suite failed; report not generated")
    return completed.stdout


_TABLE_START = re.compile(r"^=== (.+) ===$")


def extract_tables(output: str) -> list[tuple[str, list[str]]]:
    """Pull each printed experiment table out of the pytest output."""
    tables: list[tuple[str, list[str]]] = []
    current_title: str | None = None
    current_lines: list[str] = []
    for line in output.splitlines():
        match = _TABLE_START.match(line.strip())
        if match:
            if current_title is not None:
                tables.append((current_title, current_lines))
            current_title = match.group(1)
            current_lines = []
            continue
        if current_title is not None:
            stripped = line.rstrip()
            if not stripped or stripped in (".", "F") or stripped.startswith(
                ("---------------------------------------- benchmark", "=====")
            ):
                if stripped != "" and not stripped.startswith("-"):
                    tables.append((current_title, current_lines))
                    current_title = None
                    current_lines = []
                continue
            current_lines.append(stripped)
    if current_title is not None:
        tables.append((current_title, current_lines))
    return tables


def render_markdown(tables: list[tuple[str, list[str]]]) -> str:
    parts = [
        "# RHODOS DFF — regenerated experiment tables\n",
        "_Produced by `python -m repro.tools.report`; every table is "
        "printed by a passing benchmark that also asserts the paper "
        "claim's shape._\n",
    ]
    for title, lines in sorted(tables, key=lambda entry: entry[0]):
        parts.append(f"\n## {title}\n")
        parts.append("```")
        parts.extend(lines)
        parts.append("```")
    return "\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    output_path = Path(argv[0]) if argv else Path("experiment_report.md")
    benchmarks_dir = find_benchmarks_dir()
    print(f"running the benchmark suite in {benchmarks_dir} ...")
    output = run_suite(benchmarks_dir)
    tables = extract_tables(output)
    if not tables:
        raise SystemExit("no experiment tables found in the suite output")
    output_path.write_text(render_markdown(tables), encoding="utf-8")
    print(f"wrote {len(tables)} tables to {output_path}")


if __name__ == "__main__":
    main()
