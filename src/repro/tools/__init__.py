"""Operator tooling for the RHODOS file facility.

* :mod:`repro.tools.fsck` — an offline volume checker that rediscovers
  every file index table by scanning the disk, then cross-checks the
  block maps against the allocation bitmap (orphaned space, lost
  blocks, cross-linked files, stale contiguity counts).
* :mod:`repro.tools.backup` — whole-volume dump/restore, the answer to
  the catastrophes section 6.6's recovery explicitly excludes.
* :mod:`repro.tools.report` — regenerates every experiment table from
  the benchmark suite into one markdown report
  (``python -m repro.tools.report``).
"""

from repro.tools.backup import dump_volume, restore_volume
from repro.tools.fsck import FsckReport, fsck_volume

__all__ = ["FsckReport", "fsck_volume", "dump_volume", "restore_volume"]
