"""Machine-readable benchmark runner: ``python -m repro.tools.bench``.

The benchmark suite under ``benchmarks/`` regenerates the paper's
artifacts as human-readable tables and shape assertions.  This runner
executes the same ``bench_*.py`` files headlessly — no pytest, no
pytest-benchmark — and emits one JSON document so the repo finally has
a *machine-readable* perf trajectory: each PR can diff its
``BENCH_*.json`` against the previous one, counter by counter and
quantile by quantile, the way the paper's own tables compare designs.

Schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "suite": "repro-bench",
      "experiments": {
        "<experiment id>": {
          "status": "pass" | "fail" | "error",
          "failure": null | "<first line of the assertion/exception>",
          "counters": {"disk.0.references": 42, ...},
          "layers": {"disk": 42, "file_server": 7, ...},
          "histograms": {"disk.0.service_us": {"count": ..., "p50": ...}},
          "gauges": {"disk_server.0.free_fragments": ...}
        }, ...
      }
    }

Counters, histogram samples and gauges are aggregated across every
:class:`~repro.common.metrics.Metrics` registry an experiment builds
internally (collected through :meth:`Metrics.tracking`), then
summarised deterministically — identical runs emit byte-identical
JSON.  Experiment *assertions* still run: a failed paper claim shows
up as ``status: "fail"`` instead of aborting the sweep.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib.util
import io
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.common.metrics import HISTOGRAM_PERCENTILES, Metrics, _nearest_rank

#: Experiments the ``--smoke`` subset runs: one per subsystem, all fast.
SMOKE_EXPERIMENTS = (
    "e1_two_disk_references",
    "e14_track_cache",
    "e16_scheduling",
    "e18_scrub_overhead",
    "e19_raid",
    "e20_sharded_namespace",
    "t1_lock_compatibility",
)


def repo_root() -> Path:
    """The repository root, located from this file (src/repro/tools/…)."""
    return Path(__file__).resolve().parents[3]


def benchmarks_dir() -> Path:
    return repo_root() / "benchmarks"


class _HeadlessBenchmark:
    """Stand-in for the pytest-benchmark fixture.

    The suite only uses ``benchmark.pedantic(fn, rounds=1,
    iterations=1)`` and direct calls; both simply invoke the function
    once and hand back its result — the simulated clock, not the host
    machine, is the time base, so repetition adds nothing.
    """

    def pedantic(
        self,
        target: Callable,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        **_ignored: object,
    ):
        return target(*args, **(kwargs or {}))

    def __call__(self, target: Callable, *args: object, **kwargs: object):
        return target(*args, **kwargs)


def discover(directory: Optional[Path] = None) -> Dict[str, Path]:
    """Map experiment id (``e1_two_disk_references``) to bench file."""
    directory = directory or benchmarks_dir()
    return {
        path.stem[len("bench_"):]: path
        for path in sorted(directory.glob("bench_*.py"))
    }


def _load_module(path: Path):
    """Import one bench file with the benchmarks dir importable.

    Bench files import ``_helpers`` as a top-level module, so the
    benchmarks directory temporarily joins ``sys.path`` (mirroring what
    ``benchmarks/conftest.py`` does for pytest runs).
    """
    directory = str(path.parent)
    spec = importlib.util.spec_from_file_location(f"repro_bench_{path.stem}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.path.insert(0, directory)
    try:
        spec.loader.exec_module(module)
    finally:
        with contextlib.suppress(ValueError):
            sys.path.remove(directory)
    return module


def _aggregate(registries: List[Metrics]) -> Dict[str, object]:
    """Merge every registry an experiment built into one summary."""
    counters: Dict[str, int] = {}
    samples: Dict[str, List[int]] = {}
    gauges: Dict[str, int] = {}
    for registry in registries:
        for name, value in registry.snapshot().items():
            counters[name] = counters.get(name, 0) + value
        for name in registry.histogram_names():
            samples.setdefault(name, []).extend(registry.histogram_samples(name))
        # Last write wins across registries too; registries are visited
        # in creation order, so the newest system's levels prevail.
        gauges.update(registry.gauges())
    layers: Dict[str, int] = {}
    for name, value in counters.items():
        layers[name.split(".", 1)[0]] = layers.get(name.split(".", 1)[0], 0) + value
    histograms: Dict[str, Dict[str, int]] = {}
    for name, values in samples.items():
        ordered = sorted(values)
        summary = {
            "count": len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "sum": sum(ordered),
        }
        for percentile in HISTOGRAM_PERCENTILES:
            summary[f"p{percentile}"] = _nearest_rank(ordered, percentile)
        histograms[name] = summary
    return {
        "counters": dict(sorted(counters.items())),
        "layers": dict(sorted(layers.items())),
        "histograms": dict(sorted(histograms.items())),
        "gauges": dict(sorted(gauges.items())),
    }


def run_experiment(path: Path, *, quiet: bool = True) -> Dict[str, object]:
    """Run every ``test_*`` function of one bench file; summarise."""
    status, failure = "pass", None
    with Metrics.tracking() as registries:
        sink = io.StringIO()
        try:
            with contextlib.redirect_stdout(sink if quiet else sys.stdout):
                module = _load_module(path)
                tests = [
                    getattr(module, name)
                    for name in sorted(dir(module))
                    if name.startswith("test_") and callable(getattr(module, name))
                ]
                for test in tests:
                    test(_HeadlessBenchmark())
        except AssertionError as exc:
            status = "fail"
            failure = str(exc).splitlines()[0] if str(exc) else "assertion failed"
        except Exception as exc:  # noqa: BLE001 - one bad bench must not kill the sweep
            status = "error"
            failure = f"{type(exc).__name__}: {exc}".splitlines()[0]
    result: Dict[str, object] = {"status": status, "failure": failure}
    result.update(_aggregate(registries))
    return result


def run_suite(
    experiment_ids: List[str],
    *,
    quiet: bool = True,
    progress: Optional[Callable[[str, str], None]] = None,
) -> Dict[str, object]:
    """Run the named experiments; returns the full JSON document."""
    available = discover()
    unknown = sorted(set(experiment_ids) - set(available))
    if unknown:
        raise SystemExit(
            f"unknown experiment id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(available))})"
        )
    experiments: Dict[str, object] = {}
    for experiment_id in experiment_ids:
        outcome = run_experiment(available[experiment_id], quiet=quiet)
        experiments[experiment_id] = outcome
        if progress is not None:
            progress(experiment_id, str(outcome["status"]))
    return {
        "schema_version": 1,
        "suite": "repro-bench",
        "experiments": experiments,
    }


def strip_wall_gauges(document: Dict[str, object]) -> None:
    """Drop host-time gauges in place.

    The m1 meta-benchmark records its wall-clock measurements as gauges
    whose final dotted segment starts with ``wall_`` (DESIGN.md §13).
    Everything else in the document is simulated time and therefore
    deterministic; with those gauges removed, two runs of the same tree
    must byte-diff clean — which is exactly how CI checks determinism.
    """
    for outcome in document["experiments"].values():  # type: ignore[union-attr]
        gauges = outcome.get("gauges")
        if not gauges:
            continue
        outcome["gauges"] = {
            name: value
            for name, value in gauges.items()
            if not name.rsplit(".", 1)[-1].startswith("wall_")
        }


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bench",
        description="Run the bench suite headlessly; emit machine-readable JSON.",
    )
    scope = parser.add_mutually_exclusive_group()
    scope.add_argument(
        "--all", action="store_true", help="run every experiment (default)"
    )
    scope.add_argument(
        "--smoke",
        action="store_true",
        help=f"run the fast subset only: {', '.join(SMOKE_EXPERIMENTS)}",
    )
    scope.add_argument(
        "--only",
        nargs="+",
        metavar="ID",
        help="run the named experiment ids only (e.g. e1_two_disk_references)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_pr10.json",
        help="output path (default: %(default)s)",
    )
    parser.add_argument(
        "--strip-wall",
        action="store_true",
        help=(
            "drop wall-clock gauges (final name segment starting with "
            "'wall_') so repeated runs byte-diff clean"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="let the benchmarks print their tables while running",
    )
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    available = discover()
    if args.list:
        for experiment_id in sorted(available):
            print(experiment_id)
        return 0
    if args.only:
        ids = list(args.only)
    elif args.smoke:
        ids = [i for i in SMOKE_EXPERIMENTS if i in available]
    else:
        ids = sorted(available)
    document = run_suite(
        ids,
        quiet=not args.verbose,
        progress=lambda experiment_id, status: print(
            f"{experiment_id:32s} {status}", file=sys.stderr
        ),
    )
    if args.strip_wall:
        strip_wall_gauges(document)
    out_path = Path(args.out)
    out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    statuses = [
        str(outcome["status"]) for outcome in document["experiments"].values()  # type: ignore[union-attr]
    ]
    print(
        f"{len(statuses)} experiment(s): {statuses.count('pass')} pass, "
        f"{statuses.count('fail')} fail, {statuses.count('error')} error "
        f"-> {out_path}",
        file=sys.stderr,
    )
    return 0 if all(status == "pass" for status in statuses) else 1


if __name__ == "__main__":
    raise SystemExit(main())
