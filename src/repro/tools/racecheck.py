"""Happens-before race detection: ``python -m repro.tools.racecheck``.

Runs real concurrent drivers — the overlapped request pipeline with a
scrubber underneath, the cluster's closed-loop contention driver, a
bounded crash-schedule sweep of the queued-writes workload — with an
:class:`~repro.analysis.monitor.AccessMonitor` installed, then asks the
detector (:func:`repro.analysis.detect`) whether any two design-level
tasks touched the same shared structure, at least one writing, without
a happens-before path between them.

The ``plant`` scenario is the tool's own negative control: a rogue
``add_done_callback`` callback reaches into the disk server's
protection map from a completion-delivery task, exactly the
interference the detector exists to catch.  Its report *must* contain
findings — a run where the plant goes unnoticed fails, the same way a
dead smoke detector fails a battery test.

Output is one JSON document (``--out``), byte-identical across runs:
everything is keyed off the simulated clock and creation-order ids —
no wall clock, no ``id()``, no hashing of addresses.  Exit status is
non-zero when any scenario misbehaves: findings on a real driver,
*no* findings on the plant, or an internal happens-before invariant
violation.

Schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "suite": "repro-racecheck",
      "ok": true,
      "scenarios": {
        "<name>": {
          "expect_findings": false,
          "ok": true,
          "tasks": 123, "edges": 456, "accesses": 789, "structures": 9,
          "hb_violations": [],
          "findings": [{"structure": ..., "first": {...}, ...}]
        }, ...
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import AccessMonitor, detect, install, report, uninstall
from repro.chaos.scheduler import CrashScheduler
from repro.chaos.workloads import ChaosVolume, QueuedWriteWorkload
from repro.cluster.system import ClusterConfig, RhodosCluster
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scheduler import CoalescingScheduler, ScanScheduler
from repro.disk_service.scrub import Scrubber
from repro.disk_service.server import Stability
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry
from repro.simkernel.future import wait, wait_all
from repro.simkernel.loop import EventLoop


# --------------------------------------------------------------- scenarios


def scenario_pipeline() -> AccessMonitor:
    """One volume, overlapped pipeline, scrubber stealing idle slots.

    Mirrored puts and contending gets go through SCAN + coalescing; a
    scrubber runs low-priority verification reads between foreground
    waves; ``drain`` and ``flush`` exercise the join edges.
    """
    clock, metrics = SimClock(), Metrics()
    monitor = install(AccessMonitor(now_fn=lambda: clock.now_us))
    volume = ChaosVolume(0, clock, metrics, DiskGeometry.small())
    server = volume.disk_server
    loop = EventLoop(clock)
    pipeline = DiskPipeline(
        server, loop, CoalescingScheduler(ScanScheduler())
    )
    extents = [server.allocate(2) for _ in range(4)]
    first_wave = []
    for index, extent in enumerate(extents):
        data = bytes([0x41 + index]) * extent.byte_size
        first_wave.append(
            server.submit_put(extent, data, stability=Stability.BOTH)
        )
    first_wave.extend(server.submit_get(extent) for extent in extents)
    wait_all(loop, first_wave)
    pipeline.drain()
    server.flush()

    scrubber = Scrubber(server, fragments_per_step=32)
    for _ in range(4):
        scrubber.step(force=True)

    second_wave = [
        server.submit_put(extents[0], b"\xEE" * extents[0].byte_size),
        server.submit_get(extents[1]),
        server.submit_get(extents[2], use_cache=False),
    ]
    wait_all(loop, second_wave)
    pipeline.drain()
    loop.run_until_idle()
    return monitor


def _cluster_op(cluster: "RhodosCluster", client: int, op_index: int) -> None:
    """One closed-loop client operation: create, write, push to platter."""
    volume = client % cluster.config.n_disks
    agent = cluster.machines[client % cluster.config.n_machines].file_agent
    descriptor = agent.create(
        AttributedName.file(f"/race/c{client}/f{op_index}", volume=str(volume))
    )
    agent.write(descriptor, bytes([client + 1]) * 8192)
    agent.close(descriptor)
    agent.flush()
    cluster.file_servers[volume].flush()


def scenario_cluster() -> AccessMonitor:
    """The cluster's concurrent driver: overlapped multi-disk service."""
    clock_slot: List[SimClock] = []
    monitor = install(
        AccessMonitor(
            now_fn=lambda: clock_slot[0].now_us if clock_slot else 0
        )
    )
    cluster = RhodosCluster(ClusterConfig(n_machines=2, n_disks=2))
    clock_slot.append(cluster.clock)
    cluster.run_concurrent(_cluster_op, n_clients=3, ops_per_client=2)
    cluster.flush_all()
    return monitor


#: Crash points the sweep scenario visits — enough to crash inside
#: submission, batch service, and finish delivery without turning a
#: smoke check into a full sweep.
SWEEP_POINTS = 10


class _BarrierQueuedWrites(QueuedWriteWorkload):
    """Queued-writes workload whose recovery records the restart barrier.

    A crash interrupts waiters mid-``wait`` — the rejoin that would
    order the mainline after the settling tasks never runs.  The
    machine-restart model says recovery observes *everything* that ran
    before the crash, so recovery opens with a full barrier.
    """

    def recover(self) -> None:
        from repro.analysis import monitor as _monitor

        _monitor.active().barrier("crash.recover")
        super().recover()


def scenario_chaos_sweep() -> AccessMonitor:
    """Bounded queued-writes crash sweep under the monitor.

    Each crash point builds a fresh system (fresh structures — runs
    cannot alias), crashes mid-write, recovers, checks.  Simulated
    clocks are per-workload, so accesses are stamped 0 here; the
    happens-before graph never consults time.
    """
    monitor = install(AccessMonitor())
    scheduler = CrashScheduler(_BarrierQueuedWrites)
    scheduler.sweep(max_points=SWEEP_POINTS)
    return monitor


def scenario_plant() -> AccessMonitor:
    """Planted interference the detector MUST flag.

    A completion callback reaches into the disk server's protection
    map (``_record_checksums`` — an internal, unchained write) from the
    finish-delivery task, while a concurrently queued get's
    verification read runs in a batch that never promised to follow
    that delivery.  Unordered write/read on the same fragments: a race.
    """
    clock, metrics = SimClock(), Metrics()
    monitor = install(AccessMonitor(now_fn=lambda: clock.now_us))
    volume = ChaosVolume(0, clock, metrics, DiskGeometry.small())
    server = volume.disk_server
    loop = EventLoop(clock)
    DiskPipeline(server, loop, CoalescingScheduler(ScanScheduler()))
    extent = server.allocate(2)
    data = b"\xAA" * extent.byte_size
    server.put(extent, data)  # seed the checksum record

    put = server.submit_put(extent, data)
    # repro-lint: allow[completion-callback-purity] the planted race this tool must detect
    put.add_done_callback(lambda _c: server._record_checksums(extent, data))
    get = server.submit_get(extent, use_cache=False)
    wait_all(loop, [put, get])
    server.pipeline.drain()
    return monitor


#: name -> (builder, expect_findings)
SCENARIOS: Dict[str, Tuple[Callable[[], AccessMonitor], bool]] = {
    "pipeline": (scenario_pipeline, False),
    "cluster": (scenario_cluster, False),
    "chaos-sweep": (scenario_chaos_sweep, False),
    "plant": (scenario_plant, True),
}


# ----------------------------------------------------------------- runner


def run_scenario(name: str) -> Dict[str, object]:
    builder, expect_findings = SCENARIOS[name]
    try:
        monitor = builder()
    finally:
        uninstall()
    findings = detect(monitor)
    document = report(monitor, findings)
    document["expect_findings"] = expect_findings
    document["ok"] = (
        bool(findings) == expect_findings and not document["hb_violations"]
    )
    return document


def run(only: Optional[List[str]] = None) -> Dict[str, object]:
    names = only or list(SCENARIOS)
    scenarios = {name: run_scenario(name) for name in names}
    return {
        "schema_version": 1,
        "suite": "repro-racecheck",
        "ok": all(entry["ok"] for entry in scenarios.values()),
        "scenarios": scenarios,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.racecheck",
        description="happens-before race detection over the concurrent drivers",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="SCENARIO",
        choices=sorted(SCENARIOS),
        help="run a subset of scenarios",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the JSON report to PATH"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, (builder, expect) in SCENARIOS.items():
            tag = "expects findings" if expect else "must be clean"
            print(f"{name:12s} {tag}: {(builder.__doc__ or '').splitlines()[0]}")
        return 0

    document = run(args.only)
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)

    for name, entry in document["scenarios"].items():
        status = "ok" if entry["ok"] else "FAIL"
        print(
            f"# {name}: {status} ({entry['tasks']} tasks, "
            f"{entry['edges']} edges, {entry['accesses']} accesses, "
            f"{len(entry['findings'])} findings)",
            file=sys.stderr,
        )
    return 0 if document["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
