"""Volume backup and restore.

The paper's transaction recovery "takes care of all sorts of failures
(**except for catastrophes**)" (section 6.6).  Catastrophes — both
stable mirrors gone, a volume physically lost — are what backups are
for.  :func:`dump_volume` walks a volume the way fsck does (rediscover
FITs from the disk, trust nothing volatile) and serialises every file's
attributes and content into one archive blob; :func:`restore_volume`
replays the archive onto any volume, preserving attributes.

The archive is self-describing and versioned; it can be stored in a
RHODOS file on another volume, shipped over a communication port, or
written outside the simulation entirely.

Caveat: restored files receive *fresh system names* (disk addresses
cannot be pinned on a live target volume), so naming-service bindings
and directory entries that referred to the lost volume must be rebound
using the mapping :func:`restore_volume` returns — the same
rebinding any real restore-to-new-media performs.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import FileServiceError
from repro.common.ids import SystemName
from repro.file_service.attributes import LockingLevel, ServiceType
from repro.file_service.server import FileServer
from repro.verify.fsck import _plausible_fit
from repro.disk_service.addresses import Extent
from repro.file_service.fit import FileIndexTable

_MAGIC = b"RBAK"
_VERSION = 1
_HEADER = struct.Struct("<4sHI")  # magic, version, n_files


@dataclass(frozen=True, slots=True)
class BackupEntry:
    """One archived file: its identity, attributes, and content."""

    fit_address: int
    generation: int
    attributes: dict
    content: bytes


def _discover_files(server: FileServer) -> List[Tuple[int, FileIndexTable]]:
    """Rediscover every FIT on the volume by scanning (fsck-style)."""
    disk = server.disk
    found = []
    for fragment in range(disk.n_fragments):
        if disk.bitmap.is_free(fragment):
            continue
        blob = disk.get(Extent(fragment, 1))
        if blob[:4] != b"RFIT":
            continue
        try:
            fit = FileIndexTable.decode(blob)
        except Exception:  # noqa: BLE001 - skip corrupt candidates
            continue
        if _plausible_fit(fit, disk.n_fragments):
            found.append((fragment, fit))
    return found


def dump_volume(server: FileServer) -> bytes:
    """Serialise every file of a volume into one archive blob."""
    entries: List[bytes] = []
    files = _discover_files(server)
    for fit_address, fit in files:
        attrs = fit.attributes
        name = SystemName(server.volume_id, fit_address, attrs.generation)
        content = server.read(name, 0, attrs.file_size)
        meta = json.dumps(
            {
                "fit": fit_address,
                "generation": attrs.generation,
                "size": attrs.file_size,
                "created_us": attrs.created_us,
                "service_type": int(attrs.service_type),
                "locking_level": int(attrs.locking_level),
                "open_count_total": attrs.open_count_total,
            },
            sort_keys=True,
        ).encode("utf-8")
        entries.append(
            struct.pack("<II", len(meta), len(content)) + meta + content
        )
    return _HEADER.pack(_MAGIC, _VERSION, len(entries)) + b"".join(entries)


def restore_volume(
    server: FileServer, archive: bytes
) -> Dict[Tuple[int, int], SystemName]:
    """Replay an archive onto a volume.

    Files get fresh system names on the target (addresses cannot be
    pinned on a live volume); the returned mapping translates each
    archived ``(fit_address, generation)`` identity to its new system
    name, which callers use to re-bind naming/directory references.
    """
    if len(archive) < _HEADER.size:
        raise FileServiceError("backup archive truncated")
    magic, version, n_files = _HEADER.unpack_from(archive)
    if magic != _MAGIC:
        raise FileServiceError("not a RHODOS backup archive")
    if version != _VERSION:
        raise FileServiceError(f"unsupported archive version {version}")
    mapping: Dict[Tuple[int, int], SystemName] = {}
    offset = _HEADER.size
    for _ in range(n_files):
        meta_len, content_len = struct.unpack_from("<II", archive, offset)
        offset += 8
        meta = json.loads(archive[offset : offset + meta_len].decode("utf-8"))
        offset += meta_len
        content = archive[offset : offset + content_len]
        offset += content_len
        if len(content) != content_len:
            raise FileServiceError("backup archive truncated mid-entry")
        name = server.create(
            service_type=ServiceType(meta["service_type"]),
            locking_level=LockingLevel(meta["locking_level"]),
        )
        if content:
            server.write(name, 0, content)
        mapping[(meta["fit"], meta["generation"])] = name
    server.flush()
    return mapping
