"""Operator-facing surface of the volume checker.

The implementation moved to :mod:`repro.verify.fsck` so the chaos
harness can consume it without a ``chaos`` → ``tools`` layer edge (the
racecheck tool in this package imports ``chaos``, which would close a
cycle).  This module is a stable re-export: every historical import of
``repro.tools.fsck`` keeps working unchanged.
"""

from repro.verify.fsck import (  # noqa: F401 - re-exported surface
    FsckReport,
    _plausible_fit,
    fsck_volume,
    sweep_replication_orphans,
    verify_checksums,
)

__all__ = [
    "FsckReport",
    "fsck_volume",
    "sweep_replication_orphans",
    "verify_checksums",
]
