"""Deterministic execution kernel for simulated concurrency.

RHODOS ran real concurrent processes on real machines; this
reproduction interleaves *client scripts* deterministically instead,
so that two-phase-locking contention, blocking and timeout-deadlock
behaviour (paper sections 6.1–6.5) are exactly reproducible.

The model: a client script is a generator that ``yield``s zero-argument
*thunks* (operations against an agent).  The :class:`InterleavedRunner`
round-robins the scripts, executing one thunk at a time.  A thunk that
must block on a lock raises :class:`LockWaitPending`; the runner parks
the client and retries the same thunk once the wait is over.  A thunk
that raises ``TransactionAbortedError`` causes the whole script to be
restarted from the beginning (the standard abort-and-retry discipline),
which is what lets the timeout-based deadlock resolution of the paper
make progress.
"""

from repro.simkernel.loop import EventLoop
from repro.simkernel.runner import (
    ClientOutcome,
    InterleavedRunner,
    LockWaitPending,
    RunReport,
)

__all__ = [
    "EventLoop",
    "InterleavedRunner",
    "LockWaitPending",
    "ClientOutcome",
    "RunReport",
]
