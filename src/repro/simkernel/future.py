"""Completion: the future primitive of the overlapped request pipeline.

A :class:`Completion` represents one in-flight request whose result
will be delivered by an :class:`~repro.simkernel.loop.EventLoop`
callback at its simulated completion time.  It is deliberately tiny —
resolve-once, synchronous callbacks, no cancellation — because the
simulation is single-threaded: "concurrency" means overlapped
*simulated* time, delivered in deterministic event order.

Callbacks run inline at resolution, in registration order, so the
order every downstream effect happens in is fixed by the order of
``add_done_callback`` calls — never by dict order or wall clock.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, List, Optional, TypeVar

from repro.analysis import monitor as _monitor
from repro.simkernel.loop import EventLoop

T = TypeVar("T")


class Completion(Generic[T]):
    """A resolve-once container for an overlapped request's outcome."""

    __slots__ = ("_done", "_value", "_error", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._value: Optional[T] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Completion[T]"], None]] = []

    # ------------------------------------------------------- producers

    def resolve(self, value: T = None) -> None:  # type: ignore[assignment]
        """Deliver a successful result; runs callbacks inline."""
        self._settle(value, None)

    def fail(self, error: BaseException) -> None:
        """Deliver a failure; ``result()`` will re-raise ``error``."""
        self._settle(None, error)

    def _settle(self, value: Optional[T], error: Optional[BaseException]) -> None:
        if self._done:
            raise RuntimeError("completion already settled")
        self._done = True
        self._value = value
        self._error = error
        # Resolve -> callback delivery: callbacks run inline here, in
        # the settling task; waiters rejoin against that task (wait()).
        _monitor.active().note_settled(self)
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # ------------------------------------------------------- consumers

    @property
    def done(self) -> bool:
        return self._done

    @property
    def failed(self) -> bool:
        return self._done and self._error is not None

    def exception(self) -> Optional[BaseException]:
        """The failure, if settled with one (None while pending or ok)."""
        return self._error

    def result(self) -> T:
        """The value; raises the failure, or RuntimeError while pending."""
        if not self._done:
            raise RuntimeError("completion still pending")
        if self._error is not None:
            raise self._error
        return self._value  # type: ignore[return-value]

    def add_done_callback(
        self, callback: Callable[["Completion[T]"], None]
    ) -> None:
        """Run ``callback(self)`` at settlement (immediately if settled)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        if not self._done:
            state = "pending"
        elif self._error is not None:
            state = f"failed({type(self._error).__name__})"
        else:
            state = "resolved"
        return f"Completion({state})"


def wait(loop: EventLoop, completion: Completion[T]) -> T:
    """Run the event loop until ``completion`` settles; return its result.

    The blocking bridge between the overlapped pipeline and synchronous
    callers: simulated time advances event-to-event exactly as
    ``run_until_idle`` would, but stops as soon as the awaited result
    is in.  Raises RuntimeError if the loop drains while the completion
    is still pending (a lost wakeup — always a bug).
    """
    loop.run_until(lambda: completion.done)
    mon = _monitor.active()
    if mon.enabled:
        # The waiter is ordered after the settling task and ONLY it —
        # other events that happened to run meanwhile made no promise.
        settled = mon.settled_task(completion)
        mon.rejoin("wait", after=() if settled is None else (settled,))
    return completion.result()


def wait_all(loop: EventLoop, completions: Iterable[Completion]) -> List[object]:
    """Wait for every completion, in order; returns their results."""
    return [wait(loop, completion) for completion in completions]
