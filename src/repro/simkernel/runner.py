"""Deterministic interleaving of transactional client scripts.

See the package docstring for the execution model.  The runner knows
nothing about locks or transactions; it only understands the two
control-flow signals scripts can raise:

* :class:`LockWaitPending` — "park me; retry this same operation when
  ``ready()`` says so".  Raised from inside transaction-agent calls when
  a two-phase-locking acquire must wait (paper section 6.3: the
  transaction "will be put into the wait queue").
* ``TransactionAbortedError`` — restart the whole script from scratch,
  which is how a timeout-aborted transaction (paper section 6.4)
  eventually completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import TransactionAbortedError

#: A client script: called with nothing, returns a generator that yields
#: zero-argument thunks and receives each thunk's result via ``send``.
Script = Callable[[], Generator[Callable[[], Any], Any, None]]


class LockWaitPending(Exception):
    """Raised by an operation that must wait for a lock.

    Attributes:
        item: opaque description of the contended data item (for reports).
        ready: callable returning True once the wait is over (lock granted,
            or the waiter itself was aborted — retrying then surfaces the
            abort as ``TransactionAbortedError``).
    """

    def __init__(self, item: Any, ready: Callable[[], bool]) -> None:
        super().__init__(f"waiting for lock on {item!r}")
        self.item = item
        self.ready = ready


@dataclass
class ClientOutcome:
    """Per-client statistics accumulated by the runner."""

    client_id: int
    commits: int = 0
    aborts: int = 0
    restarts: int = 0
    lock_waits: int = 0
    ops_executed: int = 0
    finished_at_us: Optional[int] = None


@dataclass
class RunReport:
    """Aggregate result of one :meth:`InterleavedRunner.run`."""

    clients: List[ClientOutcome] = field(default_factory=list)
    elapsed_us: int = 0
    total_ops: int = 0

    @property
    def total_commits(self) -> int:
        return sum(c.commits for c in self.clients)

    @property
    def total_aborts(self) -> int:
        return sum(c.aborts for c in self.clients)

    @property
    def total_lock_waits(self) -> int:
        return sum(c.lock_waits for c in self.clients)

    def throughput_per_s(self) -> float:
        """Committed scripts per simulated second."""
        if self.elapsed_us == 0:
            return 0.0
        return self.total_commits / (self.elapsed_us / 1_000_000)


class _ClientState:
    __slots__ = (
        "script",
        "gen",
        "pending_thunk",
        "pending_wait",
        "outcome",
        "done",
        "repeat_remaining",
    )

    def __init__(self, script: Script, client_id: int, repeats: int) -> None:
        self.script = script
        self.gen = script()
        self.pending_thunk: Optional[Callable[[], Any]] = None
        self.pending_wait: Optional[LockWaitPending] = None
        self.outcome = ClientOutcome(client_id=client_id)
        self.done = False
        self.repeat_remaining = repeats


class InterleavedRunner:
    """Round-robin scheduler for client scripts over simulated time.

    Args:
        clock: the system's shared simulated clock.
        think_time_us: simulated time charged per executed operation,
            modelling client processing between file-facility calls.
        on_stall: called when every live client is parked waiting; must
            make progress (e.g. advance the clock to the next lock-timeout
            expiry and fire the deadlock detector) and return True, or
            return False to declare the system wedged.
        on_step: called after every executed operation with the current
            time; transaction benches wire this to the lock-timeout
            detector so expiries happen as load runs.
        max_restarts: per-client limit on abort-and-retry cycles, after
            which the client is marked failed (prevents livelock from
            pathological configurations).
    """

    def __init__(
        self,
        clock: SimClock,
        *,
        think_time_us: int = 100,
        on_stall: Optional[Callable[[int], bool]] = None,
        on_step: Optional[Callable[[int], None]] = None,
        max_restarts: int = 1000,
    ) -> None:
        self.clock = clock
        self.think_time_us = think_time_us
        self.on_stall = on_stall
        self.on_step = on_step
        self.max_restarts = max_restarts
        self._clients: List[_ClientState] = []

    def add_client(self, script: Script, *, repeats: int = 1) -> int:
        """Register a script; it will run to completion ``repeats`` times.

        Returns the client id.
        """
        client_id = len(self._clients)
        self._clients.append(_ClientState(script, client_id, repeats))
        return client_id

    def run(self, *, max_steps: int = 10_000_000) -> RunReport:
        """Interleave all clients until every script completes.

        Raises RuntimeError if the system wedges (every client parked and
        ``on_stall`` cannot make progress) or ``max_steps`` is exceeded.
        """
        start_us = self.clock.now_us
        steps = 0
        while True:
            live = [c for c in self._clients if not c.done]
            if not live:
                break
            progressed = False
            for client in live:
                if client.done:
                    continue
                if client.pending_wait is not None:
                    if not client.pending_wait.ready():
                        continue
                    client.pending_wait = None
                self._step(client)
                progressed = True
                steps += 1
                if steps > max_steps:
                    raise RuntimeError(f"runner exceeded {max_steps} steps")
            if not progressed:
                if self.on_stall is None or not self.on_stall(self.clock.now_us):
                    stuck = [c.outcome.client_id for c in live]
                    raise RuntimeError(f"all clients wedged waiting: {stuck}")
        report = RunReport(
            clients=[c.outcome for c in self._clients],
            elapsed_us=self.clock.now_us - start_us,
            total_ops=sum(c.outcome.ops_executed for c in self._clients),
        )
        return report

    # ------------------------------------------------------------ steps

    def _step(self, client: _ClientState) -> None:
        """Execute one operation for ``client`` (fetch thunk, run it)."""
        if client.pending_thunk is None:
            try:
                client.pending_thunk = client.gen.send(None)
            except StopIteration:
                self._finish_iteration(client)
                return
        thunk = client.pending_thunk
        self.clock.advance_us(self.think_time_us)
        try:
            result = thunk()
        except LockWaitPending as wait:
            client.pending_wait = wait
            client.outcome.lock_waits += 1
            if self.on_step is not None:
                self.on_step(self.clock.now_us)
            return
        except TransactionAbortedError:
            self._restart(client)
            if self.on_step is not None:
                self.on_step(self.clock.now_us)
            return
        client.outcome.ops_executed += 1
        client.pending_thunk = None
        if self.on_step is not None:
            self.on_step(self.clock.now_us)
        try:
            client.pending_thunk = client.gen.send(result)
        except StopIteration:
            self._finish_iteration(client)
        except TransactionAbortedError:
            # The script body itself surfaced an abort (e.g. tend failed).
            self._restart(client)

    def _finish_iteration(self, client: _ClientState) -> None:
        client.outcome.commits += 1
        client.repeat_remaining -= 1
        if client.repeat_remaining <= 0:
            client.done = True
            client.outcome.finished_at_us = self.clock.now_us
        else:
            client.gen = client.script()
            client.pending_thunk = None
            client.pending_wait = None

    def _restart(self, client: _ClientState) -> None:
        client.outcome.aborts += 1
        client.outcome.restarts += 1
        client.gen.close()
        if client.outcome.restarts > self.max_restarts:
            client.done = True
            client.outcome.finished_at_us = self.clock.now_us
            return
        client.gen = client.script()
        client.pending_thunk = None
        client.pending_wait = None
