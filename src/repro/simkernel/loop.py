"""A minimal deterministic event loop over simulated time.

Components that need "do this later in simulated time" — lease expiry,
retransmission timers, cache flush daemons — schedule callbacks here.
Events at equal times fire in scheduling order, so runs are fully
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

from repro.analysis import monitor as _monitor
from repro.common.clock import SimClock


class EventLoop:
    """Priority queue of timed callbacks sharing a :class:`SimClock`."""

    __slots__ = ("clock", "_heap", "_seq", "_pending", "_cancelled", "_ran_tasks")

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: List[Tuple[int, int, Callable[[], None], int]] = []
        self._seq = 0
        # _pending tracks handles still in the heap; _cancelled is always
        # a subset of it, so neither set can outgrow the heap no matter
        # how callers cancel (late, twice, or with made-up handles).
        self._pending: set[int] = set()
        self._cancelled: set[int] = set()
        # Monitor task ids of callbacks run while an analysis monitor is
        # installed; run_until_idle's full-barrier rejoin consumes them.
        # Stays empty (zero growth) in normal operation.
        self._ran_tasks: List[int] = []

    def call_at(self, when_us: int, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` for absolute time ``when_us``; returns a handle."""
        if when_us < self.clock.now_us:
            when_us = self.clock.now_us
        self._seq += 1
        # The spawning task is the happens-before source of the event:
        # the callback is ordered after its scheduler, never after
        # whichever stack frame happens to pump the loop.
        spawn = _monitor.active().current()
        heapq.heappush(self._heap, (int(when_us), self._seq, callback, spawn))
        self._pending.add(self._seq)
        return self._seq

    def call_later(self, delay_us: int, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` ``delay_us`` microseconds from now."""
        return self.call_at(self.clock.now_us + max(0, int(delay_us)), callback)

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled callback by its handle (no-op if already run)."""
        if handle in self._pending:
            self._cancelled.add(handle)
            self._audit_heap()

    def _audit_heap(self) -> None:
        """Keep the ready heap within 2x of its live entries.

        Cancellation is lazy (entries are skipped when they surface at
        the heap top), which is O(log n) per event — but a workload
        that cancels far more than it runs (retransmission timers,
        lease renewals) would otherwise grow the heap without bound and
        inflate every push/pop to O(log dead+live).  When cancelled
        entries outnumber live ones, rebuild the heap from the live
        entries alone: O(live) when it fires, amortised O(1) per
        cancel, and every later heap operation stays O(log live).
        """
        if len(self._cancelled) > 64 and 2 * len(self._cancelled) > len(self._heap):
            self._heap = [
                entry for entry in self._heap if entry[1] not in self._cancelled
            ]
            heapq.heapify(self._heap)
            self._pending.difference_update(self._cancelled)
            self._cancelled.clear()

    def next_event_time(self) -> int | None:
        """Time of the earliest pending (non-cancelled) event, or None."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def run_due(self) -> int:
        """Run every event due at or before the current time; returns count run."""
        ran = 0
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0][0] > self.clock.now_us:
                return ran
            when, seq, callback, spawn = heapq.heappop(self._heap)
            self._pending.discard(seq)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            mon = _monitor.active()
            if mon.enabled:
                # bind=False: only the spawn edge orders the event task —
                # the pumping stack frame is incidental execution order.
                with mon.task(
                    f"event#{seq}@{when}us", after=(spawn,), bind=False
                ) as tid:
                    callback()
                self._ran_tasks.append(tid)
            else:
                callback()
            ran += 1

    def run_until_idle(self, *, max_events: int = 1_000_000) -> int:
        """Advance time event-to-event until no events remain; returns count run."""
        ran = 0
        mark = len(self._ran_tasks)
        while ran < max_events:
            when = self.next_event_time()
            if when is None:
                mon = _monitor.active()
                if mon.enabled and len(self._ran_tasks) > mark:
                    # Full-barrier contract: code after run_until_idle
                    # sees the effects of every event it drained.
                    mon.rejoin("loop.idle", after=tuple(self._ran_tasks[mark:]))
                return ran
            self.clock.advance_to(when)
            ran += self.run_due()
        raise RuntimeError(f"event loop did not go idle within {max_events} events")

    def run_until(
        self, predicate: Callable[[], bool], *, max_events: int = 1_000_000
    ) -> int:
        """Advance time event-to-event until ``predicate()`` holds.

        The blocking bridge for synchronous callers awaiting an
        overlapped completion: events already due run first, then time
        jumps to each next event in turn.  Raises RuntimeError if the
        loop drains while the predicate is still false (a lost wakeup)
        or ``max_events`` is exceeded; returns the events run.
        """
        ran = self.run_due()
        while ran < max_events:
            if predicate():
                return ran
            when = self.next_event_time()
            if when is None:
                raise RuntimeError(
                    "event loop drained with the awaited condition still false"
                )
            self.clock.advance_to(when)
            ran += self.run_due()
        raise RuntimeError(f"condition not reached within {max_events} events")

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            _, seq, _, _ = heapq.heappop(self._heap)
            self._pending.discard(seq)
            self._cancelled.discard(seq)
