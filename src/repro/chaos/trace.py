"""Crash-point numbering: the operation trace of a volume group.

The crash-schedule explorer needs one fact the fault injector alone
cannot give it: a *global*, deterministic numbering of every physical
write a workload performs — across the data disk and both stable
mirrors of a volume (or several volumes).  :class:`CrashPointMonitor`
attaches to a group of :class:`~repro.simdisk.disk.SimDisk` instances
and numbers each write as one **crash point**; arming it at point *k*
crashes the whole group during exactly that write, with a
deterministic torn prefix, which is how the sweep in
:mod:`repro.chaos.scheduler` enumerates every instant the machine
hosting a volume could die.

The trace also records careful-write sync boundaries reported by
:class:`~repro.simdisk.stable.StableStore`, so coverage reports can
attribute crash points to layers (data disk, stable mirrors, careful
writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.simdisk.disk import SimDisk
from repro.simdisk.faults import FaultInjector

#: Knuth's multiplicative hash constant — used to derive a deterministic
#: but well-scattered torn-prefix length from the crash-point index, so
#: successive crash points exercise different tear positions without any
#: hidden RNG state.
_SCATTER = 2654435761


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One recorded operation of the volume group.

    Attributes:
        index: crash-point number (1-based) for physical writes; 0 for
            marker entries that are not crashable instants.
        kind: ``"write"`` or ``"stable-sync"``.
        disk_id: disk the operation touched (or the sync's store tag).
        start: first sector of the write (or the record's slot).
        n_sectors: sectors covered.
        label: extra context (the stable key for sync markers).
    """

    index: int
    kind: str
    disk_id: str
    start: int
    n_sectors: int
    label: str = ""

    def layer(self) -> str:
        """Coarse layer attribution for the coverage table."""
        if self.kind == "stable-sync":
            return "careful-write sync"
        if ".stable_" in self.disk_id:
            return "stable mirror"
        return "data disk"


class CrashPointMonitor:
    """Numbers every physical write across a group of disks.

    One monitor is shared by all disks of the system under test (data
    disks plus stable mirrors).  Unarmed, it only records the trace —
    a *counting run*.  Armed at crash point ``k`` it lets writes 1..k-1
    proceed, then crashes **every** attached disk during write ``k``
    (machine-crash semantics: the host dies, all its drives stop), with
    ``torn_sectors(k)`` sectors of the in-flight write surviving.
    """

    def __init__(self) -> None:
        self.disks: List[SimDisk] = []
        self.trace: List[TraceEntry] = []
        self.writes_seen = 0
        self.crash_at: Optional[int] = None
        self.fired_at: Optional[int] = None

    # ------------------------------------------------------- wiring

    def attach(self, *disks: SimDisk) -> "CrashPointMonitor":
        """Observe ``disks``; their writes join the global numbering."""
        for disk in disks:
            disk.faults.monitor = self
            self.disks.append(disk)
        return self

    def arm(self, crash_point: int) -> None:
        """Crash the whole group during write number ``crash_point``."""
        if crash_point < 1:
            raise ValueError("crash point must be >= 1")
        self.crash_at = crash_point
        self.fired_at = None

    def disarm(self) -> None:
        self.crash_at = None

    # ----------------------------------------------------- callbacks

    def on_write(
        self, faults: FaultInjector, disk_id: str, start: int, n_sectors: int
    ) -> Optional[int]:
        """FaultInjector hook: number the write, maybe crash the group."""
        self.writes_seen += 1
        self.trace.append(
            TraceEntry(self.writes_seen, "write", disk_id, start, n_sectors)
        )
        if self.crash_at is None or self.writes_seen != self.crash_at:
            return None
        self.fired_at = self.writes_seen
        self.crash_at = None  # recovery writes must not re-crash
        for disk in self.disks:
            disk.faults.crashed = True
            disk.faults.last_crash_note = (
                f"chaos crash point {self.fired_at} on {disk_id} "
                f"(deterministic; re-run with --only {self.fired_at})"
            )
        return self.torn_sectors(self.fired_at, n_sectors)

    def note_stable_sync(self, key: str, start: int, n_sectors: int) -> None:
        """StableStore hook: both mirror copies of ``key`` are on disk."""
        self.trace.append(
            TraceEntry(0, "stable-sync", "stable", start, n_sectors, label=key)
        )

    # ------------------------------------------------------ queries

    @staticmethod
    def torn_sectors(crash_point: int, n_sectors: int) -> int:
        """Deterministic surviving-prefix length for a torn write."""
        return (crash_point * _SCATTER >> 7) % (n_sectors + 1)

    def write_entries(self) -> List[TraceEntry]:
        return [entry for entry in self.trace if entry.kind == "write"]

    def entry_at(self, crash_point: int) -> Optional[TraceEntry]:
        for entry in self.trace:
            if entry.kind == "write" and entry.index == crash_point:
                return entry
        return None

    def __repr__(self) -> str:
        armed = f", armed at {self.crash_at}" if self.crash_at else ""
        return (
            f"CrashPointMonitor({len(self.disks)} disks, "
            f"{self.writes_seen} writes{armed})"
        )
