"""Systematic crash-point exploration with recovery-invariant checking.

The subsystem that turns the paper's reliability claims into an
exhaustive, deterministic test: every physical write a workload
performs is a numbered crash point (:mod:`repro.chaos.trace`), a
scheduler crashes a fresh system at each one, runs recovery, and
checks the invariants (:mod:`repro.chaos.invariants`) plus the
workload's own content promises (:mod:`repro.chaos.workloads`).

Entry points: ``python -m repro.chaos.sweep --workload append-overwrite``
(crash-point sweep) and ``python -m repro.chaos.availability`` (the
crash/restart availability campaign: mixed workload over a replicated
cluster while volumes fail and recover, SLO invariants asserted).
"""

from repro.chaos.invariants import check_volume
from repro.chaos.scheduler import CrashScheduler, PointResult, SweepReport
from repro.chaos.trace import CrashPointMonitor, TraceEntry
from repro.chaos.workloads import (
    WORKLOADS,
    AppendOverwriteWorkload,
    ChaosWorkload,
    TransactionCommitWorkload,
    TwoVolumeCommitWorkload,
)

__all__ = [
    "AppendOverwriteWorkload",
    "ChaosWorkload",
    "CrashPointMonitor",
    "CrashScheduler",
    "PointResult",
    "SweepReport",
    "TraceEntry",
    "TransactionCommitWorkload",
    "TwoVolumeCommitWorkload",
    "WORKLOADS",
    "check_volume",
]
