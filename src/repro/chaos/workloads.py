"""Workloads the crash-schedule explorer sweeps.

Each workload builds a fresh, fully deterministic system (its own
clock, metrics, disks — all seeded, nothing wall-clock dependent), runs
a fixed operation script against it, knows how to run the recovery
path after a crash, and can check its own *content promises* on top of
the structural invariants in :mod:`repro.chaos.invariants`.

Content promises are tracked as the script runs:

* the **basic** file service promises only that data a completed
  ``flush`` made durable survives exactly; files modified since their
  last flush are *in flux* and get structural checks only (the basic
  service makes no atomicity promise — paper section 3);
* the **transaction** service promises all-or-nothing: at every crash
  instant the workload maintains the *admissible set* of complete
  post-recovery contents ({OLD}, {OLD, NEW} during tend, {NEW} after),
  and a recovered state outside the set is a violation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.chaos.invariants import check_volume
from repro.chaos.trace import CrashPointMonitor
from repro.common.clock import SimClock
from repro.common.errors import MediaError
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.disk_service.addresses import Extent
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scheduler import CoalescingScheduler, ScanScheduler
from repro.disk_service.scrub import Scrubber
from repro.disk_service.server import DiskServer, Source, Stability
from repro.file_service.attributes import LockingLevel
from repro.file_service.server import FileServer
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.raid import ArrayState, RaidRebuilder, StripedVolume
from repro.simdisk.stable import StableStore
from repro.simkernel.loop import EventLoop
from repro.transactions.agent import TransactionAgentHost
from repro.transactions.coordinator import TransactionCoordinator


class ChaosVolume:
    """One volume's full stack: data disk, stable mirrors, servers."""

    def __init__(
        self,
        volume_id: int,
        clock: SimClock,
        metrics: Metrics,
        geometry: DiskGeometry,
    ) -> None:
        self.volume_id = volume_id
        self.disk = SimDisk(f"chaos{volume_id}", geometry, clock, metrics)
        self.stable_a = SimDisk(
            f"chaos{volume_id}.stable_a", geometry, clock, metrics
        )
        self.stable_b = SimDisk(
            f"chaos{volume_id}.stable_b", geometry, clock, metrics
        )
        self.stable = StableStore(self.stable_a, self.stable_b)
        self.disk_server = DiskServer(self.disk, self.stable, clock, metrics)
        self.file_server = FileServer(
            volume_id, self.disk_server, clock, metrics
        )

    @property
    def disks(self) -> Tuple[SimDisk, SimDisk, SimDisk]:
        return (self.disk, self.stable_a, self.stable_b)

    def repair(self) -> None:
        for disk in self.disks:
            disk.repair()


class ChaosWorkload:
    """Base: a deterministic script plus its recovery and checks.

    Construction builds the whole system and attaches one
    :class:`CrashPointMonitor` to every disk; :meth:`run` executes the
    script (raising ``DiskCrashedError`` when the armed monitor fires);
    :meth:`recover` runs the machine-restart path; :meth:`check`
    returns invariant violations (empty = healthy).
    """

    name = "?"

    def __init__(self) -> None:
        self.clock = SimClock()
        self.metrics = Metrics()
        self.monitor = CrashPointMonitor()
        self.volumes: List[ChaosVolume] = []
        #: Set True before :meth:`recover` to exercise the deliberately
        #: broken recovery path (coordinator.unsafe_skip_redo) that the
        #: sweep must detect.  Base workloads ignore it.
        self.break_recovery = False
        self.build()

    def build(self) -> None:
        raise NotImplementedError

    def run(self) -> None:
        raise NotImplementedError

    def recover(self) -> None:
        """Machine restart: repair drives, rebuild state from disk."""
        for volume in self.volumes:
            volume.repair()
            volume.stable.rebuild_directory()
            volume.stable.recover()
            volume.file_server.recover()

    def check(self) -> List[str]:
        violations: List[str] = []
        for volume in self.volumes:
            violations.extend(check_volume(volume.file_server))
        violations.extend(self.check_content())
        return violations

    def check_content(self) -> List[str]:
        return []

    # ------------------------------------------------------- helpers

    def add_volume(self, volume_id: int) -> ChaosVolume:
        volume = ChaosVolume(
            volume_id, self.clock, self.metrics, DiskGeometry.small()
        )
        self.monitor.attach(*volume.disks)
        self.volumes.append(volume)
        return volume


class AppendOverwriteWorkload(ChaosWorkload):
    """Basic file service: creates, appends, overwrites, deletes.

    Content promise: after each completed ``flush``, the flushed
    contents are durable and must survive any later crash exactly —
    until the file is written again, which puts it back in flux.
    """

    name = "append-overwrite"

    def build(self) -> None:
        self.volume = self.add_volume(0)
        self.names: Dict[str, SystemName] = {}
        self.expected: Dict[str, bytes] = {}
        self.durable: Dict[str, Optional[bytes]] = {}  # None = deleted
        self.in_flux: set[str] = set()

    def run(self) -> None:
        server = self.volume.file_server
        self._create("a")
        self._write("a", 0, b"A" * (2 * BLOCK_SIZE + BLOCK_SIZE // 2))
        self._flush()
        self._create("b")
        self._write("b", 0, b"B" * (BLOCK_SIZE + 100))
        self._write("a", len(self.expected["a"]), b"a" * BLOCK_SIZE)
        self._flush()
        self._write("a", BLOCK_SIZE // 2, b"x" * 700)
        self._write("b", 0, b"Y" * 256)
        self._flush()
        self.in_flux.add("b")
        server.delete(self.names["b"])
        self.durable["b"] = None
        self.in_flux.discard("b")
        self._flush()

    def check_content(self) -> List[str]:
        server = self.volume.file_server
        violations: List[str] = []
        for label, durable in self.durable.items():
            if label in self.in_flux:
                continue  # no promise: modified since its last flush
            name = self.names[label]
            if durable is None:
                if server.exists(name):
                    violations.append(
                        f"file {label!r}: deleted before the crash but "
                        f"resurrected by recovery"
                    )
                continue
            if not server.exists(name):
                violations.append(
                    f"file {label!r}: flushed before the crash but lost"
                )
                continue
            content = server.read(name, 0, len(durable) + 1)
            if content != durable:
                violations.append(
                    f"file {label!r}: durable content changed by the crash "
                    f"(expected {len(durable)} bytes, got {len(content)}, "
                    f"first divergence at byte "
                    f"{_first_divergence(durable, content)})"
                )
        return violations

    # ------------------------------------------------------- internal

    def _create(self, label: str) -> None:
        self.in_flux.add(label)
        self.names[label] = self.volume.file_server.create()
        self.expected[label] = b""

    def _write(self, label: str, offset: int, data: bytes) -> None:
        self.in_flux.add(label)
        old = self.expected[label]
        if len(old) < offset:
            old += bytes(offset - len(old))
        self.expected[label] = old[:offset] + data + old[offset + len(data) :]
        self.volume.file_server.write(self.names[label], offset, data)

    def _flush(self) -> None:
        self.volume.file_server.flush()
        for label in list(self.in_flux):
            self.durable[label] = self.expected[label]
        self.in_flux.clear()


class QueuedWriteWorkload(AppendOverwriteWorkload):
    """The append-overwrite script served through the request pipeline.

    Same operations, same content promises — but every flush batches
    its dirty blocks through a :class:`DiskPipeline` with SCAN +
    adjacent-extent coalescing, so physical writes happen at
    *queue-drain* time and adjacent blocks land in one merged disk
    reference.  Sweeping this workload proves the recovery invariants
    survive coalesced writes: a crash mid-batch tears one merged
    reference and the recovery path must still honour every durable
    promise the script made.
    """

    name = "queued-writes"

    def build(self) -> None:
        super().build()
        self.loop = EventLoop(self.clock)
        self.pipeline = DiskPipeline(
            self.volume.disk_server,
            self.loop,
            CoalescingScheduler(ScanScheduler()),
        )


class ScrubRepairWorkload(ChaosWorkload):
    """Disk-server level: mirrored puts, injected rot, scrub repair.

    The script establishes mirrored extents (``Stability.BOTH`` puts),
    flushes so the protection record (checksums + mirrored set) is
    checkpointed, then injects deterministic media failures — at-rest
    byte rot on one extent, a latent unreadable sector on another
    (platter physics: neither injection is a numbered write) — and
    runs one full scrub cycle.  Every scrub repair goes through the
    ordinary put machinery, so each is a crash point: sweeping this
    workload proves the scrubber itself is crash-safe.

    Content promise: everything flushed before the crash reads back
    byte-exact after recovery plus one forced scrub cycle — corruption
    is either repaired or surfaces as an error, never as silently
    wrong bytes — and the stable copies still agree.
    """

    name = "scrub-repair"

    FILLS = b"ABC"
    EXTENT_FRAGMENTS = 2

    def build(self) -> None:
        self.volume = self.add_volume(0)
        self.extents: Dict[str, Extent] = {}
        self.expected: Dict[str, bytes] = {}
        self.durable: set[str] = set()

    def run(self) -> None:
        server = self.volume.disk_server
        for fill in self.FILLS:
            label = chr(fill)
            extent = server.allocate(self.EXTENT_FRAGMENTS)
            payload = bytes([fill]) * extent.byte_size
            self.extents[label] = extent
            self.expected[label] = payload
            server.put(extent, payload, stability=Stability.BOTH)
        server.flush()  # checkpoints bitmap, checksums, mirrored set
        self.durable = set(self.expected)
        disk = self.volume.disk
        rotten = self.extents["A"]
        disk.corrupt_sectors(rotten.first_sector, 1)
        failing = self.extents["B"]
        disk.faults.schedule_media_error(failing.first_sector + 1)
        Scrubber(server).run_cycle()

    def recover(self) -> None:
        super().recover()
        # Post-restart scrub: complete any repair the crash interrupted
        # (and find anything the pre-crash cycle never reached) before
        # the checks run.  force is implicit — run_cycle always forces.
        Scrubber(self.volume.disk_server).run_cycle()

    def check_content(self) -> List[str]:
        server = self.volume.disk_server
        violations: List[str] = []
        for label in sorted(self.durable):
            extent, payload = self.extents[label], self.expected[label]
            try:
                content = server.get(extent, use_cache=False)
            except MediaError as exc:
                violations.append(
                    f"extent {label!r}: unreadable after scrub ({exc})"
                )
                continue
            if content != payload:
                violations.append(
                    f"extent {label!r}: content diverged after scrub "
                    f"(first divergence at byte "
                    f"{_first_divergence(payload, content)})"
                )
            if server.get(extent, source=Source.STABLE) != payload:
                violations.append(f"extent {label!r}: stable copy diverged")
        return violations


class _TransactionalWorkload(ChaosWorkload):
    """Shared machinery for the transaction-service workloads."""

    #: (label, volume_id) pairs of the files the script commits to.
    FILES: List[Tuple[str, int]] = []
    BLOCKS = 2

    def build(self) -> None:
        for _, volume_id in self.FILES:
            if not any(v.volume_id == volume_id for v in self.volumes):
                self.add_volume(volume_id)
        self.naming = NamingService(self.metrics)
        self.coordinator = TransactionCoordinator(self.clock, self.metrics)
        for volume in self.volumes:
            self.coordinator.register_volume(volume.file_server)
        self.host = TransactionAgentHost(
            "chaos", self.naming, self.coordinator, self.clock, self.metrics
        )
        self.names: Dict[str, SystemName] = {}
        #: Admissible complete contents per file at the current instant,
        #: or None while the script is between promises (setup in flux).
        #: Entries are tuples of per-FILES-order contents, so multi-
        #:  volume atomicity is checked jointly, not per volume.
        self.admissible: Optional[List[Tuple[bytes, ...]]] = None

    def _old(self, label: str) -> bytes:
        return label.upper().encode("ascii")[:1] * (self.BLOCKS * BLOCK_SIZE)

    def _new(self, label: str) -> bytes:
        return label.lower().encode("ascii")[:1] * (self.BLOCKS * BLOCK_SIZE)

    def run(self) -> None:
        # Seed transaction: create every file, write OLD, commit.
        tid = self.host.tbegin()
        descriptors = {}
        for label, volume_id in self.FILES:
            descriptor = self.host.tcreate(
                tid,
                AttributedName.file(f"/{label}"),
                volume_id=volume_id,
                locking_level=LockingLevel.PAGE,
            )
            self.names[label] = self.host.system_name_of(tid, descriptor)
            self.host.twrite(tid, descriptor, self._old(label))
            descriptors[label] = descriptor
        old = tuple(self._old(label) for label, _ in self.FILES)
        empty = tuple(b"" for _ in self.FILES)
        # During the seed commit the files go from empty to OLD; any
        # mix after recovery breaks all-or-nothing.
        self.admissible = [empty, old]
        self.host.tend(tid)
        self.admissible = [old]

        # The measured transaction: overwrite everything with NEW.
        tid = self.host.tbegin()
        for label, _ in self.FILES:
            descriptor = self.host.topen(
                tid, AttributedName.file(f"/{label}")
            )
            self.host.tpwrite(tid, descriptor, self._new(label), 0)
        new = tuple(self._new(label) for label, _ in self.FILES)
        self.admissible = [old, new]
        self.host.tend(tid)
        self.admissible = [new]
        for volume in self.volumes:
            volume.file_server.flush()

    def recover(self) -> None:
        self.coordinator.unsafe_skip_redo = self.break_recovery
        for volume in self.volumes:
            volume.repair()
            volume.stable.rebuild_directory()
        for volume in self.volumes:
            self.coordinator.recover_volume(volume.volume_id)

    def check_content(self) -> List[str]:
        if self.admissible is None:
            return []
        observed = []
        for label, volume_id in self.FILES:
            server = self.coordinator.file_server(volume_id)
            name = self.names[label]
            content = (
                server.read(name, 0, self.BLOCKS * BLOCK_SIZE + 1)
                if server.exists(name)
                else b""
            )
            observed.append(content)
        state = tuple(observed)
        if state in self.admissible:
            return []
        return [
            "all-or-nothing broken: recovered contents "
            + ", ".join(
                f"{label}={_describe(content)}"
                for (label, _), content in zip(self.FILES, observed)
            )
            + " match no admissible outcome "
            + str([tuple(_describe(c) for c in option) for option in self.admissible])
        ]


class TransactionCommitWorkload(_TransactionalWorkload):
    """Single-volume commit: intentions list + flag flip + redo."""

    name = "txn-commit"
    FILES = [("f", 0)]


class TwoVolumeCommitWorkload(_TransactionalWorkload):
    """One transaction spanning two volumes: the decision-record 2PC.

    A crash between the per-volume flag flips must still yield a joint
    all-old or all-new outcome — this is what the ``txndecision:``
    record on the coordinator volume guarantees.
    """

    name = "two-volume"
    FILES = [("p", 1), ("q", 2)]
    BLOCKS = 1


class _RaidChaosWorkload(ChaosWorkload):
    """Shared machinery for the RAID-tier workloads.

    These run *below* the disk service: the script drives a
    :class:`~repro.simdisk.raid.StripedVolume` directly, keeping a
    shadow image of every **acked** ``write_sectors`` call.  There is
    no file stack, so ``self.volumes`` stays empty and the content
    promise is the array's own:

    * every byte of an acked write reads back exactly after recovery —
      including bytes served for a stale member through parity
      reconstruction (zero acked-write loss);
    * the region covered by the single in-flight write is *in flux*
      (old, new, or torn — the array promises nothing below an ack);
    * once recovery completes the rebuild, the parity invariant — the
      XOR of a row's data chunks equals its parity chunk — holds on
      **every** stripe row, read raw from the member platters.
    """

    LEVEL = "raid5"
    MEMBERS = 4
    CHUNK_SECTORS = 4

    def build(self) -> None:
        geometry = DiskGeometry(cylinders=4, heads=2, sectors_per_track=8)
        self.members = [
            SimDisk(f"raidchaos.m{index}", geometry, self.clock, self.metrics)
            for index in range(self.MEMBERS)
        ]
        self.array = StripedVolume(
            "raidchaos",
            self.members,
            level=self.LEVEL,
            chunk_sectors=self.CHUNK_SECTORS,
            metrics=self.metrics,
        )
        # Attach after construction: the freshly initialised
        # superblocks are the pre-script state, not crash points.
        self.monitor.attach(*self.members)
        self.sector_size = geometry.sector_size
        self.logical_sectors = self.array.geometry.total_sectors
        self.shadow = bytearray(self.logical_sectors * self.sector_size)
        #: The single in-flight (un-acked) write, as (start, n_sectors).
        self.flux: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------- helpers

    def _write(self, start: int, fill: str, n_sectors: int) -> None:
        """One logical write; the shadow is updated only on the ack."""
        payload = fill.encode() * (n_sectors * self.sector_size)
        self.flux = (start, n_sectors)
        self.array.write_sectors(start, payload)
        self.flux = None
        base = start * self.sector_size
        self.shadow[base : base + len(payload)] = payload

    def _assert_readback(self) -> None:
        """In-script sanity read (reads add no crash points)."""
        content = self.array.read_sectors(0, self.logical_sectors)
        if content != bytes(self.shadow):
            raise AssertionError(
                "raid workload script read back wrong bytes at "
                f"byte {_first_divergence(bytes(self.shadow), content)}"
            )

    def recover(self) -> None:
        """Machine restart: repair drives, reassemble, rebuild to OPTIMAL."""
        for member in self.members:
            member.repair()
        self.array.recover(resync=True)
        for index in self.array.failed_members:
            self.array.replace_member(index, blank=True)
            RaidRebuilder(self.array, chunks_per_step=8).run_cycle()
            break  # at most one stale member is recoverable

    def check_content(self) -> List[str]:
        violations: List[str] = []
        if self.array.state is not ArrayState.OPTIMAL:
            violations.append(
                f"array recovered to {self.array.state.name}, not OPTIMAL "
                f"(failed members {self.array.failed_members})"
            )
            return violations
        size = self.sector_size
        content = self.array.read_sectors(0, self.logical_sectors)
        flux_lo, flux_hi = (0, 0) if self.flux is None else (
            self.flux[0], self.flux[0] + self.flux[1]
        )
        for sector in range(self.logical_sectors):
            if flux_lo <= sector < flux_hi:
                continue  # covered by the un-acked in-flight write
            base = sector * size
            got = content[base : base + size]
            want = bytes(self.shadow[base : base + size])
            if got != want:
                violations.append(
                    f"logical sector {sector}: acked content diverged "
                    f"(expected {_describe(want)}, read {_describe(got)})"
                )
        violations.extend(self._check_parity())
        return violations

    def _check_parity(self) -> List[str]:
        """The parity invariant, read raw from the member platters."""
        if self.array.level != 5:
            return []
        violations: List[str] = []
        chunk = self.array.chunk_sectors
        meta = self.array.meta_chunks
        for row in range(self.array.member_chunks - meta):
            physical = (meta + row) * chunk
            acc: Optional[bytes] = None
            for member in self.members:
                column = member.read_sectors(physical, chunk)
                acc = (
                    column if acc is None
                    else bytes(a ^ b for a, b in zip(acc, column))
                )
            assert acc is not None
            if acc != bytes(len(acc)):
                violations.append(
                    f"stripe row {row}: parity invariant broken "
                    "(XOR of data chunks != parity chunk)"
                )
        return violations


class RaidDegradedWriteWorkload(_RaidChaosWorkload):
    """RAID-5 service through a member loss: every degraded write path.

    The script writes in OPTIMAL mode (full rows and read-modify-write
    partial rows), kills member 1, then exercises each degraded write
    shape: a full row, exact-slice partial rows on stripes where the
    dead member held parity, and journalled partial rows where it held
    data — with the stale column both covered and not covered by the
    write.  Sweeping every crash point (member writes, parity updates,
    journal arming, superblock rounds) proves the degraded write hole
    stays shut: after recovery plus rebuild, acked bytes are exact and
    the parity invariant holds on every row.
    """

    name = "raid-degraded"

    def run(self) -> None:
        # Optimal phase: full rows 0-1, then small-write partial rows.
        self._write(0, "A", 24)
        self._write(30, "B", 5)
        self._write(50, "C", 10)
        self._write(100, "D", 20)
        self.array.fail_member(1)
        # Degraded phase.  Stripe rows span 12 logical sectors; member
        # 1 holds parity on rows 2, 6, 10 and data elsewhere.
        self._write(12, "E", 12)   # full row, one column short
        self._write(26, "F", 4)    # row 2: exact slices, no parity
        self._write(40, "G", 6)    # row 3: stale data column, uncovered
        self._write(36, "H", 3)    # row 3: stale data column, covered
        self._write(60, "I", 12)   # full row again
        self._write(73, "J", 2)    # row 6: exact slices, no parity
        self._assert_readback()


class RaidRebuildWorkload(_RaidChaosWorkload):
    """Member replacement and background rebuild under foreground load.

    The script loses member 2, keeps writing degraded, swaps in a
    blank platter and interleaves rebuild steps with foreground writes
    — covering write-through below the watermark, journalled updates
    above it, and the rebuild's own reconstruction writes.  A crash at
    any point (including mid-rebuild) must recover by restarting the
    rebuild from scratch off the journalled, parity-consistent
    survivors.
    """

    name = "raid-rebuild"

    def run(self) -> None:
        self._write(0, "A", 36)
        self._write(40, "B", 6)
        self._write(84, "C", 24)
        self.array.fail_member(2)
        self._write(13, "D", 10)
        self.array.replace_member(2, blank=True)
        rebuilder = RaidRebuilder(self.array, chunks_per_step=3)
        fills = iter("EFGHIJKLMN")
        while not rebuilder.done:
            rebuilder.step(force=True)
            fill = next(fills)
            # Alternate below/above the advancing watermark.
            self._write(2, fill, 5)
            self._write(120, fill.lower(), 7)
        self._write(70, "Z", 16)
        self._assert_readback()


def _first_divergence(a: bytes, b: bytes) -> int:
    for index, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return index
    return min(len(a), len(b))


def _describe(content: bytes) -> str:
    """Compact human description of a file's content for messages."""
    if not content:
        return "empty"
    runs: List[str] = []
    last = content[0]
    count = 0
    for byte in content:
        if byte == last:
            count += 1
        else:
            runs.append(f"{chr(last)!r}*{count}")
            last, count = byte, 1
    runs.append(f"{chr(last)!r}*{count}")
    if len(runs) > 6:
        runs = runs[:6] + ["..."]
    return "+".join(runs)


WORKLOADS: Dict[str, Type[ChaosWorkload]] = {
    workload.name: workload
    for workload in (
        AppendOverwriteWorkload,
        QueuedWriteWorkload,
        RaidDegradedWriteWorkload,
        RaidRebuildWorkload,
        ScrubRepairWorkload,
        TransactionCommitWorkload,
        TwoVolumeCommitWorkload,
    )
}
