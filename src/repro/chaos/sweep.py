"""Sweep driver: ``python -m repro.chaos.sweep --workload append-overwrite``.

Enumerates every crash point of the chosen workload, crashes a fresh
system at each, runs recovery, checks the invariants, and prints the
per-layer coverage table.  Exit status 0 means every crash point
recovered cleanly; 1 means at least one invariant violation (each
printed with the exact ``--only`` command that reproduces it).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.chaos.scheduler import CrashScheduler
from repro.chaos.workloads import WORKLOADS
from repro.common.metrics import Metrics


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.sweep",
        description="Exhaustive crash-point exploration with "
        "recovery-invariant checking.",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        default="append-overwrite",
        help="which deterministic workload to sweep",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="N",
        help="bound the sweep to the first N crash points (smoke runs)",
    )
    parser.add_argument(
        "--only",
        type=int,
        default=None,
        metavar="K",
        help="run a single crash point instead of the whole sweep",
    )
    parser.add_argument(
        "--break-recovery",
        action="store_true",
        help="enable the deliberately broken recovery path "
        "(coordinator.unsafe_skip_redo) to demonstrate detection",
    )
    args = parser.parse_args(argv)
    if args.max_points is not None and args.max_points < 0:
        parser.error(f"--max-points must be >= 0, got {args.max_points}")

    metrics = Metrics()
    scheduler = CrashScheduler(
        WORKLOADS[args.workload],
        break_recovery=args.break_recovery,
        metrics=metrics,
    )
    points = [args.only] if args.only is not None else None
    report = scheduler.sweep(points=points, max_points=args.max_points)
    if args.only is not None and report.points_run == 0:
        print(
            f"error: crash point {args.only} is out of range — workload "
            f"{args.workload!r} has crash points 1..{report.total_points}",
            file=sys.stderr,
        )
        return 2

    print(report.coverage_table())
    if report.violations:
        print()
        for violation in report.violations:
            print(f"VIOLATION: {violation}")
    else:
        print("all crash points recovered with 0 invariant violations")
    return 0 if report.ok else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
