"""The crash-schedule explorer: re-run, crash at point k, recover, check.

:class:`CrashScheduler` turns a deterministic workload into an
exhaustive crash-recovery proof: a *counting run* numbers every
physical write the workload performs, then each crash point ``k`` gets
its own fresh system that is crashed during exactly write ``k`` (torn),
recovered, and checked against the invariants.  Determinism makes this
sound: every re-run performs the identical write sequence, which the
scheduler verifies against the counting run's trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Type

from repro.chaos.trace import TraceEntry
from repro.chaos.workloads import ChaosWorkload
from repro.common.errors import DiskError
from repro.common.metrics import Metrics


@dataclass
class PointResult:
    """Outcome of crashing at one point and recovering."""

    point: int
    entry: Optional[TraceEntry]
    violations: List[str]

    @property
    def layer(self) -> str:
        return self.entry.layer() if self.entry is not None else "?"


@dataclass
class SweepReport:
    """Everything one sweep found, plus the per-layer coverage table."""

    workload: str
    total_points: int
    stable_syncs: int
    results: List[PointResult] = field(default_factory=list)

    @property
    def points_run(self) -> int:
        return len(self.results)

    @property
    def violations(self) -> List[str]:
        return [v for result in self.results for v in result.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def layer_rows(self) -> List[tuple[str, int, int]]:
        rows: dict[str, List[int]] = {}
        for result in self.results:
            row = rows.setdefault(result.layer, [0, 0])
            row[0] += 1
            row[1] += len(result.violations)
        return [(layer, c[0], c[1]) for layer, c in sorted(rows.items())]

    def coverage_table(self) -> str:
        lines = [
            f"crash sweep: workload {self.workload!r} — "
            f"{self.points_run}/{self.total_points} crash points, "
            f"{self.stable_syncs} careful-write syncs observed",
            f"{'layer':<24}{'points':>8}{'violations':>12}",
        ]
        for layer, points, violations in self.layer_rows():
            lines.append(f"{layer:<24}{points:>8}{violations:>12}")
        lines.append(
            f"{'total':<24}{self.points_run:>8}{len(self.violations):>12}"
        )
        return "\n".join(lines)


class CrashScheduler:
    """Sweeps a workload class over every crash point.

    Args:
        workload_cls: the :class:`ChaosWorkload` subclass to explore.
        break_recovery: run each recovery with the deliberately broken
            path enabled (proves the sweep detects recovery bugs).
        metrics: registry the sweep reports coverage into (its own
            otherwise); counters live under ``chaos.sweep.<workload>.*``.
    """

    def __init__(
        self,
        workload_cls: Type[ChaosWorkload],
        *,
        break_recovery: bool = False,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.workload_cls = workload_cls
        self.break_recovery = break_recovery
        self.metrics = metrics or Metrics()
        self._baseline: Optional[List[TraceEntry]] = None
        self._stable_syncs = 0

    # ----------------------------------------------------------- api

    def count_crash_points(self) -> int:
        """The counting run: execute once, unarmed, and number writes."""
        workload = self.workload_cls()
        workload.run()
        monitor = workload.monitor
        self._baseline = monitor.write_entries()
        self._stable_syncs = sum(
            1 for entry in monitor.trace if entry.kind == "stable-sync"
        )
        return monitor.writes_seen

    def run_at(self, crash_point: int) -> PointResult:
        """Fresh system, crash during write ``crash_point``, recover, check."""
        workload = self.workload_cls()
        workload.break_recovery = self.break_recovery
        workload.monitor.arm(crash_point)
        try:
            workload.run()
        except Exception:
            if workload.monitor.fired_at is None:
                raise  # a genuine workload bug, not our injected crash
        if workload.monitor.fired_at != crash_point:
            raise RuntimeError(
                f"workload {workload.name!r} completed without reaching "
                f"crash point {crash_point} "
                f"({workload.monitor.writes_seen} writes performed)"
            )
        violations = self._check_determinism(workload, crash_point)
        workload.recover()
        violations.extend(workload.check())
        entry = workload.monitor.entry_at(crash_point)
        return PointResult(
            point=crash_point,
            entry=entry,
            violations=[
                self._annotate(workload, crash_point, entry, violation)
                for violation in violations
            ],
        )

    def sweep(
        self,
        *,
        max_points: Optional[int] = None,
        points: Optional[List[int]] = None,
    ) -> SweepReport:
        """Exhaustively iterate crash points (bounded by ``max_points``).

        ``points`` restricts the sweep to specific crash points; when
        bounded below the total, the bound is reported, never silent.
        """
        total = self.count_crash_points()
        chosen = points if points is not None else list(range(1, total + 1))
        chosen = [k for k in chosen if 1 <= k <= total]
        if max_points is not None:
            chosen = chosen[:max_points]
        report = SweepReport(
            workload=self.workload_cls.name,
            total_points=total,
            stable_syncs=self._stable_syncs,
        )
        for crash_point in chosen:
            result = self.run_at(crash_point)
            report.results.append(result)
        prefix = f"chaos.sweep.{self.workload_cls.name}"
        self.metrics.add(f"{prefix}.points", report.points_run)
        self.metrics.add(f"{prefix}.violations", len(report.violations))
        for layer, points_covered, _ in report.layer_rows():
            self.metrics.add(
                f"{prefix}.layer.{layer.replace(' ', '_')}", points_covered
            )
        return report

    # ------------------------------------------------------ internal

    def _check_determinism(
        self, workload: ChaosWorkload, crash_point: int
    ) -> List[str]:
        """The first ``crash_point`` writes must replay the counting run."""
        if self._baseline is None:
            return []
        replay = workload.monitor.write_entries()[:crash_point]
        expected = self._baseline[:crash_point]
        for seen, counted in zip(replay, expected):
            if (seen.disk_id, seen.start, seen.n_sectors) != (
                counted.disk_id,
                counted.start,
                counted.n_sectors,
            ):
                return [
                    f"nondeterministic replay: write #{seen.index} was "
                    f"{seen.disk_id}@{seen.start}+{seen.n_sectors} but the "
                    f"counting run saw "
                    f"{counted.disk_id}@{counted.start}+{counted.n_sectors}"
                ]
        return []

    def _annotate(
        self,
        workload: ChaosWorkload,
        crash_point: int,
        entry: Optional[TraceEntry],
        violation: str,
    ) -> str:
        where = (
            f"{entry.layer()}: {entry.disk_id} sector "
            f"{entry.start}+{entry.n_sectors}"
            if entry is not None
            else "unknown write"
        )
        return (
            f"crash point {crash_point} ({where}): {violation} "
            f"[repro: python -m repro.chaos.sweep "
            f"--workload {workload.name} --only {crash_point}"
            + (" --break-recovery" if self.break_recovery else "")
            + "]"
        )
