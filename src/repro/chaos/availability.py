"""The availability campaign: ``python -m repro.chaos.availability``.

The crash-point sweep (:mod:`repro.chaos.sweep`) proves a single
volume recovers from a crash at *any* physical write.  This campaign
proves the complementary claim: the assembled facility stays **usable
while volumes crash and recover mid-workload** — the paper's
"operational in the face of various failures" promise, measured.

Each scenario builds a full :class:`~repro.cluster.system.RhodosCluster`
(three volumes, replication degree two, RPC bus with fault injection,
exponential backoff, circuit breaker feeding the health registry) and
runs a seeded mixed read/write workload while a
:class:`~repro.recovery.schedule.FailureSchedule` takes volumes down
and brings them back.  Three SLO invariants are asserted:

* **durability** — no acknowledged write is ever lost: after the last
  restart, every replica and the unreplicated bus-served file hold
  exactly the acknowledged content.  (Crashes land *between*
  operations — the single-threaded scheduler cannot crash inside a
  physical write — so this is op-granularity atomicity; sub-write
  torn-crash coverage belongs to the crash-point sweep.)
* **freshness** — reads are monotone and never stale: a replicated
  read always observes at least the last acknowledged version, and
  observed versions never go backwards (no stale-then-fresh-then-stale
  oscillation during failover or resync).
* **bounded unavailability** — every failed operation falls inside a
  scheduled downtime window extended by a *parametric* recovery
  allowance computed from the breaker cooldown, the worst-case failing
  call (breaker threshold x (timeout + max backoff)), and bus latency.
  Unavailability is bounded by configuration, not by luck.

Two further scenarios (``scrub_latent_rot``, ``scrub_media_errors``)
measure the media-failure SLOs instead of crash windows: deterministic
corruption is injected into one volume's checksummed fragments and the
background scrubber must find and repair **100 %** of it within a
bounded number of cycles — from the stable-storage mirror where one
exists, else from a peer replica via
:meth:`~repro.replication.service.ReplicationService.quarantine_volume_media`
— while **no corrupt byte ever reaches a client or the track cache**
(every read during the campaign is byte-checked).

The RAID scenarios (``raid_member_loss``, ``raid_rebuild_interrupted``)
measure the redundancy tier *below* volume replication: a volume whose
data disk is a RAID-5 :class:`~repro.simdisk.raid.StripedVolume` loses
member drives mid-workload via scripted
:class:`~repro.recovery.schedule.MemberFailureEvent` entries.  Unlike a
volume crash there is **no downtime window at all** — the SLOs are that
every operation succeeds throughout (reads never unavailable, zero
acked-write loss), the array walks OPTIMAL → DEGRADED → REBUILDING →
OPTIMAL, and losing the rebuild target mid-rebuild degrades again
rather than failing.  A destructive finale then exhausts redundancy on
purpose: with two members dead the array must report FAILED and *every*
read must raise — stale or reconstructed-from-garbage bytes are the one
unforgivable outcome.

Reports are byte-deterministic: the same seed emits the identical JSON
document, which CI diffs across a double run.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.errors import MediaError, ReplicationError, RhodosError, RpcError
from repro.common.units import BLOCK_SIZE
from repro.disk_service.addresses import Extent
from repro.disk_service.scrub import Scrubber, ScrubFinding
from repro.file_service.cache import WritePolicy
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.recovery.schedule import (
    FailureEvent,
    FailureSchedule,
    MemberFailureEvent,
    ShardFailureEvent,
)
from repro.replication.service import volume_component
from repro.rpc.bus import FaultProfile
from repro.rpc.retry import BackoffPolicy, BreakerPolicy
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.raid import ArrayFailedError, ArrayState
from repro.verify.fsck import verify_checksums

#: Fixed payload sizes keep every write the same shape, so version
#: content is a pure function of the version number (idempotent
#: retries) and replica comparison is byte-exact.
REPLICATED_LEN = 96
AGENT_LEN = 64


def version_content(version: int, length: int) -> bytes:
    """Deterministic content encoding one version (never the zero byte,
    so unwritten regions are distinguishable from any version)."""
    return bytes([version % 251 + 1]) * length


def decode_version(data: bytes, reference: int) -> Optional[int]:
    """Invert :func:`version_content` near a known reference version."""
    if not data:
        return None
    byte = data[0]
    if any(b != byte for b in data):
        return None  # torn content: not any whole version
    for version in range(max(0, reference - 250), reference + 251):
        if version % 251 + 1 == byte:
            candidate = version
            # The highest candidate <= reference + 250 closest to the
            # reference is the plausible one; versions only move in
            # small steps between reads, so the first match in range
            # suffices and stays deterministic.
            return candidate
    return None


@dataclass(frozen=True)
class Scenario:
    """One cell of the campaign grid: a fault profile x a crash script."""

    name: str
    profile: FaultProfile
    events: Tuple[FailureEvent, ...]
    steps: int
    think_us: int = 5_000
    seed: int = 0
    description: str = ""


BACKOFF = BackoffPolicy(base_us=5_000, multiplier=2.0, max_us=40_000, jitter=0.5)
BREAKER = BreakerPolicy(threshold=4, cooldown_us=150_000)

#: Crash volume 0 once, then volume 1, windows disjoint so one replica
#: of every replicated file is live at all times.
ALTERNATING = (
    FailureEvent(at_us=300_000, volume_id=0, down_us=400_000),
    FailureEvent(at_us=1_400_000, volume_id=1, down_us=400_000),
)

#: Volume 0 crashes twice with a short recovered gap in between: the
#: second crash hits while the breaker's memory of the first is fresh.
BACK_TO_BACK = (
    FailureEvent(at_us=300_000, volume_id=0, down_us=300_000),
    FailureEvent(at_us=1_000_000, volume_id=0, down_us=300_000),
)

SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="clean_restarts",
        profile=FaultProfile.reliable(),
        events=ALTERNATING,
        steps=420,
        description="reliable bus; alternating single-volume crashes",
    ),
    Scenario(
        name="lossy_bus",
        profile=FaultProfile(
            request_loss=0.05, reply_loss=0.05, duplication=0.02, reorder=0.02
        ),
        events=ALTERNATING,
        steps=420,
        description="message loss/duplication/reordering during the crashes",
    ),
    Scenario(
        name="reorder_heavy",
        profile=FaultProfile(duplication=0.05, reorder=0.10),
        events=(FailureEvent(at_us=500_000, volume_id=0, down_us=400_000),),
        steps=360,
        description="heavy reordering; one crash window",
    ),
    Scenario(
        name="back_to_back",
        profile=FaultProfile(request_loss=0.03, reply_loss=0.03),
        events=BACK_TO_BACK,
        steps=420,
        description="volume 0 crashes twice in quick succession",
    ),
)

SMOKE_SCENARIOS = ("clean_restarts", "lossy_bus")


@dataclass(frozen=True)
class ScrubScenario:
    """One media-failure campaign cell: an injection mode x SLO bounds.

    Attributes:
        kind: ``"rot"`` (at-rest byte flips) or ``"media"`` (latent
            unreadable sectors).
        targets: checksummed fragments corrupted on volume 0, chosen by
            the seeded :meth:`FaultInjector.pick_targets`.
        max_cycles: scrub cycles within which the volume must verify
            clean — the bounded-repair SLO.
    """

    name: str
    kind: str
    targets: int = 4
    max_cycles: int = 3
    seed: int = 0
    description: str = ""


SCRUB_SCENARIOS: Tuple[ScrubScenario, ...] = (
    ScrubScenario(
        name="scrub_latent_rot",
        kind="rot",
        description="silent at-rest byte flips; scrub + mirror/replica repair",
    ),
    ScrubScenario(
        name="scrub_media_errors",
        kind="media",
        description="latent unreadable sectors; scrub + rewrite repair",
    ),
)

SCRUB_SMOKE = tuple(scenario.name for scenario in SCRUB_SCENARIOS)


@dataclass(frozen=True)
class RaidScenario:
    """One RAID-tier campaign cell: a member kill/replace script.

    Attributes:
        level: array layout backing every volume's data disk.
        members: member drives per array.
        events: the member kill/replace script, fired through the same
            :class:`FailureSchedule` the volume crashes use.
        steps: workload operations (one per think-step).
        exhaust_finale: after the scripted phase converges, kill two
            members on purpose and demand the array report FAILED and
            refuse — loudly — to serve a single byte.
    """

    name: str
    level: str
    events: Tuple[MemberFailureEvent, ...]
    steps: int
    members: int = 4
    chunk_sectors: int = 64
    rebuild_chunks: int = 32
    exhaust_finale: bool = False
    think_us: int = 5_000
    seed: int = 0
    description: str = ""


#: One member dies at 300 ms; its blank replacement arrives 400 ms
#: later and rebuilds in the idle slots between operations.
SINGLE_MEMBER_LOSS = (
    MemberFailureEvent(at_us=300_000, volume_id=0, member_index=1, down_us=400_000),
)

#: Member 2 dies, is replaced, then dies *again* 60 ms into its own
#: rebuild — the second kill must cancel the rebuild and drop the array
#: back to degraded, never to FAILED (three healthy members remain).
REBUILD_INTERRUPTED = (
    MemberFailureEvent(at_us=200_000, volume_id=0, member_index=2, down_us=300_000),
    MemberFailureEvent(at_us=560_000, volume_id=0, member_index=2, down_us=340_000),
)

RAID_SCENARIOS: Tuple[RaidScenario, ...] = (
    RaidScenario(
        name="raid_member_loss",
        level="raid5",
        events=SINGLE_MEMBER_LOSS,
        steps=240,
        description="single member dies under mixed load; degraded "
        "service, background rebuild, zero unavailability",
    ),
    RaidScenario(
        name="raid_rebuild_interrupted",
        level="raid5",
        events=REBUILD_INTERRUPTED,
        steps=240,
        exhaust_finale=True,
        description="rebuild target dies mid-rebuild (degrade, never "
        "fail); finale exhausts redundancy and demands loud refusal",
    ),
)

RAID_SMOKE = tuple(scenario.name for scenario in RAID_SCENARIOS)


@dataclass(frozen=True)
class ShardScenario:
    """One sharded-namespace campaign cell (PR 10).

    Attributes:
        kind: ``"storm"`` — a metadata workload over the RPC bus while
            a :class:`ShardFailureEvent` kills a shard server mid-run —
            or ``"rebalance"`` — an online migration whose destination
            dies mid-stream (direct calls; the interruption under test
            is the shard's, not the bus's).
        n_shards: shard servers the binding space partitions across.
        events: the shard kill/restart script (``storm`` only).
    """

    name: str
    kind: str
    profile: FaultProfile
    events: Tuple[ShardFailureEvent, ...] = ()
    n_shards: int = 4
    steps: int = 360
    think_us: int = 5_000
    seed: int = 0
    description: str = ""


SHARD_SCENARIOS: Tuple[ShardScenario, ...] = (
    ShardScenario(
        name="shard_death_metadata_storm",
        kind="storm",
        profile=FaultProfile(
            request_loss=0.03, reply_loss=0.03, duplication=0.02
        ),
        events=(
            ShardFailureEvent(at_us=400_000, shard_id=1, down_us=400_000),
        ),
        description="a shard server dies mid-metadata-storm over a lossy "
        "bus; resolves fail over to the replica, binds bounded to the "
        "window, restart resyncs every acked binding",
    ),
    ShardScenario(
        name="rebalance_interrupted",
        kind="rebalance",
        profile=FaultProfile.reliable(),
        n_shards=2,
        steps=0,
        description="the migration destination dies mid-stream; the "
        "migration aborts with zero resolve misses, then re-runs to "
        "completion after the restart",
    ),
)

SHARD_SMOKE = tuple(scenario.name for scenario in SHARD_SCENARIOS)


def recovery_allowance_us(
    scenario: Scenario, *, timeout_us: int = 20_000
) -> int:
    """The post-restart grace period failures may legally extend into.

    After a restart the breaker may stay open for up to its full
    cooldown (the last re-open can land just before the restart), one
    more call may then fail the slow way (threshold failed attempts,
    each a timeout plus the backoff cap), and bus latency plus a few
    think-steps of slack pad the edges.  Everything here is a
    configured constant — the bound is parametric, not empirical.
    """
    worst_call_us = BREAKER.threshold * (timeout_us + BACKOFF.max_us)
    return (
        BREAKER.cooldown_us
        + worst_call_us
        + 4 * scenario.profile.latency_us
        + 10 * scenario.think_us
    )


class _Run:
    """One scenario execution: workload, bookkeeping, verdicts."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self.cluster = RhodosCluster(
            ClusterConfig(
                n_machines=1,
                n_disks=3,
                replication_degree=2,
                fault_profile=scenario.profile,
                rpc_backoff=BACKOFF,
                rpc_breaker=BREAKER,
                write_policy=WritePolicy.WRITE_THROUGH,
                client_cache_blocks=0,
                seed=scenario.seed,
            )
        )
        self.schedule = FailureSchedule(
            scenario.events,
            self.cluster.clock,
            metrics=self.cluster.metrics,
        )
        self.rng = random.Random(scenario.seed)
        self.action_log: List[str] = []
        # Replicated files: name -> (acked_version, last_observed_version)
        self.acked: Dict[str, int] = {}
        self.observed: Dict[str, int] = {}
        # The unreplicated agent file rides the RPC bus on volume 0 (the
        # crashed volume) so its traffic exercises breaker + backoff.
        self.agent_acked: Dict[int, bytes] = {}  # offset -> content
        self.agent_version = 0
        # Failure samples: (start_us, end_us, kind)
        self.failures: List[Tuple[int, int, str]] = []
        self.stats = {
            "replicated_reads": 0,
            "replicated_writes": 0,
            "agent_reads": 0,
            "agent_writes": 0,
            "failed_ops": 0,
        }
        self.violations: List[str] = []

    # ------------------------------------------------------- workload

    def run(self) -> Dict[str, object]:
        cluster, schedule = self.cluster, self.schedule
        rfiles = ["/availability/r0", "/availability/r1"]
        for path in rfiles:
            cluster.replication.create(AttributedName.file(path))
            self.acked[path] = 0
            self.observed[path] = 0
        agent = cluster.machine.file_agent
        descriptor = agent.create(
            AttributedName.file("/availability/agent"), volume_id=0
        )

        for step in range(self.scenario.steps):
            self.action_log.extend(schedule.poll(cluster))
            cluster.clock.advance_us(self.scenario.think_us)
            choice = self.rng.random()
            path = rfiles[step % len(rfiles)]
            if choice < 0.30:
                self._replicated_write(path)
            elif choice < 0.60:
                self._replicated_read(path)
            elif choice < 0.80:
                self._agent_write(agent, descriptor)
            else:
                self._agent_read(agent, descriptor)

        # Converge: fire any remaining restarts, deliver parked
        # messages, and let the recovery hooks finish their repairs.
        self.action_log.extend(schedule.run_out(cluster))
        if cluster.bus is not None:
            cluster.bus.drain_delayed()
        cluster.replication.resync_all_stale()
        cluster.replication.sweep_orphans()
        self._verify_convergence(rfiles, agent, descriptor)
        return self._report(rfiles)

    def _replicated_write(self, path: str) -> None:
        cluster = self.cluster
        version = self.acked[path] + 1
        start = cluster.clock.now_us
        self.stats["replicated_writes"] += 1
        try:
            cluster.replication.write(
                AttributedName.file(path), 0, version_content(version, REPLICATED_LEN)
            )
        except (ReplicationError, RpcError) as exc:
            self._record_failure(start, f"replicated_write:{type(exc).__name__}")
            return
        # Ack-then-fsync: the write counts as acknowledged only once
        # the live replica servers flushed their FIT metadata (data
        # blocks are write-through already; file *size* is not).
        # Crashes land between steps, so these flushes cannot race a
        # new failure within the same step.
        replica_set = cluster.replication.lookup(AttributedName.file(path))
        for system_name in replica_set.replicas:
            volume_id = system_name.volume_id
            if cluster.health.is_down(f"volume.{volume_id}"):
                continue
            try:
                cluster.file_servers[volume_id].flush()
            except RhodosError:
                pass
        self.acked[path] = version

    def _replicated_read(self, path: str) -> None:
        cluster = self.cluster
        start = cluster.clock.now_us
        self.stats["replicated_reads"] += 1
        try:
            data = cluster.replication.read(
                AttributedName.file(path), 0, REPLICATED_LEN
            )
        except (ReplicationError, RpcError) as exc:
            self._record_failure(start, f"replicated_read:{type(exc).__name__}")
            return
        if data == b"" and self.acked[path] == 0:
            return  # nothing acknowledged yet: an empty file is correct
        version = decode_version(data, self.acked[path])
        if version is None:
            self.violations.append(
                f"t={start}us {path}: torn read {data[:8]!r}..."
            )
            return
        if version < self.acked[path]:
            self.violations.append(
                f"t={start}us {path}: stale read v{version} < acked "
                f"v{self.acked[path]}"
            )
        if version < self.observed[path]:
            self.violations.append(
                f"t={start}us {path}: non-monotonic read v{version} after "
                f"v{self.observed[path]}"
            )
        self.observed[path] = max(self.observed[path], version)

    def _agent_write(self, agent, descriptor: int) -> None:
        cluster = self.cluster
        version = self.agent_version
        offset = version * AGENT_LEN
        content = version_content(version, AGENT_LEN)
        start = cluster.clock.now_us
        self.stats["agent_writes"] += 1
        try:
            agent.pwrite(descriptor, content, offset)
            # Ack-then-fsync: the server's FIT (file size) is write-back,
            # so a crash could forget the write's extent without this.
            cluster.machine.file_agent.router.flush_volume(0)
        except (RpcError, RhodosError) as exc:
            # The write may have executed server-side (reply lost before
            # the breaker opened); distinct per-version offsets make the
            # eventual retry of the same content idempotent either way.
            self._record_failure(start, f"agent_write:{type(exc).__name__}")
            return
        self.agent_acked[offset] = content
        self.agent_version = version + 1

    def _agent_read(self, agent, descriptor: int) -> None:
        cluster = self.cluster
        if not self.agent_acked:
            return
        offsets = sorted(self.agent_acked)
        offset = offsets[self.rng.randrange(len(offsets))]
        start = cluster.clock.now_us
        self.stats["agent_reads"] += 1
        try:
            data = agent.pread(descriptor, AGENT_LEN, offset)
        except (RpcError, RhodosError) as exc:
            self._record_failure(start, f"agent_read:{type(exc).__name__}")
            return
        if data != self.agent_acked[offset]:
            self.violations.append(
                f"t={start}us agent file: acked content lost at offset "
                f"{offset} ({data[:8]!r}...)"
            )

    def _record_failure(self, start_us: int, kind: str) -> None:
        self.stats["failed_ops"] += 1
        self.failures.append((start_us, self.cluster.clock.now_us, kind))

    # ----------------------------------------------------- invariants

    def _verify_convergence(self, rfiles: List[str], agent, descriptor: int) -> None:
        cluster = self.cluster
        for path in rfiles:
            expected = (
                version_content(self.acked[path], REPLICATED_LEN)
                if self.acked[path]
                else None
            )
            replica_set = cluster.replication.lookup(AttributedName.file(path))
            if replica_set.stale:
                self.violations.append(
                    f"{path}: replicas still stale after run-out: "
                    f"{sorted(replica_set.stale)}"
                )
            for system_name in replica_set.replicas:
                server = cluster.file_servers[system_name.volume_id]
                size = server.get_attribute(system_name).file_size
                data = server.read(system_name, 0, size)
                if expected is None:
                    continue
                if data != expected:
                    self.violations.append(
                        f"{path}: replica on volume {system_name.volume_id} "
                        f"diverged from acked v{self.acked[path]}"
                    )
        # Verify the agent file against the *server's durable state*
        # directly — the invariant is about what survived the crashes,
        # not about bus luck during the check itself.
        agent_name = agent.system_name(descriptor)
        server = cluster.file_servers[agent_name.volume_id]
        for offset in sorted(self.agent_acked):
            data = server.read(agent_name, offset, AGENT_LEN)
            if data != self.agent_acked[offset]:
                self.violations.append(
                    f"agent file: acked write at offset {offset} lost"
                )
        remaining = cluster.replication.orphans()
        if remaining:
            self.violations.append(
                f"{len(remaining)} delete orphan(s) survived the final sweep"
            )

    def _unavailability(self) -> Dict[str, object]:
        """Merge failure samples into windows; check each against the
        schedule extended by the parametric recovery allowance."""
        allowance = recovery_allowance_us(self.scenario)
        merge_gap = 4 * self.scenario.think_us + 2 * 20_000
        windows: List[List[int]] = []
        for start, end, _kind in sorted(self.failures):
            if windows and start - windows[-1][1] <= merge_gap:
                windows[-1][1] = max(windows[-1][1], end)
            else:
                windows.append([start, end])
        scheduled = [
            (event.at_us, event.restart_at_us) for event in self.scenario.events
        ]
        out_of_bound = []
        for start, end in windows:
            covered = any(
                s_start <= start and end <= s_end + allowance
                for s_start, s_end in scheduled
            )
            if not covered:
                out_of_bound.append([start, end])
        if out_of_bound:
            self.violations.append(
                f"unavailability outside scheduled-downtime bound: "
                f"{out_of_bound}"
            )
        return {
            "allowance_us": allowance,
            "merge_gap_us": merge_gap,
            "out_of_bound": out_of_bound,
            "total_us": sum(end - start for start, end in windows),
            "windows": [[start, end] for start, end in windows],
        }

    def _report(self, rfiles: List[str]) -> Dict[str, object]:
        metrics = self.cluster.metrics
        unavailability = self._unavailability()
        counters = {
            name: metrics.get(name)
            for name in (
                "cluster.volume_failures",
                "cluster.volume_restarts",
                "health.marked_down",
                "health.recoveries",
                "health.transient_errors",
                "recovery.crashes_injected",
                "recovery.restarts_injected",
                "replication.failovers",
                "replication.orphans_recorded",
                "replication.orphans_swept",
                "replication.reads_degraded",
                "replication.reads_skipped_down",
                "replication.resyncs",
                "replication.resyncs_verified",
                "replication.writes_skipped_down",
                "rpc.breaker_closes",
                "rpc.breaker_opens",
                "rpc.breaker_probes",
                "rpc.breaker_rejections",
                "rpc.reordered_executions",
                "rpc.requests_delayed",
                "rpc.retransmissions",
                "transactions.recoveries",
            )
        }
        return {
            "counters": counters,
            "description": self.scenario.description,
            "events": [
                [event.at_us, event.volume_id, event.down_us]
                for event in self.scenario.events
            ],
            "failures": [
                [start, end, kind] for start, end, kind in self.failures
            ],
            "final_versions": {
                "acked": {path: self.acked[path] for path in rfiles},
                "agent_writes_acked": len(self.agent_acked),
            },
            "lifecycle_log": self.action_log,
            "ops": dict(sorted(self.stats.items())),
            "profile": {
                "duplication": self.scenario.profile.duplication,
                "latency_us": self.scenario.profile.latency_us,
                "reorder": self.scenario.profile.reorder,
                "reply_loss": self.scenario.profile.reply_loss,
                "request_loss": self.scenario.profile.request_loss,
            },
            "seed": self.scenario.seed,
            "status": "pass" if not self.violations else "fail",
            "unavailability": unavailability,
            "violations": list(self.violations),
        }


class _ScrubRun:
    """One scrub scenario: inject, byte-check reads, scrub, verify.

    The run seeds two replicated files (degree two, volumes 0 and 1),
    corrupts ``targets`` checksummed fragments on volume 0, then
    drives full scrub cycles over every volume.  Mirrored fragments
    (the FITs) repair locally from stable storage; everything else is
    routed through ``on_corruption`` to
    :meth:`ReplicationService.quarantine_volume_media`, which resyncs
    the damaged replicas from their clean peers.  The scenario passes
    when a whole cycle finds nothing — within ``max_cycles`` — and no
    read anywhere in the campaign observed corrupt bytes.
    """

    FILE_BLOCKS = 4

    def __init__(self, scenario: ScrubScenario) -> None:
        self.scenario = scenario
        self.cluster = RhodosCluster(
            ClusterConfig(
                n_machines=1,
                n_disks=3,
                replication_degree=2,
                fault_profile=FaultProfile.reliable(),
                write_policy=WritePolicy.WRITE_THROUGH,
                client_cache_blocks=0,
                seed=scenario.seed,
            )
        )
        self.violations: List[str] = []
        self.findings_log: List[List[object]] = []
        self.reads_checked = 0

    # ------------------------------------------------------- campaign

    def run(self) -> Dict[str, object]:
        cluster = self.cluster
        scenario = self.scenario
        paths = ["/scrub/r0", "/scrub/r1"]
        expected: Dict[str, bytes] = {}
        for index, path in enumerate(paths):
            cluster.replication.create(AttributedName.file(path))
            content = bytes(
                (index * 37 + offset * 7 + 13) % 251 + 1
                for offset in range(self.FILE_BLOCKS * BLOCK_SIZE)
            )
            cluster.replication.write(AttributedName.file(path), 0, content)
            expected[path] = content
        for volume_id in sorted(cluster.file_servers):
            cluster.file_servers[volume_id].flush()

        disk_server = cluster.file_servers[0].disk
        sim_disk = disk_server.disk
        population = disk_server.checksummed_fragments()
        targets = sim_disk.faults.pick_targets(
            population, scenario.targets, salt=17
        )
        # Pre-corruption ground truth for the direct-read byte checks.
        pristine = {
            fragment: disk_server.get(Extent(fragment, 1), use_cache=False)
            for fragment in targets
        }
        for fragment in targets:
            extent = Extent(fragment, 1)
            if scenario.kind == "rot":
                sim_disk.corrupt_sectors(extent.first_sector, extent.n_sectors)
            else:
                sim_disk.faults.schedule_media_error(extent.first_sector)

        # SLO 2, before any repair ran: a read of a damaged fragment
        # either raises (checksum/media error) or returns exact bytes
        # (an uncorrupted cached copy) — never silently wrong data.
        direct_errors = 0
        for fragment in sorted(targets):
            try:
                data = disk_server.get(Extent(fragment, 1))
            except MediaError:
                direct_errors += 1
                continue
            self.reads_checked += 1
            if data != pristine[fragment]:
                self.violations.append(
                    f"fragment {fragment}: corrupt bytes served to a "
                    f"direct read before scrub"
                )
        self._client_reads(paths, expected)

        # The scrub loop: every volume, full cycles, repair callbacks.
        unrepaired: List[Tuple[int, ScrubFinding]] = []
        scrubbers = {
            volume_id: Scrubber(
                cluster.file_servers[volume_id].disk,
                on_corruption=lambda finding, volume_id=volume_id: (
                    unrepaired.append((volume_id, finding))
                ),
            )
            for volume_id in sorted(cluster.file_servers)
        }
        cycles_to_clean: Optional[int] = None
        first_cycle_found: set[int] = set()
        for cycle in range(1, scenario.max_cycles + 1):
            cycle_findings: List[Tuple[int, ScrubFinding]] = []
            for volume_id in sorted(scrubbers):
                for finding in scrubbers[volume_id].run_cycle():
                    cycle_findings.append((volume_id, finding))
                    self.findings_log.append(
                        [
                            cycle,
                            volume_id,
                            finding.kind,
                            finding.extent.start,
                            finding.extent.length,
                            finding.repaired,
                        ]
                    )
            if cycle == 1:
                for _, finding in cycle_findings:
                    first_cycle_found.update(
                        range(finding.extent.start, finding.extent.end)
                    )
            if not cycle_findings:
                cycles_to_clean = cycle
                break
            for volume_id in sorted(
                {vid for vid, finding in cycle_findings if not finding.repaired}
            ):
                cluster.replication.quarantine_volume_media(volume_id)

        # SLO 1: everything injected was found, and a clean cycle
        # arrived within the bound.
        if cycles_to_clean is None:
            self.violations.append(
                f"scrub still finding corruption after "
                f"{scenario.max_cycles} cycles"
            )
        missed = sorted(set(targets) - first_cycle_found)
        if missed:
            self.violations.append(
                f"injected corruption never found by the scrubber: "
                f"fragments {missed}"
            )
        self._verify_repaired(paths, expected, targets, pristine)
        return self._report(targets, cycles_to_clean, direct_errors, unrepaired)

    # ------------------------------------------------------ internal

    def _client_reads(self, paths: List[str], expected: Dict[str, bytes]) -> None:
        """Read every replicated file end to end; byte-check the result.

        Read-one failover means these reads succeed with exact content
        even while volume 0 is damaged — a wrong byte is an SLO 2
        violation, not a degraded read.
        """
        for path in paths:
            try:
                data = self.cluster.replication.read(
                    AttributedName.file(path), 0, len(expected[path])
                )
            except (ReplicationError, RpcError) as exc:
                self.violations.append(
                    f"{path}: replicated read failed outright ({exc})"
                )
                continue
            self.reads_checked += 1
            if data != expected[path]:
                self.violations.append(
                    f"{path}: corrupt bytes reached the client"
                )

    def _verify_repaired(
        self,
        paths: List[str],
        expected: Dict[str, bytes],
        targets: List[int],
        pristine: Dict[int, bytes],
    ) -> None:
        cluster = self.cluster
        # Every damaged fragment reads clean — through the cache and
        # around it — so nothing corrupt survived into the cache.
        disk_server = cluster.file_servers[0].disk
        for fragment in sorted(targets):
            for use_cache in (True, False):
                try:
                    data = disk_server.get(
                        Extent(fragment, 1), use_cache=use_cache
                    )
                except MediaError as exc:
                    self.violations.append(
                        f"fragment {fragment}: still unreadable after "
                        f"scrub repair ({exc})"
                    )
                    continue
                self.reads_checked += 1
                if data != pristine[fragment]:
                    self.violations.append(
                        f"fragment {fragment}: content wrong after repair "
                        f"(cache={use_cache})"
                    )
        # The raw recompute pass agrees: zero latent findings anywhere.
        for volume_id in sorted(cluster.file_servers):
            findings = verify_checksums(cluster.file_servers[volume_id].disk)
            for finding in findings:
                self.violations.append(f"volume {volume_id} fsck: {finding}")
        # Client-visible content, and no replica left stale.
        self._client_reads(paths, expected)
        for path in paths:
            replica_set = cluster.replication.lookup(AttributedName.file(path))
            if replica_set.stale:
                self.violations.append(
                    f"{path}: replicas still stale after scrub repair: "
                    f"{sorted(replica_set.stale)}"
                )

    def _report(
        self,
        targets: List[int],
        cycles_to_clean: Optional[int],
        direct_errors: int,
        unrepaired: List[Tuple[int, ScrubFinding]],
    ) -> Dict[str, object]:
        metrics = self.cluster.metrics
        counters = {
            name: metrics.get(name)
            for name in (
                "disk_server.0.checksum_failures",
                "disk_server.0.read_repairs",
                "disk_server.0.stable_repairs",
                "replication.media_quarantines",
                "replication.quarantine_deferrals",
                "replication.resyncs",
                "replication.resyncs_verified",
                "scrub.0.cycles",
                "scrub.0.fragments_verified",
                "scrub.0.mirrors_verified",
                "scrub.0.repairs",
                "scrub.0.repair_failures",
            )
        }
        return {
            "counters": counters,
            "cycles_to_clean": cycles_to_clean,
            "description": self.scenario.description,
            "direct_read_errors": direct_errors,
            "findings": self.findings_log,
            "injected": {
                "fragments": sorted(targets),
                "kind": self.scenario.kind,
            },
            "reads_checked": self.reads_checked,
            "routed_to_replication": len(unrepaired),
            "seed": self.scenario.seed,
            "status": "pass" if not self.violations else "fail",
            "violations": list(self.violations),
        }


class _RaidRun:
    """One RAID scenario: member kills mid-workload, rebuild, verdicts.

    A single volume backed by a :class:`StripedVolume` serves a mixed
    read/write workload over the client agent path (reliable bus — any
    failed operation is attributable to the RAID tier, not bus luck).
    The schedule kills and replaces member drives between operations;
    :meth:`RhodosCluster.step_rebuilds` is pumped each step so the
    background rebuild competes with foreground traffic for idle slots.
    Unlike the volume-crash scenarios there is no unavailability budget
    to spend: **every** operation must succeed, and at the end every
    acked byte must read back exactly from the server's durable state.
    """

    def __init__(self, scenario: RaidScenario) -> None:
        self.scenario = scenario
        self.cluster = RhodosCluster(
            ClusterConfig(
                n_machines=1,
                n_disks=1,
                # 64 MB members keep the rebuild long enough to overlap
                # dozens of foreground steps yet finish within the run.
                geometry=DiskGeometry.small(),
                replication_degree=1,
                fault_profile=FaultProfile.reliable(),
                write_policy=WritePolicy.WRITE_THROUGH,
                # Every cache off: each read reaches the platters, so
                # degraded reads really exercise XOR reconstruction on
                # the client path rather than a cached block.
                client_cache_blocks=0,
                server_cache_blocks=0,
                disk_cache_tracks=0,
                disk_readahead=False,
                raid_level=scenario.level,
                raid_members=scenario.members,
                raid_chunk_sectors=scenario.chunk_sectors,
                raid_rebuild_chunks=scenario.rebuild_chunks,
                seed=scenario.seed,
            )
        )
        self.schedule = FailureSchedule(
            scenario.events,
            self.cluster.clock,
            metrics=self.cluster.metrics,
        )
        self.rng = random.Random(scenario.seed)
        self.action_log: List[str] = []
        self.state_log: List[List[object]] = []
        self.acked: Dict[int, bytes] = {}  # offset -> content
        self.version = 0
        self.stats = {
            "reads": 0,
            "writes": 0,
            "reads_degraded": 0,
            "writes_degraded": 0,
        }
        self.violations: List[str] = []
        self.array = self.cluster.arrays[0]
        # Chain onto the cluster's health wiring so the campaign sees
        # the same transitions the failure detector does.
        chain = self.array.on_state_change

        def observe(old: ArrayState, new: ArrayState) -> None:
            self.state_log.append(
                [self.cluster.clock.now_us, old.name, new.name]
            )
            if chain is not None:
                chain(old, new)

        self.array.on_state_change = observe

    # ------------------------------------------------------- workload

    def run(self) -> Dict[str, object]:
        cluster, schedule = self.cluster, self.schedule
        agent = cluster.machine.file_agent
        descriptor = agent.create(
            AttributedName.file("/availability/raid"), volume_id=0
        )
        for _step in range(self.scenario.steps):
            self.action_log.extend(schedule.poll(cluster))
            cluster.step_rebuilds()
            cluster.clock.advance_us(self.scenario.think_us)
            if self.rng.random() < 0.55 or not self.acked:
                self._write(agent, descriptor)
            else:
                self._read(agent, descriptor)

        # Converge: fire the remaining replacements, then grant the
        # rebuild exclusive slots until the array is whole again.
        self.action_log.extend(schedule.run_out(cluster))
        for _ in range(8 * self.scenario.steps):
            if not cluster.rebuilders:
                break
            cluster.clock.advance_us(self.scenario.think_us)
            cluster.step_rebuilds(force=True)
        else:
            self.violations.append("rebuild never completed at run-out")
        self._verify_convergence(agent, descriptor)
        finale = self._exhaust_redundancy() if self.scenario.exhaust_finale else None
        return self._report(finale)

    def _write(self, agent, descriptor: int) -> None:
        cluster = self.cluster
        version = self.version
        offset = version * AGENT_LEN
        content = version_content(version, AGENT_LEN)
        start = cluster.clock.now_us
        degraded = self.array.state is not ArrayState.OPTIMAL
        self.stats["writes"] += 1
        self.stats["writes_degraded"] += 1 if degraded else 0
        try:
            agent.pwrite(descriptor, content, offset)
            cluster.machine.file_agent.router.flush_volume(0)
        except (RpcError, RhodosError) as exc:
            self.violations.append(
                f"t={start}us write v{version} failed "
                f"({type(exc).__name__}) — the volume must keep serving"
            )
            return
        self.acked[offset] = content
        self.version = version + 1

    def _read(self, agent, descriptor: int) -> None:
        cluster = self.cluster
        offsets = sorted(self.acked)
        offset = offsets[self.rng.randrange(len(offsets))]
        start = cluster.clock.now_us
        degraded = self.array.state is not ArrayState.OPTIMAL
        self.stats["reads"] += 1
        self.stats["reads_degraded"] += 1 if degraded else 0
        try:
            data = agent.pread(descriptor, AGENT_LEN, offset)
        except (RpcError, RhodosError) as exc:
            self.violations.append(
                f"t={start}us read at {offset} failed "
                f"({type(exc).__name__}) — reads are never unavailable"
            )
            return
        if data != self.acked[offset]:
            self.violations.append(
                f"t={start}us read at {offset} returned wrong bytes "
                f"({data[:8]!r}...)"
            )

    # ----------------------------------------------------- invariants

    def _verify_convergence(self, agent, descriptor: int) -> None:
        cluster = self.cluster
        if self.array.state is not ArrayState.OPTIMAL:
            self.violations.append(
                f"array ended {self.array.state.name}, not OPTIMAL"
            )
        for entry in self.state_log:
            if entry[2] == "FAILED":
                self.violations.append(
                    f"t={entry[0]}us array went FAILED with redundancy "
                    f"remaining"
                )
        # Durability against the server's durable state, not bus luck.
        agent_name = agent.system_name(descriptor)
        server = cluster.file_servers[agent_name.volume_id]
        for offset in sorted(self.acked):
            data = server.read(agent_name, offset, AGENT_LEN)
            if data != self.acked[offset]:
                self.violations.append(
                    f"acked write at offset {offset} lost after rebuild"
                )
        if cluster.health.is_down(volume_component(0)):
            self.violations.append(
                "health registry still holds the volume down after the "
                "array returned to OPTIMAL"
            )

    def _exhaust_redundancy(self) -> Dict[str, object]:
        """Kill two members: FAILED is mandatory, silence is forbidden."""
        cluster = self.cluster
        cluster.fail_member(0, 0)
        cluster.fail_member(0, 1)
        if self.array.state is not ArrayState.FAILED:
            self.violations.append(
                f"two members dead but array is {self.array.state.name}"
            )
        refused = served = 0
        for sector in (0, 8, 64):
            try:
                data = cluster.disks[0].read_sectors(sector, 1)
            except ArrayFailedError:
                refused += 1
                continue
            served += 1
            self.violations.append(
                f"FAILED array served {len(data)} bytes at sector {sector}"
            )
        return {
            "health_down": cluster.health.is_down(volume_component(0)),
            "reads_refused": refused,
            "reads_served": served,
            "state": self.array.state.name,
        }

    def _report(self, finale: Optional[Dict[str, object]]) -> Dict[str, object]:
        metrics = self.cluster.metrics
        counters = {
            name: metrics.get(name)
            for name in (
                "cluster.member_failures",
                "cluster.member_replacements",
                "health.marked_down",
                "health.recoveries",
                "health.transient_errors",
                "recovery.member_kills_injected",
                "recovery.member_replacements_injected",
                "raid.0.degraded_reads",
                "raid.0.degraded_writes",
                "raid.0.journal_arms",
                "raid.0.member_failures",
                "raid.0.member_replacements",
                "raid.0.parity_writes",
                "raid.0.rebuild.chunks",
                "raid.0.rebuild.steps_yielded",
                "raid.0.segments_reconstructed",
            )
        }
        return {
            "counters": counters,
            "description": self.scenario.description,
            "events": [
                [event.at_us, event.volume_id, event.member_index, event.down_us]
                for event in self.scenario.events
            ],
            "finale": finale,
            "final_versions": {"writes_acked": len(self.acked)},
            "layout": {
                "chunk_sectors": self.scenario.chunk_sectors,
                "level": self.scenario.level,
                "members": self.scenario.members,
            },
            "lifecycle_log": self.action_log,
            "member_windows": [
                list(window) for window in self.schedule.member_windows()
            ],
            "ops": dict(sorted(self.stats.items())),
            "seed": self.scenario.seed,
            "state_log": self.state_log,
            "status": "pass" if not self.violations else "fail",
            "violations": list(self.violations),
        }


class _ShardRun:
    """One sharded-namespace scenario: kills, failover, verdicts.

    The ``storm`` kind binds fresh names and resolves acked ones over
    the lossy RPC bus while the schedule kills and restarts one shard
    server.  SLOs: an acked name **never** fails to resolve (reads fail
    over to the replica peer), bind failures fall only inside the
    scheduled kill window plus the parametric recovery allowance, and
    after the restart every acked binding resolves with its exact
    target while the per-shard dumps stay pairwise disjoint.

    The ``rebalance`` kind runs an online migration and kills its
    destination mid-stream: the migration must abort (sources keep sole
    ownership — zero resolve misses at every step), then re-run to
    completion after the restart with the map epoch bumped.
    """

    def __init__(self, scenario: ShardScenario) -> None:
        self.scenario = scenario
        profile = scenario.profile if scenario.kind == "storm" else None
        self.cluster = RhodosCluster(
            ClusterConfig(
                n_machines=1,
                n_disks=1,
                n_shards=scenario.n_shards,
                fault_profile=profile,
                rpc_backoff=BACKOFF,
                rpc_breaker=BREAKER,
                client_cache_blocks=0,
                seed=scenario.seed,
            )
        )
        self.schedule = FailureSchedule(
            scenario.events, self.cluster.clock, metrics=self.cluster.metrics
        )
        self.rng = random.Random(scenario.seed)
        self.action_log: List[str] = []
        self.acked: Dict[str, Tuple[AttributedName, str]] = {}
        self.attempted: Dict[str, Tuple[AttributedName, str]] = {}
        self.failures: List[Tuple[int, int, str]] = []
        self.stats = {
            "binds": 0,
            "resolves": 0,
            "failed_binds": 0,
            "failed_resolves": 0,
        }
        self.violations: List[str] = []

    # ------------------------------------------------------- workload

    def run(self) -> Dict[str, object]:
        if self.scenario.kind == "rebalance":
            return self._run_rebalance()
        return self._run_storm()

    def _run_storm(self) -> Dict[str, object]:
        cluster, schedule = self.cluster, self.schedule
        for step in range(self.scenario.steps):
            self.action_log.extend(schedule.poll(cluster))
            cluster.clock.advance_us(self.scenario.think_us)
            if self.rng.random() < 0.45 or not self.acked:
                self._bind(step)
            else:
                self._resolve()
        self.action_log.extend(schedule.run_out(cluster))
        if cluster.bus is not None:
            cluster.bus.drain_delayed()
        self._verify_convergence()
        self._check_bind_windows()
        if cluster.metrics.get("naming_shard.failovers") == 0:
            self.violations.append(
                "the storm never exercised a failover read — the kill "
                "window missed the workload entirely"
            )
        return self._report()

    def _bind(self, step: int) -> None:
        cluster = self.cluster
        path = f"/storm/dev{step}"
        name = AttributedName.tty(f"dev{step}", path=path)
        target = f"host{step % 4}:{path}"
        start = cluster.clock.now_us
        self.stats["binds"] += 1
        self.attempted[path] = (name, target)
        try:
            # rebind, not bind: a reply lost after the server applied
            # the write makes a retried bind a duplicate — rebind is
            # idempotent at the workload layer, and the shard's reply
            # cache absorbs bus-level duplicates below it.
            cluster.naming.rebind(name, target)
        except (RpcError, RhodosError) as exc:
            self.stats["failed_binds"] += 1
            self.failures.append(
                (start, cluster.clock.now_us, f"bind:{type(exc).__name__}")
            )
            return
        self.acked[path] = (name, target)

    def _resolve(self) -> None:
        cluster = self.cluster
        paths = sorted(self.acked)
        path = paths[self.rng.randrange(len(paths))]
        name, target = self.acked[path]
        start = cluster.clock.now_us
        self.stats["resolves"] += 1
        try:
            observed = cluster.naming.resolve(name)
        except (RpcError, RhodosError) as exc:
            self.stats["failed_resolves"] += 1
            self.violations.append(
                f"t={start}us resolve {path} failed "
                f"({type(exc).__name__}) — acked names must fail over"
            )
            return
        if observed != target:
            self.violations.append(
                f"t={start}us resolve {path} returned {observed!r}, "
                f"acked {target!r}"
            )

    # ----------------------------------------------------- rebalancing

    def _run_rebalance(self) -> Dict[str, object]:
        cluster = self.cluster
        manager = cluster.shard_manager
        for index in range(40):
            path = f"/reb/dev{index}"
            name = AttributedName.tty(f"dev{index}", path=path)
            target = f"host{index % 4}:{path}"
            cluster.naming.rebind(name, target)
            self.acked[path] = self.attempted[path] = (name, target)
            self.stats["binds"] += 1
        epoch_before = cluster.naming.map_epoch

        spare = cluster.add_shard()
        slots = manager.begin_rebalance(spare)
        self.action_log.append(
            f"rebalance {len(slots)} slot(s) -> shard {spare}"
        )
        streamed_before_kill = 0
        for _round in range(3):
            if manager.rebalance_done:
                break
            streamed_before_kill += manager.step_rebalance(max_bindings=4)
            self._resolve_all("mid-stream")
        cluster.fail_shard(spare)
        self.action_log.append(f"kill migration target shard {spare}")
        manager.step_rebalance(max_bindings=4)
        if manager.rebalance_in_flight:
            self.violations.append(
                "migration survived its destination's death"
            )
        self._resolve_all("post-abort")

        cluster.restart_shard(spare)
        self.action_log.append(f"restart shard {spare}")
        slots = manager.begin_rebalance(spare)
        while not manager.rebalance_done:
            manager.step_rebalance(max_bindings=8)
            self._resolve_all("re-run")
        manager.complete_rebalance()
        self.action_log.append(f"cutover: {len(slots)} slot(s) moved")
        if manager.map.epoch <= epoch_before:
            self.violations.append(
                f"map epoch never advanced past {epoch_before}"
            )
        if cluster.shards[spare].size() == 0:
            self.violations.append(
                f"shard {spare} owns no bindings after the cutover"
            )
        self._resolve_all("post-cutover")
        # The router learns the new map lazily — a post-cutover resolve
        # of a moved name hits WrongShardError and re-fetches.
        if cluster.naming.map_epoch != manager.map.epoch:
            self.violations.append(
                f"router stuck at epoch {cluster.naming.map_epoch}, "
                f"manager at {manager.map.epoch}"
            )
        self._verify_convergence()
        return self._report()

    def _resolve_all(self, stage: str) -> None:
        cluster = self.cluster
        for path in sorted(self.acked):
            name, target = self.acked[path]
            self.stats["resolves"] += 1
            try:
                observed = cluster.naming.resolve(name)
            except (RpcError, RhodosError) as exc:
                self.stats["failed_resolves"] += 1
                self.violations.append(
                    f"{stage}: resolve {path} missed "
                    f"({type(exc).__name__}) — migration must be invisible"
                )
                continue
            if observed != target:
                self.violations.append(
                    f"{stage}: resolve {path} returned {observed!r}, "
                    f"acked {target!r}"
                )

    # ----------------------------------------------------- invariants

    def _verify_convergence(self) -> None:
        cluster = self.cluster
        for path in sorted(self.acked):
            name, target = self.acked[path]
            try:
                observed = cluster.naming.resolve(name)
            except (RpcError, RhodosError) as exc:
                self.violations.append(
                    f"{path}: acked binding lost after run-out ({exc})"
                )
                continue
            if observed != target:
                self.violations.append(
                    f"{path}: resolves to {observed!r} after run-out, "
                    f"acked {target!r}"
                )
        # The partition invariant: per-shard dumps pairwise disjoint,
        # every acked binding present, nothing present that was never
        # attempted (a failed bind may have applied server-side — its
        # reply was lost — so the union may exceed the acked set, but
        # never the attempted set).
        seen: Dict[str, int] = {}
        union: Dict[str, str] = {}
        for shard_id, blob in sorted(cluster.naming.shard_dumps().items()):
            part = NamingService.from_bytes(blob)
            for name in part:
                path = name.get("path") or repr(name)
                if path in seen:
                    self.violations.append(
                        f"{path} lives on shards {seen[path]} and {shard_id}"
                    )
                seen[path] = shard_id
                union[path] = part.resolve(name)
        for path in sorted(self.acked):
            _name, target = self.acked[path]
            if union.get(path) != target:
                self.violations.append(
                    f"{path}: acked {target!r} but the dumps hold "
                    f"{union.get(path)!r}"
                )
        # Only the campaign's own names are policed — the cluster seeds
        # bindings of its own (the root directory).
        prefix = "/storm/" if self.scenario.kind == "storm" else "/reb/"
        for path in sorted(set(union) - set(self.attempted)):
            if path.startswith(prefix):
                self.violations.append(
                    f"{path}: present in a shard dump but never attempted"
                )

    def _check_bind_windows(self) -> None:
        """Bind failures are legal only inside kill windows + allowance."""
        allowance = recovery_allowance_us(self.scenario)
        scheduled = [
            (event.at_us, event.restart_at_us)
            for event in self.scenario.events
        ]
        out_of_bound = [
            [start, end, kind]
            for start, end, kind in self.failures
            if not any(
                s_start <= start and end <= s_end + allowance
                for s_start, s_end in scheduled
            )
        ]
        if out_of_bound:
            self.violations.append(
                f"bind failures outside scheduled-downtime bound: "
                f"{out_of_bound}"
            )

    def _report(self) -> Dict[str, object]:
        metrics = self.cluster.metrics
        counters = {
            name: metrics.get(name)
            for name in (
                "cluster.shard_failures",
                "cluster.shard_restarts",
                "cluster.shards_added",
                "health.marked_down",
                "health.recoveries",
                "naming_shard.failovers",
                "naming_shard.fan_outs",
                "naming_shard.migrations_aborted",
                "naming_shard.migrations_completed",
                "naming_shard.migrations_started",
                "naming_shard.redirects",
                "naming_shard.resyncs",
                "naming_shard.streamed_bindings",
                "recovery.shard_kills_injected",
                "recovery.shard_restarts_injected",
                "rpc.breaker_opens",
                "rpc.retransmissions",
            )
        }
        return {
            "counters": counters,
            "description": self.scenario.description,
            "events": [
                [event.at_us, event.shard_id, event.down_us]
                for event in self.scenario.events
            ],
            "failures": [
                [start, end, kind] for start, end, kind in self.failures
            ],
            "final_versions": {
                "acked_bindings": len(self.acked),
                "attempted_bindings": len(self.attempted),
            },
            "lifecycle_log": self.action_log,
            "n_shards": self.scenario.n_shards,
            "ops": dict(sorted(self.stats.items())),
            "seed": self.scenario.seed,
            "shard_windows": [
                list(window) for window in self.schedule.shard_windows()
            ],
            "status": "pass" if not self.violations else "fail",
            "violations": list(self.violations),
        }


def run_scenario(scenario) -> Dict[str, object]:
    """Execute one scenario; returns its deterministic report dict."""
    if isinstance(scenario, ScrubScenario):
        return _ScrubRun(scenario).run()
    if isinstance(scenario, RaidScenario):
        return _RaidRun(scenario).run()
    if isinstance(scenario, ShardScenario):
        return _ShardRun(scenario).run()
    return _Run(scenario).run()


def run_campaign(names: List[str]) -> Dict[str, object]:
    """Run the named scenarios; returns the full JSON document."""
    by_name: Dict[str, object] = {
        scenario.name: scenario
        for scenario in (
            *SCENARIOS,
            *SCRUB_SCENARIOS,
            *RAID_SCENARIOS,
            *SHARD_SCENARIOS,
        )
    }
    unknown = sorted(set(names) - set(by_name))
    if unknown:
        raise SystemExit(
            f"unknown scenario(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(by_name))})"
        )
    return {
        "schema_version": 1,
        "suite": "repro-availability",
        "scenarios": {name: run_scenario(by_name[name]) for name in names},
    }


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.availability",
        description=(
            "Crash/restart availability campaign: mixed workload under "
            "fault injection, SLO invariants, machine-readable report."
        ),
    )
    scope = parser.add_mutually_exclusive_group()
    scope.add_argument(
        "--all", action="store_true", help="run every scenario (default)"
    )
    scope.add_argument(
        "--smoke",
        action="store_true",
        help=f"run the fast subset only: {', '.join(SMOKE_SCENARIOS)}",
    )
    scope.add_argument(
        "--only", nargs="+", metavar="NAME", help="run the named scenarios only"
    )
    parser.add_argument(
        "--out",
        default="AVAILABILITY_pr10.json",
        help="output path (default: %(default)s)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenario names and exit"
    )
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    if args.list:
        for scenario in (
            *SCENARIOS,
            *SCRUB_SCENARIOS,
            *RAID_SCENARIOS,
            *SHARD_SCENARIOS,
        ):
            print(f"{scenario.name:24s} {scenario.description}")
        return 0
    if args.only:
        names = list(args.only)
    elif args.smoke:
        names = list(SMOKE_SCENARIOS)
    else:
        names = [
            scenario.name
            for scenario in (
                *SCENARIOS,
                *SCRUB_SCENARIOS,
                *RAID_SCENARIOS,
                *SHARD_SCENARIOS,
            )
        ]
    document = run_campaign(names)
    out_path = Path(args.out)
    out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    statuses = {
        name: str(report["status"])
        for name, report in document["scenarios"].items()  # type: ignore[union-attr]
    }
    for name, status in statuses.items():
        print(f"{name:20s} {status}", file=sys.stderr)
    passed = sum(1 for status in statuses.values() if status == "pass")
    print(
        f"{len(statuses)} scenario(s): {passed} pass, "
        f"{len(statuses) - passed} fail -> {out_path}",
        file=sys.stderr,
    )
    return 0 if passed == len(statuses) else 1


if __name__ == "__main__":
    raise SystemExit(main())
