"""Recovery invariants the crash sweep checks after every crash point.

A recovered volume must satisfy four properties, regardless of which
physical write the crash interrupted:

1. **Stable mirror agreement** — after :meth:`StableStore.recover`,
   both careful-write mirrors decode, agree on version, and hold
   identical payloads for every record (Lampson's invariant).
2. **Intentions-list atomicity** — recovery consumed every intention
   record and flag: a leftover ``intent:`` or ``txnflag:`` key means a
   transaction was neither redone nor discarded.
3. **Free-space reconciliation** — the 64x64 free-extent array indexes
   exactly the maximal free runs of the fragment bitmap.
4. **fsck cleanliness** — no cross-linked blocks, no lost blocks, no
   size anomalies.  Orphaned fragments are *warnings* (leaked space is
   safe); the bitmap-before-structure ordering in the disk server
   guarantees crashes leak, never lose.
"""

from __future__ import annotations

from typing import List

from repro.file_service.server import FileServer
from repro.verify.fsck import fsck_volume


def check_volume(file_server: FileServer) -> List[str]:
    """All post-recovery invariants of one volume; empty = healthy."""
    tag = f"volume {file_server.volume_id}"
    violations: List[str] = []

    stable = file_server.disk.stable
    for problem in stable.verify_mirrors():
        violations.append(f"{tag}: {problem}")

    residue = sorted(
        key
        for key in stable.keys()
        if key.startswith(("intent:", "txnflag:"))
    )
    if residue:
        violations.append(
            f"{tag}: recovery left intention state behind: {residue} "
            f"(transaction neither redone nor discarded)"
        )

    try:
        file_server.disk.extent_table.check_against(file_server.disk.bitmap)
    except AssertionError as exc:
        violations.append(f"{tag}: free-extent array out of sync: {exc}")

    report = fsck_volume(file_server)
    for error in report.errors:
        violations.append(f"{tag}: fsck: {error}")

    return violations
