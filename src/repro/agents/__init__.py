"""Client-side agents.

"On each machine, all client processes acquire the services of the
distributed file facility through special processes known as a file
agent and a transaction agent ... Also on each machine, there is one
process called a device agent which facilitates I/O on devices"
(paper section 3).

* :class:`DeviceAgent` — TTY objects, object descriptors **below**
  100 000, the three standard streams, and stdio redirection (a
  redirected stdout/stdin/stderr becomes descriptor 100001/100002/
  100003 respectively).
* :class:`FileAgent` — FILE objects, object descriptors **above**
  100 000, attributed-name resolution through the naming service, a
  client block cache with the delayed-write policy, per-descriptor
  file positions (which is what makes ``read``/``write`` vs
  ``pread``/``pwrite`` and ``lseek`` client-side concepts and keeps
  the file service nearly stateless), and idempotent retransmitted
  requests.
* :class:`Process` — the process model, including mediumweight
  children created with ``process_twin`` that inherit the parent's
  object descriptors but are forbidden while transactions are live.
"""

from repro.agents.routing import DirectRouter, FileServiceRouter
from repro.agents.devices import DeviceAgent, SimTTY
from repro.agents.file_agent import FileAgent
from repro.agents.process import Process

__all__ = [
    "FileServiceRouter",
    "DirectRouter",
    "DeviceAgent",
    "SimTTY",
    "FileAgent",
    "Process",
]
