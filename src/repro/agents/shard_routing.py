"""Transports between a :class:`ShardedNamespace` and its shard servers.

The router speaks one tiny protocol — ``caller(op, args)`` — and this
module provides both ends of it, mirroring ``agents.routing`` for file
servers: a direct in-process closure (unit tests, flat clusters) and
an RPC stub over the message bus (the cluster facade), plus the
exposure table that puts a :class:`NamingShard` behind an
:class:`~repro.rpc.endpoint.RpcServer` endpoint.  Payloads are
positional ``(args,)`` tuples, so every operation is idempotent under
retransmission — binds are guarded server-side by the slot check and
``NameExistsError`` exactly as a re-sent create is guarded by the FIT.

Because shard endpoints ride the same :class:`~repro.rpc.bus.MessageBus`
as the file servers, the whole reliability stack — retries, seeded
backoff, per-destination circuit breakers, fault profiles — applies to
metadata traffic unchanged.
"""

from __future__ import annotations

from typing import Any

from repro.naming.shard import NamingShard, ShardCaller
from repro.rpc.endpoint import RpcClient, RpcServer

#: Every operation a shard server answers; shared by the exposure and
#: the stubs so the two sides cannot drift apart.
NAMING_SHARD_OPS = (
    "bind",
    "rebind",
    "unbind",
    "resolve",
    "contains",
    "unbind_path",
    "match",
    "list_paths",
    "size",
    "names",
    "dump",
    "replica_dump",
    "replica_resolve",
    "replica_match",
    "replica_contains",
    "replica_list_paths",
    "replica_size",
    "replica_names",
)


def shard_address(shard_id: int) -> str:
    """The bus address of one shard server's endpoint."""
    return f"naming_shard.{shard_id}"


def expose_naming_shard(shard: NamingShard, rpc_server: RpcServer) -> None:
    """Expose a shard server's operations on an RPC endpoint."""

    def wrap(method_name: str):
        method = getattr(shard, method_name)

        def handler(payload: Any) -> Any:
            return method(*payload)

        return handler

    for op in NAMING_SHARD_OPS:
        rpc_server.expose(op, wrap(op))


def direct_shard_caller(shard: NamingShard) -> ShardCaller:
    """In-process transport: dispatch straight into the shard object."""

    def caller(op: str, args: tuple) -> Any:
        return getattr(shard, op)(*args)

    return caller


def rpc_shard_caller(client: RpcClient, address: str) -> ShardCaller:
    """Bus transport: one RPC per operation, faults and breakers apply."""

    def caller(op: str, args: tuple) -> Any:
        return client.call(address, op, args)

    return caller
