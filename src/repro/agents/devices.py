"""The device agent and TTY objects.

"On each machine, there is one process called a device agent which
facilitates I/O on devices such as communication ports, keyboards, and
monitors.  ...  the device agent refers to a device by its system
name.  ...  the object descriptor returned by the device agent is
always less than a predecided integer say 100,000" (paper section 3).

Every process starts with three global environment variables — stdin,
stdout, stderr — valued 0, 1 and 2; redirection replaces them with
100002, 100001 and 100003 respectively (see
:class:`repro.agents.process.Process`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.common.errors import BadDescriptorError, NamingError
from repro.common.ids import DEVICE_DESCRIPTOR_LIMIT
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName, ObjectType
from repro.naming.service import NamingService

#: Descriptors of the preopened standard streams.
STDIN_DESCRIPTOR = 0
STDOUT_DESCRIPTOR = 1
STDERR_DESCRIPTOR = 2


class SimTTY:
    """A simulated character device: an input queue and an output log."""

    def __init__(self, system_name: str) -> None:
        self.system_name = system_name
        self._input: Deque[int] = deque()
        self.output = bytearray()

    def feed_input(self, data: bytes) -> None:
        """Queue bytes as if typed at the device."""
        self._input.extend(data)

    def read(self, n_bytes: int) -> bytes:
        """Consume up to ``n_bytes`` from the input queue (non-blocking)."""
        taken = bytearray()
        while self._input and len(taken) < n_bytes:
            taken.append(self._input.popleft())
        return bytes(taken)

    def write(self, data: bytes) -> int:
        self.output.extend(data)
        return len(data)

    def __repr__(self) -> str:
        return f"SimTTY({self.system_name!r}, pending_in={len(self._input)})"


class DeviceAgent:
    """Per-machine gateway to devices; descriptors stay below 100 000."""

    def __init__(
        self,
        machine_id: str,
        naming: NamingService,
        metrics: Metrics,
    ) -> None:
        self.machine_id = machine_id
        self.naming = naming
        self.metrics = metrics
        self._registry: Dict[str, SimTTY] = {}
        self._open: Dict[int, SimTTY] = {}
        self._next_descriptor = 3  # 0..2 are the standard streams
        console = SimTTY(f"{machine_id}:console")
        self.register_device(console)
        self._open[STDIN_DESCRIPTOR] = console
        self._open[STDOUT_DESCRIPTOR] = console
        self._open[STDERR_DESCRIPTOR] = console
        self.console = console

    # ------------------------------------------------------ registry

    def register_device(self, tty: SimTTY, attributed: AttributedName | None = None) -> None:
        """Attach a device to this machine, optionally binding its name."""
        self._registry[tty.system_name] = tty
        if attributed is not None:
            self.naming.rebind(attributed, tty.system_name)

    # ----------------------------------------------------------- api

    def open(self, name: AttributedName) -> int:
        """Resolve a TTY attributed name and return an object descriptor."""
        if name.object_type is not ObjectType.TTY:
            raise NamingError(f"{name} is not a TTY name")
        system_name = self.naming.resolve(name)
        tty = self._registry.get(system_name)  # type: ignore[arg-type]
        if tty is None:
            raise NamingError(
                f"device {system_name!r} is not attached to machine "
                f"{self.machine_id!r}"
            )
        descriptor = self._next_descriptor
        if descriptor >= DEVICE_DESCRIPTOR_LIMIT:
            raise BadDescriptorError("device descriptor space exhausted")
        self._next_descriptor += 1
        self._open[descriptor] = tty
        self.metrics.add("device_agent.opens")
        return descriptor

    def read(self, descriptor: int, n_bytes: int) -> bytes:
        self.metrics.add("device_agent.reads")
        return self._device(descriptor).read(n_bytes)

    def write(self, descriptor: int, data: bytes) -> int:
        self.metrics.add("device_agent.writes")
        return self._device(descriptor).write(data)

    def close(self, descriptor: int) -> None:
        if descriptor in (STDIN_DESCRIPTOR, STDOUT_DESCRIPTOR, STDERR_DESCRIPTOR):
            raise BadDescriptorError("the standard streams cannot be closed")
        if self._open.pop(descriptor, None) is None:
            raise BadDescriptorError(f"descriptor {descriptor} is not open")
        self.metrics.add("device_agent.closes")

    def is_open(self, descriptor: int) -> bool:
        return descriptor in self._open

    # ------------------------------------------------------ internal

    def _device(self, descriptor: int) -> SimTTY:
        tty = self._open.get(descriptor)
        if tty is None:
            raise BadDescriptorError(f"descriptor {descriptor} is not an open device")
        return tty
