"""The process model: environment variables, redirection, process_twin.

Paper section 3: every process is created with three global environment
variables — stdin, stdout, stderr — defaulting to 0, 1 and 2.  A
process that redirects its standard output gets stdout = 100001;
standard input, stdin = 100002; standard error, stderr = 100003 (all
above the 100 000 device/file descriptor boundary, so redirected
streams transparently go to files).

A **mediumweight process** shares text and data with its parent but
has its own stack; a child created with ``process_twin`` "will inherit
all the object descriptors of the devices and files opened by the
parent process and also the transaction descriptors of all the
transactions initiated by the parent process.  However, inheritance of
the transaction descriptors ... poses a serious threat to the
serializability property of a transaction.  Therefore, processes which
perform I/O on devices and files using the semantics of the basic file
service can only invoke the process-twin operation."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import BadDescriptorError, ProcessError
from repro.common.ids import (
    REDIRECTED_STDERR,
    REDIRECTED_STDIN,
    REDIRECTED_STDOUT,
    descriptor_is_device,
    monotonic_id_factory,
)
from repro.agents.devices import DeviceAgent
from repro.agents.file_agent import FileAgent

_next_pid = monotonic_id_factory()


class Process:
    """A client process bound to its machine's device and file agents.

    The descriptor *tables* live in the agents; the process holds its
    environment variables and — for mediumweight families — a shared
    view of which descriptors the family owns.
    """

    def __init__(
        self,
        device_agent: DeviceAgent,
        file_agent: FileAgent,
        *,
        parent: Optional["Process"] = None,
    ) -> None:
        self.pid = _next_pid()
        self.device_agent = device_agent
        self.file_agent = file_agent
        self.parent = parent
        if parent is None:
            self.env: Dict[str, int] = {"stdin": 0, "stdout": 1, "stderr": 2}
            self._owned_descriptors: List[int] = []
            self._redirections: Dict[int, int] = {}
            self._transaction_descriptors: List[int] = []
        else:
            # Mediumweight: shares data space, hence the *same* tables.
            self.env = dict(parent.env)
            self._owned_descriptors = parent._owned_descriptors
            self._redirections = parent._redirections
            self._transaction_descriptors = parent._transaction_descriptors

    # ----------------------------------------------------- file I/O

    def open(self, name) -> int:
        descriptor = self.file_agent.open(name)
        self._owned_descriptors.append(descriptor)
        return descriptor

    def create(self, name, **kwargs) -> int:
        descriptor = self.file_agent.create(name, **kwargs)
        self._owned_descriptors.append(descriptor)
        return descriptor

    def close(self, descriptor: int) -> None:
        if descriptor_is_device(descriptor):
            self.device_agent.close(descriptor)
        else:
            self.file_agent.close(descriptor)
        if descriptor in self._owned_descriptors:
            self._owned_descriptors.remove(descriptor)

    def read(self, descriptor: int, n_bytes: int) -> bytes:
        descriptor = self._redirections.get(descriptor, descriptor)
        if descriptor_is_device(descriptor):
            return self.device_agent.read(descriptor, n_bytes)
        return self.file_agent.read(descriptor, n_bytes)

    def write(self, descriptor: int, data: bytes) -> int:
        descriptor = self._redirections.get(descriptor, descriptor)
        if descriptor_is_device(descriptor):
            return self.device_agent.write(descriptor, data)
        return self.file_agent.write(descriptor, data)

    # -------------------------------------------------- std streams

    def stdin_read(self, n_bytes: int) -> bytes:
        return self.read(self.env["stdin"], n_bytes)

    def stdout_write(self, data: bytes) -> int:
        return self.write(self.env["stdout"], data)

    def stderr_write(self, data: bytes) -> int:
        return self.write(self.env["stderr"], data)

    def redirect_stdout(self, file_descriptor: int) -> None:
        """Send standard output to an open file (stdout := 100001)."""
        self._check_file_descriptor(file_descriptor)
        self.env["stdout"] = REDIRECTED_STDOUT
        self._redirections[REDIRECTED_STDOUT] = file_descriptor

    def redirect_stdin(self, file_descriptor: int) -> None:
        """Take standard input from an open file (stdin := 100002)."""
        self._check_file_descriptor(file_descriptor)
        self.env["stdin"] = REDIRECTED_STDIN
        self._redirections[REDIRECTED_STDIN] = file_descriptor

    def redirect_stderr(self, file_descriptor: int) -> None:
        """Send standard error to an open file (stderr := 100003)."""
        self._check_file_descriptor(file_descriptor)
        self.env["stderr"] = REDIRECTED_STDERR
        self._redirections[REDIRECTED_STDERR] = file_descriptor

    # ------------------------------------------------- transactions

    def note_transaction_started(self, transaction_descriptor: int) -> None:
        """Record a live transaction (set by the transaction agent)."""
        self._transaction_descriptors.append(transaction_descriptor)

    def note_transaction_finished(self, transaction_descriptor: int) -> None:
        if transaction_descriptor in self._transaction_descriptors:
            self._transaction_descriptors.remove(transaction_descriptor)

    @property
    def live_transactions(self) -> List[int]:
        return list(self._transaction_descriptors)

    # --------------------------------------------------------- twin

    def process_twin(self) -> "Process":
        """Create a mediumweight child inheriting all descriptors.

        Forbidden while any transaction initiated by this process (or
        its mediumweight family) is live, because the child would
        inherit the transaction descriptors and break serializability.
        """
        if self._transaction_descriptors:
            raise ProcessError(
                f"process {self.pid} has live transactions "
                f"{self._transaction_descriptors}; only processes using "
                f"basic file semantics may invoke process_twin"
            )
        return Process(self.device_agent, self.file_agent, parent=self)

    # ------------------------------------------------------ internal

    @staticmethod
    def _check_file_descriptor(descriptor: int) -> None:
        if descriptor_is_device(descriptor):
            raise BadDescriptorError(
                f"redirection target {descriptor} is a device descriptor; "
                f"redirection targets must be files (> 100000)"
            )

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, env={self.env})"
