"""Communication ports: inter-machine byte pipes as devices.

Paper section 3: the device agent "facilitates I/O on devices such as
**communication ports**, keyboards, and monitors."  A communication
port is a unidirectional byte channel between two machines; a pair of
ports gives a full-duplex link.  Ports are ordinary TTY-class devices:
opened through the device agent by attributed name, read and written
through object descriptors below 100 000, so redirection and
``process_twin`` inheritance work on them unchanged.

The channel charges the shared clock a per-byte transfer cost,
modelling a serial line.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.agents.devices import DeviceAgent, SimTTY
from repro.common.clock import SimClock
from repro.common.frames import charge_elapsed
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName


class _Channel:
    """The shared byte queue between two port endpoints."""

    __slots__ = ("buffer", "capacity", "clock", "byte_time_us", "metrics", "name")

    def __init__(
        self,
        name: str,
        clock: SimClock,
        metrics: Metrics,
        *,
        capacity: int,
        byte_time_us: float,
    ) -> None:
        self.name = name
        self.clock = clock
        self.metrics = metrics
        self.capacity = capacity
        self.byte_time_us = byte_time_us
        self.buffer: Deque[int] = deque()

    def send(self, data: bytes) -> int:
        """Queue bytes up to the channel capacity; returns bytes accepted."""
        room = self.capacity - len(self.buffer)
        accepted = data[: max(0, room)]
        self.buffer.extend(accepted)
        charge_elapsed(self.clock, self.byte_time_us * len(accepted))
        self.metrics.add(f"port.{self.name}.bytes_sent", len(accepted))
        return len(accepted)

    def receive(self, n_bytes: int) -> bytes:
        taken = bytearray()
        while self.buffer and len(taken) < n_bytes:
            taken.append(self.buffer.popleft())
        self.metrics.add(f"port.{self.name}.bytes_received", len(taken))
        return bytes(taken)


class PortEndpoint(SimTTY):
    """One end of a full-duplex link: writes go out, reads come in."""

    def __init__(self, system_name: str, outbound: _Channel, inbound: _Channel) -> None:
        super().__init__(system_name)
        self._outbound = outbound
        self._inbound = inbound

    def write(self, data: bytes) -> int:  # noqa: D102 - SimTTY contract
        return self._outbound.send(data)

    def read(self, n_bytes: int) -> bytes:  # noqa: D102 - SimTTY contract
        return self._inbound.receive(n_bytes)

    @property
    def pending_in(self) -> int:
        return len(self._inbound.buffer)


def connect_machines(
    name: str,
    agent_a: DeviceAgent,
    agent_b: DeviceAgent,
    clock: SimClock,
    metrics: Metrics,
    *,
    capacity: int = 64 * 1024,
    byte_time_us: float = 8.7,  # ~115200 baud serial line
) -> Tuple[int, int]:
    """Create a full-duplex port pair between two machines.

    Registers one endpoint per device agent under the attributed name
    ``TTY{port=<name>}`` and opens both, returning the two object
    descriptors — machine A's and machine B's ends.
    """
    a_to_b = _Channel(
        f"{name}.a2b", clock, metrics, capacity=capacity, byte_time_us=byte_time_us
    )
    b_to_a = _Channel(
        f"{name}.b2a", clock, metrics, capacity=capacity, byte_time_us=byte_time_us
    )
    endpoint_a = PortEndpoint(
        f"{agent_a.machine_id}:port:{name}", outbound=a_to_b, inbound=b_to_a
    )
    endpoint_b = PortEndpoint(
        f"{agent_b.machine_id}:port:{name}", outbound=b_to_a, inbound=a_to_b
    )
    agent_a.register_device(
        endpoint_a, AttributedName.tty(port=name, machine=agent_a.machine_id)
    )
    agent_b.register_device(
        endpoint_b, AttributedName.tty(port=name, machine=agent_b.machine_id)
    )
    descriptor_a = agent_a.open(
        AttributedName.tty(port=name, machine=agent_a.machine_id)
    )
    descriptor_b = agent_b.open(
        AttributedName.tty(port=name, machine=agent_b.machine_id)
    )
    return descriptor_a, descriptor_b
