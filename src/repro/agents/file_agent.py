"""The file agent: per-machine client interface to the file service.

The file agent (paper section 3) resolves attributed names through
the naming service, returns object descriptors above 100 000, and
"cache[s] a substantial amount of file data to avoid trying to access
the file service for each request from a client".  It keeps the
per-descriptor file position and the per-file cached state — which is
exactly why "the RHODOS file service is 'nearly' stateless": the
agent, not the server, remembers what each client is doing, and all
server requests are positional, hence idempotent under retransmission.

Modification policy: delayed-write (paper section 5) — writes land in
the client block cache and reach the file service on ``close``,
``flush``, or cache eviction.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import BadDescriptorError, FileSizeError
from repro.common.ids import DEVICE_DESCRIPTOR_LIMIT, SystemName
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER, Tracer
from repro.common.units import BLOCK_SIZE
from repro.file_service.attributes import FileAttributes, LockingLevel, ServiceType
from repro.agents.routing import FileServiceRouter
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService

#: First descriptor the file agent hands out (100001..100003 are the
#: redirection descriptors; see repro.agents.process).
_FIRST_FILE_DESCRIPTOR = DEVICE_DESCRIPTOR_LIMIT + 10

_CacheKey = Tuple[SystemName, int]  # (file, block index)


class _CacheEntry:
    """One cached block: data plus what we know about it.

    ``valid`` means the whole block was fetched from the server;
    ``dirty`` is the byte range [dirty_lo, dirty_hi) modified locally
    and not yet written back.  A non-valid entry's bytes are only
    meaningful inside its dirty range.
    """

    __slots__ = ("data", "valid", "dirty_lo", "dirty_hi")

    def __init__(self) -> None:
        self.data = bytearray(BLOCK_SIZE)
        self.valid = False
        self.dirty_lo = BLOCK_SIZE
        self.dirty_hi = 0

    @property
    def is_dirty(self) -> bool:
        return self.dirty_hi > self.dirty_lo


@dataclass
class _OpenFile:
    """Per-descriptor state (the stateful half of 'nearly stateless')."""

    name: SystemName
    position: int = 0
    known_size: int = 0


class FileAgent:
    """Client-side file interface for one machine.

    Args:
        machine_id: for metric names (``file_agent.<machine>.*``).
        naming: the naming service (attributed name resolution).
        router: carries operations to the right file server.
        clock: shared simulated clock.
        metrics: shared counter registry.
        cache_blocks: client block-cache capacity; 0 disables client
            caching (the Amoeba-Bullet-server configuration of
            experiment E5).
        tracer: roots one trace per client operation; disabled by
            default.
    """

    def __init__(
        self,
        machine_id: str,
        naming: NamingService,
        router: FileServiceRouter,
        clock: SimClock,
        metrics: Metrics,
        *,
        cache_blocks: int = 128,
        placement: Optional[Callable[[], int]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.machine_id = machine_id
        self.naming = naming
        self.router = router
        self.clock = clock
        self.metrics = metrics
        self.placement = placement
        self.tracer = tracer or NULL_TRACER
        self.cache_blocks = cache_blocks
        self._prefix = f"file_agent.{machine_id}"
        self._open: Dict[int, _OpenFile] = {}
        self._next_descriptor = _FIRST_FILE_DESCRIPTOR
        self._cache: "OrderedDict[_CacheKey, _CacheEntry]" = OrderedDict()

    # ===================================================== lifecycle

    def create(
        self,
        name: AttributedName,
        *,
        volume_id: Optional[int] = None,
        service_type: ServiceType = ServiceType.BASIC,
        locking_level: LockingLevel = LockingLevel.DEFAULT,
    ) -> int:
        """Create a file, bind its attributed name, and open it.

        The target volume comes from, in order: the explicit argument,
        the name's ``volume`` attribute, the agent's placement policy
        (chunk->volume write placement, e.g. least-loaded), the first
        volume the router knows.  Returns an object descriptor
        (> 100 000).
        """
        if volume_id is None:
            hinted = name.get("volume")
            if hinted is not None:
                volume_id = int(hinted)
            elif self.placement is not None:
                volume_id = self.placement()
            else:
                volume_id = self.router.volume_ids()[0]
        system_name = self.router.create(
            volume_id,
            service_type=service_type,
            locking_level=locking_level,
        )
        self.naming.bind(name, system_name)
        self.metrics.add(f"{self._prefix}.creates")
        return self._open_system_name(system_name)

    def open(self, name: AttributedName) -> int:
        """Resolve and open an existing file; returns an object descriptor."""
        system_name = self.naming.resolve_file(name)
        self.metrics.add(f"{self._prefix}.opens")
        return self._open_system_name(system_name)

    def close(self, descriptor: int) -> None:
        """Flush this file's delayed writes and release the descriptor."""
        state = self._state(descriptor)
        self._flush_file(state.name)
        self.router.close(state.name)
        del self._open[descriptor]
        self.metrics.add(f"{self._prefix}.closes")

    def delete(self, name: AttributedName) -> None:
        """Unbind and delete a file (it must not be open through this agent)."""
        system_name = self.naming.resolve_file(name)
        for state in self._open.values():
            if state.name == system_name:
                raise BadDescriptorError(
                    f"{name} is still open as descriptor on this machine"
                )
        self._drop_cached(system_name)
        self.naming.unbind(name)
        self.router.delete(system_name)
        self.metrics.add(f"{self._prefix}.deletes")

    # ========================================================== read

    def read(self, descriptor: int, n_bytes: int) -> bytes:
        """Read from the current position, advancing it."""
        state = self._state(descriptor)
        data = self._read_at(state, state.position, n_bytes)
        state.position += len(data)
        return data

    def pread(self, descriptor: int, n_bytes: int, offset: int) -> bytes:
        """Positional read; the file position is untouched."""
        state = self._state(descriptor)
        return self._read_at(state, offset, n_bytes)

    # ========================================================= write

    def write(self, descriptor: int, data: bytes) -> int:
        """Write at the current position, advancing it (delayed-write)."""
        state = self._state(descriptor)
        written = self._write_at(state, state.position, data)
        state.position += written
        return written

    def pwrite(self, descriptor: int, data: bytes, offset: int) -> int:
        """Positional write; the file position is untouched."""
        state = self._state(descriptor)
        return self._write_at(state, offset, data)

    # ========================================================== misc

    def lseek(self, descriptor: int, offset: int, whence: int = os.SEEK_SET) -> int:
        """Move the file position; returns the new position."""
        state = self._state(descriptor)
        if whence == os.SEEK_SET:
            new = offset
        elif whence == os.SEEK_CUR:
            new = state.position + offset
        elif whence == os.SEEK_END:
            size = max(state.known_size, self.router.get_attribute(state.name).file_size)
            state.known_size = size
            new = size + offset
        else:
            raise FileSizeError(f"bad whence {whence}")
        if new < 0:
            raise FileSizeError(f"seek to negative position {new}")
        state.position = new
        self.metrics.add(f"{self._prefix}.lseeks")
        return new

    def get_attribute(self, descriptor: int) -> FileAttributes:
        state = self._state(descriptor)
        # Attribute reads see our delayed writes' effect on size.
        attrs = self.router.get_attribute(state.name)
        attrs.file_size = max(attrs.file_size, state.known_size)
        self.metrics.add(f"{self._prefix}.get_attributes")
        return attrs

    def flush(self) -> None:
        """Write back every dirty cached block (all files)."""
        for key in list(self._cache):
            self._writeback(key)
        self.metrics.add(f"{self._prefix}.flushes")

    def invalidate_volume(self, volume_id: int) -> int:
        """Drop every cached block of files on one volume, dirty or not.

        Called when the volume's file server crashes: its server-side
        cache died unflushed, so client copies of its blocks may
        describe state the server never made durable — serving them
        (or writing them back later) would fabricate data the
        recovered volume does not hold.  Returns how many blocks were
        dropped.
        """
        dropped = 0
        for key in list(self._cache):
            if key[0].volume_id == volume_id:
                del self._cache[key]
                dropped += 1
        if dropped:
            self.metrics.add(f"{self._prefix}.cache.invalidations", dropped)
        return dropped

    def system_name(self, descriptor: int) -> SystemName:
        """The system name behind a descriptor (diagnostics, transactions)."""
        return self._state(descriptor).name

    def open_descriptors(self) -> list[int]:
        return sorted(self._open)

    def position(self, descriptor: int) -> int:
        return self._state(descriptor).position

    # ====================================================== internal

    def _open_system_name(self, system_name: SystemName) -> int:
        attrs = self.router.open(system_name)
        descriptor = self._next_descriptor
        self._next_descriptor += 1
        self._open[descriptor] = _OpenFile(
            name=system_name, position=0, known_size=attrs.file_size
        )
        return descriptor

    def _state(self, descriptor: int) -> _OpenFile:
        state = self._open.get(descriptor)
        if state is None:
            raise BadDescriptorError(f"descriptor {descriptor} is not an open file")
        return state

    # ---- read path

    def _read_at(self, state: _OpenFile, offset: int, n_bytes: int) -> bytes:
        with self.tracer.span(
            "file_agent", "read", machine=self.machine_id, offset=offset
        ), self.metrics.timer(f"{self._prefix}.read_us", self.clock):
            return self._do_read_at(state, offset, n_bytes)

    def _do_read_at(self, state: _OpenFile, offset: int, n_bytes: int) -> bytes:
        if offset < 0 or n_bytes < 0:
            raise FileSizeError(f"bad read range ({offset}, {n_bytes})")
        self.metrics.add(f"{self._prefix}.reads")
        if n_bytes == 0:
            return b""
        if self.cache_blocks <= 0:
            data = self.router.read(state.name, offset, n_bytes)
            state.known_size = max(state.known_size, offset + len(data))
            return data
        end = offset + n_bytes
        first_block = offset // BLOCK_SIZE
        last_block = (end - 1) // BLOCK_SIZE
        pieces: list[bytes] = []
        for block_index in range(first_block, last_block + 1):
            block_lo = block_index * BLOCK_SIZE
            lo = max(offset, block_lo) - block_lo
            hi = min(end, block_lo + BLOCK_SIZE) - block_lo
            pieces.append(self._read_block_range(state, block_index, lo, hi))
        data = b"".join(pieces)
        # Trim to the actual file size (short read at EOF).
        size = state.known_size
        if offset + len(data) > size:
            refreshed = self.router.get_attribute(state.name).file_size
            size = max(size, refreshed)
            state.known_size = size
        return data[: max(0, min(len(data), size - offset))]

    def _read_block_range(
        self, state: _OpenFile, block_index: int, lo: int, hi: int
    ) -> bytes:
        key = (state.name, block_index)
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
            if entry.valid or (entry.dirty_lo <= lo and hi <= entry.dirty_hi):
                self.metrics.add(f"{self._prefix}.cache.hits")
                self.tracer.annotate_add("agent_cache_hits")
                return bytes(entry.data[lo:hi])
        self.metrics.add(f"{self._prefix}.cache.misses")
        self.tracer.annotate_add("agent_cache_misses")
        block_lo = block_index * BLOCK_SIZE
        fetched = self.router.read(state.name, block_lo, BLOCK_SIZE)
        if fetched:
            state.known_size = max(state.known_size, block_lo + len(fetched))
        entry = self._entry(key)
        # Keep local dirty bytes: they are newer than the server copy.
        dirty_save = bytes(entry.data[entry.dirty_lo : entry.dirty_hi])
        entry.data[: len(fetched)] = fetched
        entry.data[len(fetched) :] = bytes(BLOCK_SIZE - len(fetched))
        if entry.is_dirty:
            entry.data[entry.dirty_lo : entry.dirty_hi] = dirty_save
        entry.valid = True
        return bytes(entry.data[lo:hi])

    # ---- write path

    def _write_at(self, state: _OpenFile, offset: int, data: bytes) -> int:
        with self.tracer.span(
            "file_agent", "write", machine=self.machine_id, offset=offset
        ), self.metrics.timer(f"{self._prefix}.write_us", self.clock):
            return self._do_write_at(state, offset, data)

    def _do_write_at(self, state: _OpenFile, offset: int, data: bytes) -> int:
        if offset < 0:
            raise FileSizeError(f"bad write offset {offset}")
        self.metrics.add(f"{self._prefix}.writes")
        if not data:
            return 0
        if self.cache_blocks <= 0:
            written = self.router.write(state.name, offset, data)
            state.known_size = max(state.known_size, offset + written)
            return written
        end = offset + len(data)
        cursor = offset
        view = memoryview(data)
        while cursor < end:
            block_index = cursor // BLOCK_SIZE
            within = cursor - block_index * BLOCK_SIZE
            chunk = min(BLOCK_SIZE - within, end - cursor)
            self._write_block_range(
                state, block_index, within, bytes(view[:chunk])
            )
            view = view[chunk:]
            cursor += chunk
        state.known_size = max(state.known_size, end)
        return len(data)

    def _write_block_range(
        self, state: _OpenFile, block_index: int, lo: int, chunk: bytes
    ) -> None:
        key = (state.name, block_index)
        entry = self._entry(key)
        hi = lo + len(chunk)
        if entry.is_dirty and not entry.valid:
            # A second dirty range that does not touch the first would
            # leave an unknown gap; fetch the block to make it safe.
            touches = lo <= entry.dirty_hi and entry.dirty_lo <= hi
            if not touches:
                self._read_block_range(state, block_index, 0, BLOCK_SIZE)
                entry = self._entry(key)
        entry.data[lo:hi] = chunk
        entry.dirty_lo = min(entry.dirty_lo, lo)
        entry.dirty_hi = max(entry.dirty_hi, hi)

    # ---- cache plumbing

    def _entry(self, key: _CacheKey) -> _CacheEntry:
        entry = self._cache.get(key)
        if entry is None:
            entry = _CacheEntry()
            self._cache[key] = entry
            while len(self._cache) > self.cache_blocks:
                victim_key = next(iter(self._cache))
                self._writeback(victim_key)
                self._cache.pop(victim_key, None)
                self.metrics.add(f"{self._prefix}.cache.evictions")
        else:
            self._cache.move_to_end(key)
        return entry

    def _writeback(self, key: _CacheKey) -> None:
        entry = self._cache.get(key)
        if entry is None or not entry.is_dirty:
            return
        name, block_index = key
        offset = block_index * BLOCK_SIZE + entry.dirty_lo
        self.router.write(
            name, offset, bytes(entry.data[entry.dirty_lo : entry.dirty_hi])
        )
        self.metrics.add(f"{self._prefix}.cache.writebacks")
        entry.dirty_lo = BLOCK_SIZE
        entry.dirty_hi = 0

    def _flush_file(self, name: SystemName) -> None:
        for key in list(self._cache):
            if key[0] == name:
                self._writeback(key)

    def _drop_cached(self, name: SystemName) -> None:
        for key in list(self._cache):
            if key[0] == name:
                del self._cache[key]
