"""Routing file operations to the file server that manages the file.

Step one of the paper's three-step data location (section 5) is "to
locate the file service which manages the file".  A system name
carries its volume id, so routing is a table lookup.  Two router
flavours exist: a direct in-process router (unit tests, single-machine
examples) and an RPC router (the cluster facade), both presenting the
same file-server-shaped surface so the file agent cannot tell them
apart.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.common.errors import FileServiceError
from repro.common.ids import SystemName
from repro.file_service.attributes import FileAttributes, LockingLevel, ServiceType
from repro.file_service.server import FileServer
from repro.rpc.endpoint import RpcClient, RpcServer


class FileServiceRouter:
    """Interface: anything that can carry file-server calls by volume."""

    def volume_ids(self) -> list[int]:
        raise NotImplementedError

    def create(self, volume_id: int, **kwargs: Any) -> SystemName:
        raise NotImplementedError

    def open(self, name: SystemName) -> FileAttributes:
        raise NotImplementedError

    def close(self, name: SystemName) -> None:
        raise NotImplementedError

    def delete(self, name: SystemName) -> None:
        raise NotImplementedError

    def read(self, name: SystemName, offset: int, n_bytes: int) -> bytes:
        raise NotImplementedError

    def write(self, name: SystemName, offset: int, data: bytes) -> int:
        raise NotImplementedError

    def get_attribute(self, name: SystemName) -> FileAttributes:
        raise NotImplementedError

    def flush_volume(self, volume_id: int) -> None:
        raise NotImplementedError


class DirectRouter(FileServiceRouter):
    """In-process router over a table of file servers."""

    def __init__(self, servers: Dict[int, FileServer]) -> None:
        if not servers:
            raise FileServiceError("router needs at least one file server")
        self._servers = dict(servers)

    def add_server(self, server: FileServer) -> None:
        self._servers[server.volume_id] = server

    def server_for(self, name: SystemName) -> FileServer:
        server = self._servers.get(name.volume_id)
        if server is None:
            raise FileServiceError(f"no file server for volume {name.volume_id}")
        return server

    def volume_ids(self) -> list[int]:
        return sorted(self._servers)

    def create(self, volume_id: int, **kwargs: Any) -> SystemName:
        server = self._servers.get(volume_id)
        if server is None:
            raise FileServiceError(f"no file server for volume {volume_id}")
        return server.create(**kwargs)

    def open(self, name: SystemName) -> FileAttributes:
        return self.server_for(name).open(name)

    def close(self, name: SystemName) -> None:
        self.server_for(name).close(name)

    def delete(self, name: SystemName) -> None:
        self.server_for(name).delete(name)

    def read(self, name: SystemName, offset: int, n_bytes: int) -> bytes:
        return self.server_for(name).read(name, offset, n_bytes)

    def write(self, name: SystemName, offset: int, data: bytes) -> int:
        return self.server_for(name).write(name, offset, data)

    def get_attribute(self, name: SystemName) -> FileAttributes:
        return self.server_for(name).get_attribute(name)

    def flush_volume(self, volume_id: int) -> None:
        server = self._servers.get(volume_id)
        if server is not None:
            server.flush()


#: RPC op names for a file server endpoint; shared by both sides so the
#: exposure table and the stub cannot drift apart.
FILE_SERVER_OPS = {
    "create": "create",
    "open": "open",
    "close": "close",
    "delete": "delete",
    "read": "read",
    "write": "write",
    "get_attribute": "get_attribute",
    "flush": "flush",
}


def expose_file_server(server: FileServer, rpc_server: RpcServer) -> None:
    """Expose a file server's operations on an RPC endpoint.

    Payloads are (args, kwargs) tuples; every operation is positional
    and therefore idempotent under retransmission.
    """

    def wrap(method_name: str):
        method = getattr(server, method_name)

        def handler(payload: Any) -> Any:
            args, kwargs = payload
            return method(*args, **kwargs)

        return handler

    for op, method_name in FILE_SERVER_OPS.items():
        rpc_server.expose(op, wrap(method_name))


class RpcRouter(FileServiceRouter):
    """Router that reaches file servers through the message bus.

    ``addresses`` maps volume id -> bus address of that volume's file
    server endpoint.
    """

    def __init__(self, client: RpcClient, addresses: Dict[int, str]) -> None:
        if not addresses:
            raise FileServiceError("RPC router needs at least one address")
        self.client = client
        self._addresses = dict(addresses)

    def _address_for(self, volume_id: int) -> str:
        address = self._addresses.get(volume_id)
        if address is None:
            raise FileServiceError(f"no file server address for volume {volume_id}")
        return address

    def _call(self, volume_id: int, op: str, *args: Any, **kwargs: Any) -> Any:
        return self.client.call(self._address_for(volume_id), op, (args, kwargs))

    def volume_ids(self) -> list[int]:
        return sorted(self._addresses)

    def create(self, volume_id: int, **kwargs: Any) -> SystemName:
        return self._call(volume_id, "create", **kwargs)

    def open(self, name: SystemName) -> FileAttributes:
        return self._call(name.volume_id, "open", name)

    def close(self, name: SystemName) -> None:
        self._call(name.volume_id, "close", name)

    def delete(self, name: SystemName) -> None:
        self._call(name.volume_id, "delete", name)

    def read(self, name: SystemName, offset: int, n_bytes: int) -> bytes:
        return self._call(name.volume_id, "read", name, offset, n_bytes)

    def write(self, name: SystemName, offset: int, data: bytes) -> int:
        return self._call(name.volume_id, "write", name, offset, data)

    def get_attribute(self, name: SystemName) -> FileAttributes:
        return self._call(name.volume_id, "get_attribute", name)

    def flush_volume(self, volume_id: int) -> None:
        self._call(volume_id, "flush")
