"""Primary-copy replication over the basic file service.

A replicated file is a set of ordinary files, one per volume; the
first live replica is the primary.  Reads go to the primary only
(read-one); writes go to every live replica (write-all), so any single
replica can serve a consistent read.  A crashed volume's replicas are
marked stale and resynchronised from the primary when the volume
recovers.

The replica set is recorded in the naming service as attributes of the
file's name, so replication survives naming-database persistence and
needs no extra metadata store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import (
    DiskCrashedError,
    DiskError,
    FileServiceError,
    ReplicationError,
)
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.file_service.attributes import FileAttributes
from repro.file_service.server import FileServer
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService


def _encode_replicas(names: List[SystemName]) -> str:
    return ",".join(
        f"{name.volume_id}:{name.fit_address}:{name.generation}" for name in names
    )


def _decode_replicas(encoded: str) -> List[SystemName]:
    replicas = []
    for part in encoded.split(","):
        volume, fit, generation = part.split(":")
        replicas.append(SystemName(int(volume), int(fit), int(generation)))
    return replicas


@dataclass
class ReplicaSet:
    """The live view of one replicated file."""

    name: AttributedName
    replicas: List[SystemName]
    stale: set[int] = field(default_factory=set)  # volume ids needing resync

    @property
    def degree(self) -> int:
        return len(self.replicas)


class ReplicationService:
    """Replicated create/read/write/delete with failover and resync."""

    def __init__(
        self,
        naming: NamingService,
        servers: Dict[int, FileServer],
        clock: SimClock,
        metrics: Metrics,
        *,
        default_degree: int = 2,
    ) -> None:
        if default_degree < 1:
            raise ReplicationError("replication degree must be >= 1")
        self.naming = naming
        self.servers = dict(servers)
        self.clock = clock
        self.metrics = metrics
        self.default_degree = default_degree
        self._sets: Dict[AttributedName, ReplicaSet] = {}

    # -------------------------------------------------------- create

    def create(
        self, name: AttributedName, *, degree: Optional[int] = None
    ) -> ReplicaSet:
        """Create a file replicated on ``degree`` distinct volumes."""
        degree = degree or self.default_degree
        volumes = sorted(self.servers)
        if degree > len(volumes):
            raise ReplicationError(
                f"degree {degree} exceeds the {len(volumes)} available volumes"
            )
        replicas = [self.servers[volume].create() for volume in volumes[:degree]]
        bound = name.with_attributes(replicas=_encode_replicas(replicas))
        self.naming.bind(bound, replicas[0])
        replica_set = ReplicaSet(name=bound, replicas=replicas)
        self._sets[name] = replica_set
        self._sets[bound] = replica_set
        self.metrics.add("replication.creates")
        return replica_set

    def lookup(self, name: AttributedName) -> ReplicaSet:
        replica_set = self._sets.get(name)
        if replica_set is not None:
            return replica_set
        # Rebuild from the naming service (e.g. after restart).
        for bound, target in self.naming.lookup(name):
            encoded = bound.get("replicas")
            if encoded is None:
                continue
            replica_set = ReplicaSet(name=bound, replicas=_decode_replicas(encoded))
            self._sets[name] = replica_set
            self._sets[bound] = replica_set
            return replica_set
        raise ReplicationError(f"{name} is not a replicated file")

    # ------------------------------------------------------------ io

    def read(self, name: AttributedName, offset: int, n_bytes: int) -> bytes:
        """Read-one: the first live replica serves the read."""
        replica_set = self.lookup(name)
        last_error: Optional[Exception] = None
        for system_name in replica_set.replicas:
            if system_name.volume_id in replica_set.stale:
                continue
            server = self.servers[system_name.volume_id]
            try:
                data = server.read(system_name, offset, n_bytes)
                self.metrics.add("replication.reads")
                return data
            except (DiskError, DiskCrashedError, FileServiceError) as exc:
                last_error = exc
                replica_set.stale.add(system_name.volume_id)
                self.metrics.add("replication.failovers")
        raise ReplicationError(
            f"no live replica of {name} could serve the read"
        ) from last_error

    def write(self, name: AttributedName, offset: int, data: bytes) -> int:
        """Write-all: every live replica applies the write.

        Replicas that fail mid-write are marked stale (they will be
        resynchronised); the write succeeds as long as one replica
        applies it.
        """
        replica_set = self.lookup(name)
        applied = 0
        for system_name in replica_set.replicas:
            if system_name.volume_id in replica_set.stale:
                continue
            server = self.servers[system_name.volume_id]
            try:
                server.write(system_name, offset, data)
                applied += 1
            except (DiskError, DiskCrashedError, FileServiceError):
                replica_set.stale.add(system_name.volume_id)
                self.metrics.add("replication.failovers")
        if applied == 0:
            raise ReplicationError(f"no live replica of {name} accepted the write")
        self.metrics.add("replication.writes")
        self.metrics.add("replication.replica_writes", applied)
        return len(data)

    def get_attribute(self, name: AttributedName) -> FileAttributes:
        replica_set = self.lookup(name)
        for system_name in replica_set.replicas:
            if system_name.volume_id in replica_set.stale:
                continue
            try:
                return self.servers[system_name.volume_id].get_attribute(system_name)
            except (DiskError, DiskCrashedError, FileServiceError):
                replica_set.stale.add(system_name.volume_id)
        raise ReplicationError(f"no live replica of {name}")

    def delete(self, name: AttributedName) -> None:
        replica_set = self.lookup(name)
        for system_name in replica_set.replicas:
            try:
                self.servers[system_name.volume_id].delete(system_name)
            except (DiskError, DiskCrashedError, FileServiceError):
                pass
        self.naming.unbind(replica_set.name)
        self._sets.pop(name, None)
        self._sets.pop(replica_set.name, None)
        self.metrics.add("replication.deletes")

    # -------------------------------------------------------- repair

    def live_replicas(self, name: AttributedName) -> int:
        replica_set = self.lookup(name)
        return replica_set.degree - len(replica_set.stale)

    def resync(self, name: AttributedName) -> int:
        """Copy the primary's content onto every stale replica.

        Call after the crashed volume's file server has recovered.
        Returns the number of replicas repaired.
        """
        replica_set = self.lookup(name)
        if not replica_set.stale:
            return 0
        primary: Optional[SystemName] = None
        for system_name in replica_set.replicas:
            if system_name.volume_id not in replica_set.stale:
                primary = system_name
                break
        if primary is None:
            raise ReplicationError(f"{name}: every replica is stale")
        source = self.servers[primary.volume_id]
        size = source.get_attribute(primary).file_size
        content = source.read(primary, 0, size)
        repaired = 0
        for system_name in list(replica_set.replicas):
            if system_name.volume_id not in replica_set.stale:
                continue
            server = self.servers[system_name.volume_id]
            try:
                if not server.exists(system_name):
                    fresh = server.create()
                    replica_set.replicas[
                        replica_set.replicas.index(system_name)
                    ] = fresh
                    system_name = fresh
                if content:
                    server.write(system_name, 0, content)
                replica_set.stale.discard(system_name.volume_id)
                repaired += 1
                self.metrics.add("replication.resyncs")
            except (DiskError, DiskCrashedError, FileServiceError):
                continue
        # Refresh the replica list recorded in the naming service.
        refreshed = replica_set.name.with_attributes(
            replicas=_encode_replicas(replica_set.replicas)
        )
        self.naming.unbind(replica_set.name)
        self.naming.bind(refreshed, replica_set.replicas[0])
        self._sets.pop(replica_set.name, None)
        replica_set.name = refreshed
        self._sets[refreshed] = replica_set
        return repaired
