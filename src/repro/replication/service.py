"""Primary-copy replication over the basic file service.

A replicated file is a set of ordinary files, one per volume; the
first live replica is the primary.  Reads go to the primary only
(read-one); writes go to every live replica (write-all), so any single
replica can serve a consistent read.  A crashed volume's replicas are
marked stale and resynchronised from the primary when the volume
recovers.

The replica set is recorded in the naming service as attributes of the
file's name, so replication survives naming-database persistence and
needs no extra metadata store.

Failure handling routes through a
:class:`~repro.recovery.health.HealthRegistry`:

* **transient vs permanent** — a ``DiskCrashedError`` is permanent; any
  other disk/file-service error is retried in place
  (``transient_retries``) and only escalates through the registry's
  tolerance rule.  A single torn-sector hiccup therefore no longer
  triggers a permanent failover.
* **staleness means content divergence** — a replica that missed (or
  may have missed) a write is marked stale; so is one whose read
  failed with a :class:`~repro.common.errors.MediaError` (checksum
  mismatch or latent sector error — its bytes are *wrong*, not merely
  unreachable).  Any other failed read fails over without staleness,
  because the replica's content is still current.
* **auto-repair** — the service subscribes to recovery events: when a
  volume comes back, every replica set with stale members is
  resynchronised and orphaned replicas from failed deletes are swept.
  Resynced content is read back and verified byte-identical
  (``replication.resyncs_verified``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import (
    DiskCrashedError,
    DiskError,
    FileServiceError,
    MediaError,
    ReplicationError,
)
from repro.common.frames import FrameFork
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.file_service.attributes import FileAttributes
from repro.file_service.server import FileServer
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.recovery.health import HealthRegistry

#: Exceptions a single replica operation may fail with.
_REPLICA_ERRORS = (DiskError, DiskCrashedError, FileServiceError)


def _encode_replicas(names: List[SystemName]) -> str:
    return ",".join(
        f"{name.volume_id}:{name.fit_address}:{name.generation}" for name in names
    )


def _decode_replicas(encoded: str) -> List[SystemName]:
    replicas = []
    for part in encoded.split(","):
        volume, fit, generation = part.split(":")
        replicas.append(SystemName(int(volume), int(fit), int(generation)))
    return replicas


def volume_component(volume_id: int) -> str:
    """The health-registry component name of one volume's servers."""
    return f"volume.{volume_id}"


def component_volume(component: str) -> Optional[int]:
    """Inverse of :func:`volume_component` (None for other components)."""
    prefix = "volume."
    if component.startswith(prefix) and component[len(prefix):].isdigit():
        return int(component[len(prefix):])
    return None


@dataclass
class ReplicaSet:
    """The live view of one replicated file."""

    name: AttributedName
    replicas: List[SystemName]
    stale: set[int] = field(default_factory=set)  # volume ids needing resync

    @property
    def degree(self) -> int:
        return len(self.replicas)


class ReplicationService:
    """Replicated create/read/write/delete with failover and resync.

    Args:
        health: the shared failure detector; a private one is built
            when the service runs stand-alone.  The service registers
            itself for recovery events either way, so restarting a
            volume automatically resynchronises its replicas.
        transient_retries: in-place retries of a replica operation that
            failed with a non-crash error before giving up on it.
    """

    def __init__(
        self,
        naming: NamingService,
        servers: Dict[int, FileServer],
        clock: SimClock,
        metrics: Metrics,
        *,
        default_degree: int = 2,
        health: Optional[HealthRegistry] = None,
        transient_retries: int = 1,
    ) -> None:
        if default_degree < 1:
            raise ReplicationError("replication degree must be >= 1")
        if transient_retries < 0:
            raise ReplicationError("transient retries cannot be negative")
        self.naming = naming
        self.servers = dict(servers)
        self.clock = clock
        self.metrics = metrics
        self.default_degree = default_degree
        self.health = health or HealthRegistry(metrics)
        self.transient_retries = transient_retries
        self._sets: Dict[AttributedName, ReplicaSet] = {}
        #: Replicas whose delete failed (e.g. their volume was down):
        #: tracked so the space is reclaimed by a later sweep instead of
        #: leaking forever once the name is unbound.
        self._orphans: List[SystemName] = []
        self.health.on_recovery(self._on_component_recovered)

    # -------------------------------------------------------- create

    def create(
        self, name: AttributedName, *, degree: Optional[int] = None
    ) -> ReplicaSet:
        """Create a file replicated on ``degree`` distinct volumes."""
        degree = degree or self.default_degree
        volumes = sorted(self.servers)
        if degree > len(volumes):
            raise ReplicationError(
                f"degree {degree} exceeds the {len(volumes)} available volumes"
            )
        replicas = [self.servers[volume].create() for volume in volumes[:degree]]
        bound = name.with_attributes(replicas=_encode_replicas(replicas))
        self.naming.bind(bound, replicas[0])
        replica_set = ReplicaSet(name=bound, replicas=replicas)
        self._sets[name] = replica_set
        self._sets[bound] = replica_set
        self.metrics.add("replication.creates")
        return replica_set

    def lookup(self, name: AttributedName) -> ReplicaSet:
        replica_set = self._sets.get(name)
        if replica_set is not None:
            return replica_set
        # Rebuild from the naming service (e.g. after restart).
        for bound, target in self.naming.lookup(name):
            encoded = bound.get("replicas")
            if encoded is None:
                continue
            replica_set = ReplicaSet(name=bound, replicas=_decode_replicas(encoded))
            self._sets[name] = replica_set
            self._sets[bound] = replica_set
            return replica_set
        raise ReplicationError(f"{name} is not a replicated file")

    # ------------------------------------------------------------ io

    def read(self, name: AttributedName, offset: int, n_bytes: int) -> bytes:
        """Read-one: the first live replica serves the read.

        A failed read fails over without marking the replica stale (its
        content is still current); the health registry decides whether
        the failure counts against the volume.
        """
        replica_set = self.lookup(name)
        last_error: Optional[Exception] = None
        degraded = False
        for system_name in replica_set.replicas:
            volume_id = system_name.volume_id
            if volume_id in replica_set.stale:
                degraded = True
                continue
            if self.health.is_down(volume_component(volume_id)):
                self.metrics.add("replication.reads_skipped_down")
                degraded = True
                continue
            server = self.servers[volume_id]
            try:
                data = self._attempt(
                    lambda: server.read(system_name, offset, n_bytes)
                )
            except _REPLICA_ERRORS as exc:
                last_error = exc
                self._note_replica_error(volume_id, exc)
                if isinstance(exc, MediaError) and self._has_clean_peer(
                    replica_set, volume_id
                ):
                    # Rot: this replica's bytes are wrong, so it has
                    # diverged — stale until resync repairs it from a
                    # clean peer (never quarantine the last one).
                    replica_set.stale.add(volume_id)
                    self.metrics.add("replication.media_quarantines")
                self.metrics.add("replication.failovers")
                degraded = True
                continue
            self.health.note_ok(volume_component(volume_id))
            self.metrics.add("replication.reads")
            if degraded:
                self.metrics.add("replication.reads_degraded")
            return data
        raise ReplicationError(
            f"no live replica of {name} could serve the read"
        ) from last_error

    def write(self, name: AttributedName, offset: int, data: bytes) -> int:
        """Write-all: every live replica applies the write.

        A replica that fails (or is skipped because its volume is down)
        missed the write and is marked stale — staleness tracks content
        divergence, so here it is unavoidable; resync repairs it.  The
        write succeeds as long as one replica applies it.

        Under a deferred-time frame the replica writes fork: each
        branch replays from the fork point and the join charges the
        slowest branch, so a write-all across N volumes costs the max
        of the replica services, not the sum (the volumes' disks work
        in parallel).  Blocking mode is unchanged — sequential, as the
        replication benches established.
        """
        replica_set = self.lookup(name)
        applied = 0
        fork = FrameFork(self.clock)
        for system_name in replica_set.replicas:
            volume_id = system_name.volume_id
            if volume_id in replica_set.stale:
                continue
            if self.health.is_down(volume_component(volume_id)):
                replica_set.stale.add(volume_id)
                self.metrics.add("replication.writes_skipped_down")
                self.metrics.add("replication.failovers")
                continue
            server = self.servers[volume_id]
            try:
                with fork.branch():
                    self._attempt(lambda: server.write(system_name, offset, data))
            except _REPLICA_ERRORS as exc:
                self._note_replica_error(volume_id, exc)
                replica_set.stale.add(volume_id)
                self.metrics.add("replication.failovers")
                continue
            self.health.note_ok(volume_component(volume_id))
            applied += 1
        fork.join()
        if applied == 0:
            raise ReplicationError(f"no live replica of {name} accepted the write")
        self.metrics.add("replication.writes")
        self.metrics.add("replication.replica_writes", applied)
        return len(data)

    def get_attribute(self, name: AttributedName) -> FileAttributes:
        replica_set = self.lookup(name)
        for system_name in replica_set.replicas:
            volume_id = system_name.volume_id
            if volume_id in replica_set.stale:
                continue
            if self.health.is_down(volume_component(volume_id)):
                continue
            try:
                attributes = self._attempt(
                    lambda: self.servers[volume_id].get_attribute(system_name)
                )
            except _REPLICA_ERRORS as exc:
                self._note_replica_error(volume_id, exc)
                continue
            self.health.note_ok(volume_component(volume_id))
            return attributes
        raise ReplicationError(f"no live replica of {name}")

    def delete(self, name: AttributedName) -> None:
        """Delete every replica; unreachable replicas become orphans.

        The name is unbound regardless, so a replica whose volume was
        down at delete time would otherwise leak forever — it is
        recorded instead and reclaimed by :meth:`sweep_orphans` when
        its volume recovers (or by an fsck run).
        """
        replica_set = self.lookup(name)
        for system_name in replica_set.replicas:
            try:
                self.servers[system_name.volume_id].delete(system_name)
            except _REPLICA_ERRORS as exc:
                self._note_replica_error(system_name.volume_id, exc)
                self._orphans.append(system_name)
                self.metrics.add("replication.orphans_recorded")
        self.naming.unbind(replica_set.name)
        self._sets.pop(name, None)
        self._sets.pop(replica_set.name, None)
        self.metrics.add("replication.deletes")

    # -------------------------------------------------------- repair

    def live_replicas(self, name: AttributedName) -> int:
        """Replicas that are neither stale nor on a down volume."""
        replica_set = self.lookup(name)
        return sum(
            1
            for system_name in replica_set.replicas
            if system_name.volume_id not in replica_set.stale
            and not self.health.is_down(volume_component(system_name.volume_id))
        )

    def orphans(self) -> List[SystemName]:
        """Replicas leaked by failed deletes, still awaiting a sweep."""
        return list(self._orphans)

    def sweep_orphans(self, volume_id: Optional[int] = None) -> int:
        """Retry deleting orphaned replicas; returns how many went away.

        An orphan whose file no longer exists counts as swept (an fsck
        or a reformat got there first).  Orphans whose volume is still
        failing stay recorded for the next sweep.
        """
        swept = 0
        remaining: List[SystemName] = []
        for system_name in self._orphans:
            if volume_id is not None and system_name.volume_id != volume_id:
                remaining.append(system_name)
                continue
            server = self.servers.get(system_name.volume_id)
            try:
                if server is not None and server.exists(system_name):
                    server.delete(system_name)
            except _REPLICA_ERRORS:
                remaining.append(system_name)
                continue
            swept += 1
            self.metrics.add("replication.orphans_swept")
        self._orphans = remaining
        return swept

    def quarantine_volume_media(self, volume_id: int) -> int:
        """Quarantine a media-damaged volume's replicas, repair from peers.

        The scrubber's repair-from-replica hook: when a volume's
        scrubber reports corruption it cannot repair locally (the data
        had no stable-storage mirror), every replica set with a member
        on that volume is marked stale and immediately resynchronised
        from a clean peer — the replica's *content* is suspect even
        where reads still succeed, because rot may sit in blocks the
        finding did not name.  Sets with no clean live peer are left
        alone (quarantining the last copy would make them unreadable)
        and counted in ``replication.quarantine_deferrals``.

        Returns the number of replicas repaired by the resync.
        """
        quarantined = 0
        visited: set[int] = set()
        for replica_set in list(self._sets.values()):
            if id(replica_set) in visited:
                continue
            visited.add(id(replica_set))
            on_volume = any(
                system_name.volume_id == volume_id
                for system_name in replica_set.replicas
            )
            if not on_volume or volume_id in replica_set.stale:
                continue
            if not self._has_clean_peer(replica_set, volume_id):
                self.metrics.add("replication.quarantine_deferrals")
                continue
            replica_set.stale.add(volume_id)
            quarantined += 1
            self.metrics.add("replication.media_quarantines")
        if quarantined == 0:
            return 0
        return self.resync_all_stale()

    def resync(self, name: AttributedName) -> int:
        """Copy the primary's content onto every stale replica.

        Call after the crashed volume's file server has recovered (the
        recovery-event path does this automatically).  Each repaired
        replica is read back and verified byte-identical before its
        staleness clears.  Returns the number of replicas repaired.
        """
        replica_set = self.lookup(name)
        if not replica_set.stale:
            return 0
        primary: Optional[SystemName] = None
        for system_name in replica_set.replicas:
            if system_name.volume_id not in replica_set.stale:
                primary = system_name
                break
        if primary is None:
            raise ReplicationError(f"{name}: every replica is stale")
        source = self.servers[primary.volume_id]
        size = source.get_attribute(primary).file_size
        content = source.read(primary, 0, size)
        repaired = 0
        for system_name in list(replica_set.replicas):
            if system_name.volume_id not in replica_set.stale:
                continue
            server = self.servers[system_name.volume_id]
            try:
                if not server.exists(system_name):
                    fresh = server.create()
                    replica_set.replicas[
                        replica_set.replicas.index(system_name)
                    ] = fresh
                    system_name = fresh
                if content:
                    try:
                        server.write(system_name, 0, content)
                    except MediaError:
                        # The replica's own blocks are rotten or
                        # unreadable: a sub-block overwrite read-
                        # modify-writes through them and trips the
                        # very corruption being repaired.  Rebuild the
                        # replica from scratch instead of converging
                        # never.
                        server.delete(system_name)
                        fresh = server.create()
                        replica_set.replicas[
                            replica_set.replicas.index(system_name)
                        ] = fresh
                        system_name = fresh
                        server.write(system_name, 0, content)
                        self.metrics.add("replication.resync_rebuilds")
                if server.read(system_name, 0, size) != content:
                    self.metrics.add("replication.resync_mismatches")
                    continue  # stays stale; a later resync retries
                self.metrics.add("replication.resyncs_verified")
                replica_set.stale.discard(system_name.volume_id)
                self.health.note_ok(volume_component(system_name.volume_id))
                repaired += 1
                self.metrics.add("replication.resyncs")
            except _REPLICA_ERRORS as exc:
                self._note_replica_error(system_name.volume_id, exc)
                continue
        # Refresh the replica list recorded in the naming service.
        refreshed = replica_set.name.with_attributes(
            replicas=_encode_replicas(replica_set.replicas)
        )
        self.naming.unbind(replica_set.name)
        self.naming.bind(refreshed, replica_set.replicas[0])
        self._sets.pop(replica_set.name, None)
        replica_set.name = refreshed
        self._sets[refreshed] = replica_set
        return repaired

    def resync_all_stale(self) -> int:
        """Resync every known replica set with stale members.

        Sets whose primary is still unreachable are deferred (counted
        in ``replication.resync_deferrals``) and retried on the next
        recovery event, so repeated partial failures still converge.
        Returns the total number of replicas repaired.
        """
        repaired = 0
        visited: set[int] = set()
        for replica_set in list(self._sets.values()):
            if id(replica_set) in visited:
                continue
            visited.add(id(replica_set))
            if not replica_set.stale:
                continue
            try:
                repaired += self.resync(replica_set.name)
            except (ReplicationError, *_REPLICA_ERRORS):
                self.metrics.add("replication.resync_deferrals")
        return repaired

    # ------------------------------------------------------ internal

    def _attempt(self, operation: Callable[[], object]):
        """Run one replica operation, absorbing transient hiccups.

        A crashed volume fails immediately (retrying cannot help); any
        other facility error is retried ``transient_retries`` times in
        place before the failure escapes to the failover logic.
        """
        retries = self.transient_retries
        while True:
            try:
                return operation()
            except DiskCrashedError:
                raise
            except (DiskError, FileServiceError):
                if retries <= 0:
                    raise
                retries -= 1
                self.metrics.add("replication.transient_retries")

    def _has_clean_peer(self, replica_set: ReplicaSet, volume_id: int) -> bool:
        """Whether another replica is neither stale nor on a down volume."""
        return any(
            system_name.volume_id != volume_id
            and system_name.volume_id not in replica_set.stale
            and not self.health.is_down(volume_component(system_name.volume_id))
            for system_name in replica_set.replicas
        )

    def _note_replica_error(self, volume_id: int, exc: Exception) -> bool:
        """Feed one replica failure to the detector; True = permanent."""
        return self.health.note_error(
            volume_component(volume_id),
            permanent=isinstance(exc, DiskCrashedError),
        )

    def _on_component_recovered(self, component: str) -> None:
        """Recovery event: sweep the volume's orphans, repair staleness.

        Every stale set is attempted — not only those stale on the
        recovered volume — because the blocker may have been the
        *primary* being down while other replicas went stale.
        """
        volume_id = component_volume(component)
        if volume_id is None or volume_id not in self.servers:
            return
        self.sweep_orphans(volume_id)
        self.resync_all_stale()
