"""The RHODOS replication service.

The paper's architecture (Figure 1, section 2.2) places a replication
service above the file service, and the design goals demand "the
provision to support the concept of file replication" (section 2.1).
The paper does not detail the protocol, so this package implements the
simplest scheme consistent with the architecture: **primary-copy,
read-one / write-all** over the basic file service, with automatic
failover when the volume holding a replica crashes and resynchronisation
when it returns.
"""

from repro.replication.service import ReplicaSet, ReplicationService

__all__ = ["ReplicaSet", "ReplicationService"]
