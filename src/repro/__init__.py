"""repro — a reproduction of the RHODOS distributed file facility.

Panadiwal & Goscinski, "A High Performance and Reliable Distributed
File Facility", ICDCS 1994.

The package implements the paper's five-service architecture over a
simulated substrate:

* :mod:`repro.simdisk` — seek/rotation/transfer disk model + mirrored
  stable storage (careful writes);
* :mod:`repro.disk_service` — fragments (2 KB) and blocks (8 KB),
  bitmap + 64x64 free-extent array, track cache, stability-aware
  get/put;
* :mod:`repro.file_service` — file index tables with contiguity
  counts, 512 KB direct coverage, delayed-write/write-through caching;
* :mod:`repro.naming` — attributed names -> system names, optionally
  partitioned across shard servers with rebalancing and failover;
* :mod:`repro.agents` — device/file agents, object descriptors,
  client caching, the process model;
* :mod:`repro.transactions` — 2PL (RO/IR/IW, Table 1) at record/page/
  file granularity, LT/N timeout deadlock resolution, intentions list,
  WAL + shadow-page commit, crash recovery;
* :mod:`repro.replication` — primary-copy read-one/write-all with
  health-routed failover and verified resync;
* :mod:`repro.recovery` — the failure detector (health registry) and
  scripted crash/restart schedules;
* :mod:`repro.cluster` — whole-system assembly and cross-disk file
  striping;
* :mod:`repro.workloads` — the experiment drivers.

Quick start::

    from repro import RhodosCluster, ClusterConfig, AttributedName

    cluster = RhodosCluster(ClusterConfig(n_machines=1, n_disks=2))
    agent = cluster.machine.file_agent
    fd = agent.create(AttributedName.file("/hello.txt"))
    agent.write(fd, b"hello, RHODOS")
    agent.lseek(fd, 0)
    print(agent.read(fd, 64))
    agent.close(fd)
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.driver import ConcurrentDriver, DriverReport
from repro.cluster.system import RhodosCluster
from repro.cluster.striping import StripedFile
from repro.common.clock import SimClock
from repro.common.errors import RhodosError
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.common.errors import ShardDownError, WrongShardError
from repro.naming.attributed import AttributedName, ObjectType
from repro.naming.directory import DirectoryService
from repro.naming.shard import (
    NamingShard,
    PlacementPolicy,
    ShardedNamespace,
    ShardManager,
    ShardMap,
)
from repro.naming.tdirectory import TransactionalDirectory
from repro.file_service.attributes import LockingLevel, ServiceType
from repro.file_service.cache import WritePolicy
from repro.recovery.health import HealthRegistry, HealthState
from repro.recovery.schedule import (
    FailureEvent,
    FailureSchedule,
    ShardFailureEvent,
)
from repro.rpc.bus import FaultProfile
from repro.rpc.retry import BackoffPolicy, BreakerPolicy
from repro.simkernel.runner import InterleavedRunner, LockWaitPending
from repro.transactions.lock_manager import TimeoutPolicy

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ConcurrentDriver",
    "DriverReport",
    "RhodosCluster",
    "StripedFile",
    "SimClock",
    "Metrics",
    "RhodosError",
    "SystemName",
    "AttributedName",
    "ObjectType",
    "DirectoryService",
    "NamingShard",
    "PlacementPolicy",
    "ShardedNamespace",
    "ShardManager",
    "ShardMap",
    "ShardDownError",
    "WrongShardError",
    "TransactionalDirectory",
    "LockingLevel",
    "ServiceType",
    "WritePolicy",
    "FaultProfile",
    "BackoffPolicy",
    "BreakerPolicy",
    "HealthRegistry",
    "HealthState",
    "FailureEvent",
    "FailureSchedule",
    "ShardFailureEvent",
    "InterleavedRunner",
    "LockWaitPending",
    "TimeoutPolicy",
    "__version__",
]
