"""Buffer pools and write policies.

Paper section 5: "The space for caching a fragment and block is
acquired from a fragment-pool and block-pool, respectively.  The size
of these pools is determined on the basis of the amount of main memory
available.  These pools of free buffers are maintained by the file
agent, transaction agent and the file service."

And on modification policy: "we decided to implement the delayed-write
policy to save modifications made to data cached by the file agent.
However ... the delayed-write together with write-through policies are
adapted to save modifications made to data cached by the file service"
(write-through for files operated on with transaction semantics).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterator, Optional, Tuple

from repro.common.metrics import Metrics


class WritePolicy(enum.Enum):
    """When modified buffers reach the layer below."""

    DELAYED = "delayed"  # written back on flush / close / eviction
    WRITE_THROUGH = "write-through"  # written back immediately


class BufferPool:
    """A fixed-capacity LRU pool of equal-sized buffers.

    Dirty buffers are written back through ``writeback(key, data)`` on
    eviction and on :meth:`flush`.  The pool never loses data silently:
    evicting a dirty buffer without a writeback callback is an error.

    Args:
        name: metric prefix (``<name>.hits`` etc.).
        metrics: counter registry.
        capacity: maximum buffers held.
        writeback: callback invoked with (key, data) when a dirty buffer
            must reach the layer below.
    """

    def __init__(
        self,
        name: str,
        metrics: Metrics,
        capacity: int,
        writeback: Optional[Callable[[Hashable, bytes], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self.name = name
        self.metrics = metrics
        self.capacity = capacity
        self.writeback = writeback
        self._buffers: "OrderedDict[Hashable, bytes]" = OrderedDict()
        self._dirty: Dict[Hashable, bool] = {}

    # ------------------------------------------------------------ api

    def get(self, key: Hashable) -> Optional[bytes]:
        """Look up a buffer; None on miss.  Hits refresh LRU position."""
        data = self._buffers.get(key)
        if data is None:
            self.metrics.add(f"{self.name}.misses")
            return None
        self._buffers.move_to_end(key)
        self.metrics.add(f"{self.name}.hits")
        return data

    def contains(self, key: Hashable) -> bool:
        """Presence check that does not disturb LRU order or metrics."""
        return key in self._buffers

    def put(self, key: Hashable, data: bytes, *, dirty: bool = False) -> None:
        """Insert or update a buffer; dirty buffers await writeback."""
        if key in self._buffers:
            self._buffers.move_to_end(key)
        self._buffers[key] = data
        self._dirty[key] = dirty or self._dirty.get(key, False)
        self._evict_if_needed()

    def mark_clean(self, key: Hashable) -> None:
        if key in self._dirty:
            self._dirty[key] = False

    def invalidate(self, key: Hashable) -> None:
        """Drop a buffer without writeback (caller owns durability)."""
        self._buffers.pop(key, None)
        self._dirty.pop(key, None)

    def invalidate_all(self) -> None:
        self._buffers.clear()
        self._dirty.clear()

    def flush(self) -> int:
        """Write back every dirty buffer; returns how many were written."""
        written = 0
        for key, data in list(self._buffers.items()):
            if self._dirty.get(key):
                self._write_back(key, data)
                self._dirty[key] = False
                written += 1
        return written

    def flush_matching(self, predicate: Callable[[Hashable], bool]) -> int:
        """Write back dirty buffers whose key satisfies ``predicate``."""
        written = 0
        for key, data in list(self._buffers.items()):
            if self._dirty.get(key) and predicate(key):
                self._write_back(key, data)
                self._dirty[key] = False
                written += 1
        return written

    def dirty_items(self) -> Iterator[Tuple[Hashable, bytes]]:
        for key, data in self._buffers.items():
            if self._dirty.get(key):
                yield key, data

    def dirty_count(self) -> int:
        return sum(1 for flag in self._dirty.values() if flag)

    def __len__(self) -> int:
        return len(self._buffers)

    # ------------------------------------------------------ internal

    def _evict_if_needed(self) -> None:
        while len(self._buffers) > self.capacity:
            key, data = self._buffers.popitem(last=False)
            if self._dirty.pop(key, False):
                self._write_back(key, data)
            self.metrics.add(f"{self.name}.evictions")

    def _write_back(self, key: Hashable, data: bytes) -> None:
        if self.writeback is None:
            raise RuntimeError(
                f"buffer pool {self.name}: dirty buffer {key!r} has no writeback"
            )
        self.writeback(key, data)
        self.metrics.add(f"{self.name}.writebacks")
