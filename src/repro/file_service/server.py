"""The file server: one per volume, built on the disk service.

Locating a file's data takes the paper's three steps (section 5): the
*cluster* locates the file server managing the file (step one); the
file server locates and caches the **file index table** (step two);
then locates the data blocks, caches them, and passes the requested
bytes to the caller (step three).

Performance properties implemented here, each tested and benchmarked:

* **dynamic FIT creation** — the FIT fragment and at least the first
  data block are allocated as one contiguous extent, eliminating the
  seek between them, and FITs end up distributed over the disk;
* **contiguity counts** — each block descriptor knows how many
  successive blocks follow it contiguously, so a contiguous run is one
  single ``get`` on the disk service;
* **direct coverage of 512 KB** — any file up to half a megabyte costs
  at most two disk references when read cold (FIT + one data run);
* **server-side caching** — a block pool with the delayed-write policy
  for basic files and write-through for transaction files (section 5).

The server is *nearly stateless*: every operation is positional
(system name + offset), hence idempotent; the per-open file position
lives in the file agent (section 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.frames import active_frame
from repro.common.errors import (
    BadAddressError,
    DiskFullError,
    FileNotFoundError_,
    FileServiceError,
    FileSizeError,
    MediaError,
)
from repro.common.ids import SystemName, monotonic_id_factory
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER, Tracer
from repro.common.units import BLOCK_SIZE, FRAGMENTS_PER_BLOCK
from repro.disk_service.addresses import Extent
from repro.disk_service.server import DiskServer, Stability
from repro.file_service.attributes import FileAttributes, LockingLevel, ServiceType
from repro.file_service.cache import BufferPool, WritePolicy
from repro.file_service.fit import (
    DESCRIPTORS_PER_INDIRECT,
    DIRECT_DESCRIPTORS,
    MAX_FILE_BLOCKS,
    SINGLE_INDIRECT_SLOTS,
    BlockDescriptor,
    FileIndexTable,
    contiguous_runs,
    decode_indirect_block,
    encode_indirect_block,
    recompute_counts,
)

#: Default for how many blocks the extension policy tries to allocate
#: contiguously ahead of a growing file's last block before falling back
#: to a fresh run (overridable per server; ablation A3 sweeps it).
DEFAULT_GROWTH_BATCH_BLOCKS = 8


class _OpenState:
    """Volatile bookkeeping for a file the server currently maps."""

    __slots__ = (
        "fit",
        "fit_dirty",
        "block_map",
        "dirty_indirect",
        "dirty_double",
        "double_pointers",
    )

    def __init__(self, fit: FileIndexTable) -> None:
        self.fit = fit
        self.fit_dirty = False
        # Full logical block map (direct + loaded indirect), or None if
        # only the direct area has been materialised.
        self.block_map: Optional[List[Optional[BlockDescriptor]]] = None
        self.dirty_indirect: set[int] = set()  # single-indirect slot numbers
        # Double-indirect dirt: (outer slot, inner index) pairs, plus the
        # cached pointer tables (outer slot -> list of inner block addrs).
        self.dirty_double: set[tuple[int, int]] = set()
        self.double_pointers: Dict[int, List[Optional[int]]] = {}


class FileServer:
    """The basic file service for one volume.

    Args:
        volume_id: integer id of this volume (appears in system names).
        disk_server: the disk service instance for this volume's disk.
        clock: shared simulated clock.
        metrics: shared counter registry.
        data_cache_blocks: capacity of the server's block pool; 0
            disables server-side data caching (for experiment E5).
        write_policy: DELAYED (basic-file default) or WRITE_THROUGH.
        name: metric prefix; defaults to ``file_server.<volume_id>``.
        tracer: records one span per read/write/create; disabled by
            default.
    """

    def __init__(
        self,
        volume_id: int,
        disk_server: DiskServer,
        clock: SimClock,
        metrics: Metrics,
        *,
        data_cache_blocks: int = 256,
        fit_cache_entries: int = 256,
        write_policy: WritePolicy = WritePolicy.DELAYED,
        growth_batch_blocks: int = DEFAULT_GROWTH_BATCH_BLOCKS,
        name: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.volume_id = volume_id
        self.growth_batch_blocks = max(1, growth_batch_blocks)
        self.disk = disk_server
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.write_policy = write_policy
        self.name = name or f"file_server.{volume_id}"
        #: The data disk's reference counter, re-read around traced
        #: operations so a span can report its disk-reference cost.
        self._refs_counter = f"disk.{disk_server.disk.disk_id}.references"
        self._next_generation = monotonic_id_factory()
        self._files: Dict[int, _OpenState] = {}  # fit_address -> state
        self._fit_lru: List[int] = []
        self._fit_cache_entries = max(8, fit_cache_entries)
        self._data_cache: Optional[BufferPool] = (
            BufferPool(
                f"{self.name}.block_pool",
                metrics,
                data_cache_blocks,
                writeback=self._write_block_to_disk,
            )
            if data_cache_blocks > 0
            else None
        )

    # ======================================================== create

    def create(
        self,
        *,
        service_type: ServiceType = ServiceType.BASIC,
        locking_level: LockingLevel = LockingLevel.DEFAULT,
    ) -> SystemName:
        """Create a file; returns its system name.

        The FIT fragment and the first data block are allocated as one
        contiguous five-fragment extent whenever possible (paper
        section 5: "the file index table and at least the first data
        block are always contiguous thus eliminating the seek time to
        retrieve the first data block").  The FIT is written to both
        its original location and stable storage.
        """
        with self.tracer.span(
            "file_service", "create", volume=self.volume_id
        ), self.metrics.timer(f"{self.name}.create_us", self.clock):
            return self._do_create(
                service_type=service_type, locking_level=locking_level
            )

    def _do_create(
        self,
        *,
        service_type: ServiceType,
        locking_level: LockingLevel,
    ) -> SystemName:
        first_block: Optional[Extent] = None
        try:
            joint = self.disk.allocate(1 + FRAGMENTS_PER_BLOCK)
            fit_extent, first_block = joint.split(1)
        except DiskFullError:
            fit_extent = self.disk.allocate(1)
        fit = FileIndexTable()
        attrs = fit.attributes
        attrs.created_us = self.clock.now_us
        attrs.generation = self._next_generation()
        attrs.service_type = service_type
        attrs.locking_level = locking_level
        if first_block is not None:
            fit.direct[0] = BlockDescriptor(first_block.start, 1)
        state = _OpenState(fit)
        self._install_state(fit_extent.start, state)
        self._store_fit(fit_extent.start, state)
        self.metrics.add(f"{self.name}.creates")
        return SystemName(self.volume_id, fit_extent.start, attrs.generation)

    # ==================================================== open/close

    def open(self, name: SystemName) -> FileAttributes:
        """Open a file: bumps the reference count, returns attributes."""
        state = self._load_state(name)
        attrs = state.fit.attributes
        attrs.ref_count += 1
        attrs.open_count_total += 1
        state.fit_dirty = True
        self.metrics.add(f"{self.name}.opens")
        return attrs.copy()

    def close(self, name: SystemName) -> None:
        """Close one instance; flushes the file's delayed writes."""
        state = self._load_state(name)
        attrs = state.fit.attributes
        if attrs.ref_count > 0:
            attrs.ref_count -= 1
            state.fit_dirty = True
        self._flush_file(name.fit_address, state)
        self.metrics.add(f"{self.name}.closes")

    def delete(self, name: SystemName) -> None:
        """Delete a file, freeing its data, indirect blocks and FIT."""
        state = self._load_state(name)
        block_map = self._full_map(name.fit_address, state)
        freed = 0
        for _, n_blocks, address in contiguous_runs(
            block_map, 0, len(block_map) - 1
        ):
            if address < 0:
                continue
            self.disk.free(Extent.for_block_run(address, n_blocks))
            if self._data_cache is not None:
                for index in range(n_blocks):
                    self._data_cache.invalidate(address + index * FRAGMENTS_PER_BLOCK)
            freed += n_blocks
        for slot_addr in state.fit.single_indirect:
            if slot_addr is not None:
                self.disk.free(Extent.for_block_run(slot_addr, 1))
        for slot_addr in state.fit.double_indirect:
            if slot_addr is not None:
                self._free_double_indirect(slot_addr)
        fit_extent = Extent(name.fit_address, 1)
        # Tombstone the fragment so a stale system name cannot resurrect
        # the old FIT from residual disk bytes.
        self.disk.put(fit_extent, bytes(fit_extent.byte_size))
        self.disk.free(fit_extent)
        self.disk.release_stable(fit_extent)
        self._evict_state(name.fit_address)
        self.metrics.add(f"{self.name}.deletes")
        self.metrics.add(f"{self.name}.blocks_freed", freed)

    # ======================================================== read

    def read(self, name: SystemName, offset: int, n_bytes: int) -> bytes:
        """Read up to ``n_bytes`` at ``offset`` (positional; idempotent).

        Short reads happen at end of file; reads inside holes return
        zero bytes ('\\x00'), matching sparse-file convention.
        """
        tracer = self.tracer
        with tracer.span(
            "file_service", "read", volume=self.volume_id, offset=offset
        ) as span, self.metrics.timer(f"{self.name}.read_us", self.clock):
            if not tracer.enabled:
                return self._do_read(name, offset, n_bytes)
            # The reference delta is trace-only colour; the counter
            # reads that compute it are skipped when nobody records it.
            refs_before = self.metrics.get(self._refs_counter)
            data = self._do_read(name, offset, n_bytes)
            span.annotate(
                "disk_references",
                self.metrics.get(self._refs_counter) - refs_before,
            )
            return data

    def _do_read(self, name: SystemName, offset: int, n_bytes: int) -> bytes:
        if offset < 0 or n_bytes < 0:
            raise FileSizeError(f"bad read range ({offset}, {n_bytes})")
        state = self._load_state(name)
        attrs = state.fit.attributes
        attrs.last_read_us = self.clock.now_us
        state.fit_dirty = True
        end = min(offset + n_bytes, attrs.file_size)
        if end <= offset:
            return b""
        first_block = offset // BLOCK_SIZE
        last_block = (end - 1) // BLOCK_SIZE
        block_map = self._map_through(name.fit_address, state, last_block)
        pieces: List[bytes] = []
        for block_index, n_blocks, address in contiguous_runs(
            block_map, first_block, last_block
        ):
            if address < 0:
                pieces.append(bytes(n_blocks * BLOCK_SIZE))
            else:
                pieces.append(self._fetch_run(address, n_blocks))
        data = b"".join(pieces)
        skip = offset - first_block * BLOCK_SIZE
        self.metrics.add(f"{self.name}.reads")
        self.metrics.add(f"{self.name}.bytes_read", end - offset)
        return data[skip : skip + (end - offset)]

    # ======================================================== write

    def write(self, name: SystemName, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``, extending the file as needed.

        New blocks are allocated contiguously with the file's existing
        last block when possible, so contiguity counts stay large.
        Modified blocks follow the server's write policy: delayed
        (cached dirty) for basic files, write-through for transaction
        files.  Returns the number of bytes written.
        """
        tracer = self.tracer
        with tracer.span(
            "file_service", "write", volume=self.volume_id, offset=offset
        ) as span, self.metrics.timer(f"{self.name}.write_us", self.clock):
            if not tracer.enabled:
                return self._do_write(name, offset, data)
            refs_before = self.metrics.get(self._refs_counter)
            written = self._do_write(name, offset, data)
            span.annotate(
                "disk_references",
                self.metrics.get(self._refs_counter) - refs_before,
            )
            return written

    def _do_write(self, name: SystemName, offset: int, data: bytes) -> int:
        if offset < 0:
            raise FileSizeError(f"bad write offset {offset}")
        if not data:
            return 0
        state = self._load_state(name)
        attrs = state.fit.attributes
        end = offset + len(data)
        first_block = offset // BLOCK_SIZE
        last_block = (end - 1) // BLOCK_SIZE
        if last_block >= MAX_FILE_BLOCKS:
            raise FileSizeError(
                f"write would exceed the maximum mapped file size "
                f"({MAX_FILE_BLOCKS} blocks)"
            )
        block_map = self._map_through(name.fit_address, state, last_block)
        structural_change = self._allocate_missing(
            name.fit_address, state, block_map, first_block, last_block
        )
        through = (
            self.write_policy is WritePolicy.WRITE_THROUGH
            or attrs.service_type is ServiceType.TRANSACTION
        )
        cursor = offset
        remaining = memoryview(bytes(data))
        while cursor < end:
            block_index = cursor // BLOCK_SIZE
            within = cursor - block_index * BLOCK_SIZE
            chunk = min(BLOCK_SIZE - within, end - cursor)
            desc = block_map[block_index]
            assert desc is not None  # _allocate_missing filled every slot
            self._write_block(
                desc.address,
                within,
                bytes(remaining[: chunk]),
                through=through,
                whole=(within == 0 and chunk == BLOCK_SIZE),
            )
            remaining = remaining[chunk:]
            cursor += chunk
        if end > attrs.file_size:
            attrs.file_size = end
            state.fit_dirty = True
        attrs.last_write_us = self.clock.now_us
        state.fit_dirty = True
        if structural_change:
            # Vital structural information reaches stable storage at once.
            self._store_fit(name.fit_address, state)
        self.metrics.add(f"{self.name}.writes")
        self.metrics.add(f"{self.name}.bytes_written", len(data))
        return len(data)

    # ===================================================== attributes

    def get_attribute(self, name: SystemName) -> FileAttributes:
        """Return a copy of the file's attribute block."""
        state = self._load_state(name)
        self.metrics.add(f"{self.name}.get_attributes")
        return state.fit.attributes.copy()

    def set_service_type(self, name: SystemName, service_type: ServiceType) -> None:
        """Switch the semantics a file is used under (basic <-> transaction)."""
        state = self._load_state(name)
        state.fit.attributes.service_type = service_type
        state.fit_dirty = True
        self._store_fit(name.fit_address, state)

    def set_locking_level(self, name: SystemName, level: LockingLevel) -> None:
        state = self._load_state(name)
        state.fit.attributes.locking_level = level
        state.fit_dirty = True
        self._store_fit(name.fit_address, state)

    def set_file_size_at_least(self, name: SystemName, size: int) -> None:
        """Raise the recorded file size to ``size`` (transaction commits).

        Used when a shadow-page commit extends a file: the descriptor
        swap installs the data but only the FIT knows the length.
        No-op if the file is already at least that large.
        """
        state = self._load_state(name)
        if state.fit.attributes.file_size < size:
            state.fit.attributes.file_size = size
            state.fit_dirty = True
            self._store_fit(name.fit_address, state)

    def exists(self, name: SystemName) -> bool:
        try:
            self._load_state(name)
            return True
        except FileNotFoundError_:
            return False

    # =========================================== transaction support

    def load_fit(self, name: SystemName) -> FileIndexTable:
        """The decoded FIT (transaction service / diagnostics use)."""
        return self._load_state(name).fit

    def block_descriptor(
        self, name: SystemName, block_index: int
    ) -> Optional[BlockDescriptor]:
        """Descriptor of one logical block (None for a hole)."""
        state = self._load_state(name)
        block_map = self._map_through(name.fit_address, state, block_index)
        if block_index >= len(block_map):
            return None
        return block_map[block_index]

    def replace_block_descriptor(
        self, name: SystemName, block_index: int, new_address: int
    ) -> Optional[int]:
        """Point logical block ``block_index`` at a different disk block.

        This is the shadow-page commit step (paper section 6.7: the
        shadow technique "requires the replacement of the block
        descriptor of the original data block with that of the shadow
        block in the file index table").  Returns the old address (or
        None if the slot was a hole).  Counts are recomputed and the
        FIT written through to original + stable storage.
        """
        state = self._load_state(name)
        block_map = self._map_through(name.fit_address, state, block_index)
        old = block_map[block_index]
        block_map[block_index] = BlockDescriptor(new_address, 1)
        self._writeback_map(name.fit_address, state, block_map)
        if self._data_cache is not None and old is not None:
            self._data_cache.invalidate(old.address)
        self._store_fit(name.fit_address, state)
        return old.address if old is not None else None

    def read_block(self, address: int, n_blocks: int = 1) -> bytes:
        """Read ``n_blocks`` contiguous blocks at a raw block address."""
        return self._fetch_run(address, n_blocks)

    def write_block(
        self, address: int, data: bytes, *, through: bool = True
    ) -> None:
        """Write whole blocks at a raw block address."""
        if len(data) % BLOCK_SIZE:
            raise BadAddressError("write_block needs whole blocks")
        for index in range(len(data) // BLOCK_SIZE):
            self._write_block(
                address + index * FRAGMENTS_PER_BLOCK,
                0,
                data[index * BLOCK_SIZE : (index + 1) * BLOCK_SIZE],
                through=through,
                whole=True,
            )

    # ====================================================== flushing

    def flush(self) -> None:
        """Write back all delayed data, FITs, and the disk server state."""
        if self._data_cache is not None:
            self._flush_data_blocks()
        for fit_address, state in list(self._files.items()):
            if state.fit_dirty or state.dirty_indirect:
                self._store_fit(fit_address, state)
        self.disk.flush()
        self.metrics.add(f"{self.name}.flushes")
        self.metrics.gauge(f"{self.name}.fits_cached", len(self._files))

    def _flush_data_blocks(self) -> None:
        """Write back every dirty data block, batched when possible.

        With a request pipeline attached to the disk server, the dirty
        blocks are all *submitted* before the queue drains, so an
        adjacent-extent scheduler coalesces neighbouring blocks of the
        same file into single disk references — "several contiguous
        blocks ... freed or allocated simultaneously" (paper §4),
        applied to delayed writeback.  Without a pipeline (or inside a
        deferred-time frame, where running the event loop would tangle
        the frame cursor) the buffer pool writes back inline as before.
        """
        assert self._data_cache is not None
        pipeline = self.disk.pipeline
        if pipeline is None or active_frame(self.clock) is not None:
            self._data_cache.flush()
            return
        dirty = sorted(self._data_cache.dirty_items())
        if not dirty:
            return
        submitted = [
            (address, self.disk.submit_put(Extent.for_block_run(address, 1), data))
            for address, data in dirty
        ]
        pipeline.drain()
        for address, completion in submitted:
            error = completion.exception()
            if error is not None:
                raise error
            self._data_cache.mark_clean(address)
            self.metrics.add(f"{self.name}.block_pool.writebacks")

    def crash(self) -> None:
        """Simulate the machine hosting this server crashing.

        Volatile state (FIT cache, block pool) is lost and the disk
        goes offline; subsequent operations raise
        :class:`~repro.common.errors.DiskCrashedError` until
        :meth:`recover` runs after the disk is repaired.
        """
        self.disk.disk.crash()
        self._files.clear()
        self._fit_lru.clear()
        if self._data_cache is not None:
            self._data_cache.invalidate_all()
        self.metrics.add(f"{self.name}.crashes")

    def recover(self) -> None:
        """Drop volatile state after a crash; reload from the disk service."""
        self._files.clear()
        self._fit_lru.clear()
        if self._data_cache is not None:
            self._data_cache.invalidate_all()
        self.disk.recover()
        self.metrics.add(f"{self.name}.recoveries")

    # ====================================================== internal

    # ---- state / FIT management

    def _install_state(self, fit_address: int, state: _OpenState) -> None:
        self._files[fit_address] = state
        if fit_address in self._fit_lru:
            self._fit_lru.remove(fit_address)
        self._fit_lru.append(fit_address)
        while len(self._fit_lru) > self._fit_cache_entries:
            victim = self._fit_lru[0]
            victim_state = self._files.get(victim)
            if victim_state is not None and (
                victim_state.fit_dirty or victim_state.dirty_indirect
            ):
                self._store_fit(victim, victim_state)
            self._fit_lru.pop(0)
            self._files.pop(victim, None)

    def _evict_state(self, fit_address: int) -> None:
        self._files.pop(fit_address, None)
        if fit_address in self._fit_lru:
            self._fit_lru.remove(fit_address)

    def _load_state(self, name: SystemName) -> _OpenState:
        if name.volume_id != self.volume_id:
            raise FileServiceError(
                f"{name} belongs to volume {name.volume_id}, this server is "
                f"volume {self.volume_id}"
            )
        state = self._files.get(name.fit_address)
        if state is None:
            state = self._read_fit_from_disk(name.fit_address)
            self._install_state(name.fit_address, state)
        if state.fit.attributes.generation != name.generation:
            raise FileNotFoundError_(
                f"{name} is stale (file deleted and fragment recycled)"
            )
        return state

    def _read_fit_from_disk(self, fit_address: int) -> _OpenState:
        extent = Extent(fit_address, 1)
        try:
            blob = self.disk.get(extent)
            fit = FileIndexTable.decode(blob)
        except (FileSizeError, BadAddressError, MediaError) as exc:
            # "A copy of the file index table is always available in
            # stable storage" (paper section 5) — a torn, corrupt, or
            # checksum-failed main copy is repaired from it.
            fit = self._restore_fit_from_stable(extent)
            if fit is None:
                raise FileNotFoundError_(
                    f"no file index table at fragment {fit_address}: {exc}"
                ) from exc
        self.metrics.add(f"{self.name}.fit_loads")
        return _OpenState(fit)

    def _restore_fit_from_stable(self, extent: Extent) -> Optional[FileIndexTable]:
        from repro.disk_service.server import Source

        try:
            blob = self.disk.get(extent, source=Source.STABLE)
            fit = FileIndexTable.decode(blob)
        except (KeyError, FileSizeError, BadAddressError, MediaError):
            return None
        self.disk.put(extent, blob)  # heal the main copy
        self.metrics.add(f"{self.name}.fit_restores")
        return fit

    def _store_fit(self, fit_address: int, state: _OpenState) -> None:
        """FIT and dirty indirect blocks to original + stable storage."""
        self._flush_indirect(fit_address, state)
        self.disk.put(
            Extent(fit_address, 1),
            state.fit.encode(),
            stability=Stability.BOTH,
        )
        state.fit_dirty = False
        self.metrics.add(f"{self.name}.fit_stores")

    def _flush_file(self, fit_address: int, state: _OpenState) -> None:
        if self._data_cache is not None:
            addresses = {
                desc.address
                for desc in self._full_map(fit_address, state)
                if desc is not None
            }
            self._data_cache.flush_matching(lambda key: key in addresses)
        if state.fit_dirty or state.dirty_indirect:
            self._store_fit(fit_address, state)

    # ---- block map (direct + indirect)

    def _map_through(
        self, fit_address: int, state: _OpenState, last_block: int
    ) -> List[Optional[BlockDescriptor]]:
        """The logical block map, materialised through ``last_block``."""
        if last_block < DIRECT_DESCRIPTORS and state.block_map is None:
            return state.fit.direct
        full = self._full_map(fit_address, state)
        while len(full) <= last_block:
            full.append(None)
        return full

    def _full_map(
        self, fit_address: int, state: _OpenState
    ) -> List[Optional[BlockDescriptor]]:
        if state.block_map is not None:
            return state.block_map
        full: List[Optional[BlockDescriptor]] = list(state.fit.direct)
        for slot, address in enumerate(state.fit.single_indirect):
            if address is None:
                full.extend([None] * DESCRIPTORS_PER_INDIRECT)
            else:
                blob = self.disk.get(Extent.for_block_run(address, 1))
                full.extend(decode_indirect_block(blob))
                self.metrics.add(f"{self.name}.indirect_loads")
        # Double-indirect regions: each outer slot covers a fixed span,
        # so absent slots pad with holes to keep later slots aligned.
        per_outer = DESCRIPTORS_PER_INDIRECT * DESCRIPTORS_PER_INDIRECT
        used = [a for a in state.fit.double_indirect if a is not None]
        if used:
            for address in state.fit.double_indirect:
                if address is None:
                    full.extend([None] * per_outer)
                else:
                    region = self._load_double_indirect(address)
                    region += [None] * (per_outer - len(region))
                    full.extend(region)
            # Trim the all-hole tail: keeps maps of barely-double files small.
            while full and full[-1] is None:
                full.pop()
        state.block_map = full
        return full

    def _load_double_indirect(
        self, address: int
    ) -> List[Optional[BlockDescriptor]]:
        blob = self.disk.get(Extent.for_block_run(address, 1))
        pointers = decode_indirect_block(blob)
        out: List[Optional[BlockDescriptor]] = []
        for pointer in pointers:
            if pointer is None:
                out.extend([None] * DESCRIPTORS_PER_INDIRECT)
            else:
                inner = self.disk.get(Extent.for_block_run(pointer.address, 1))
                out.extend(decode_indirect_block(inner))
                self.metrics.add(f"{self.name}.indirect_loads")
        return out

    def _free_double_indirect(self, address: int) -> None:
        blob = self.disk.get(Extent.for_block_run(address, 1))
        for pointer in decode_indirect_block(blob):
            if pointer is not None:
                self.disk.free(Extent.for_block_run(pointer.address, 1))
        self.disk.free(Extent.for_block_run(address, 1))

    def _writeback_map(
        self,
        fit_address: int,
        state: _OpenState,
        block_map: List[Optional[BlockDescriptor]],
    ) -> None:
        """Recompute counts and fold the map back into FIT + indirect blocks."""
        block_map = recompute_counts(block_map)
        state.block_map = block_map if len(block_map) > DIRECT_DESCRIPTORS else None
        state.fit.direct = list(block_map[:DIRECT_DESCRIPTORS]) + [None] * max(
            0, DIRECT_DESCRIPTORS - len(block_map)
        )
        state.fit.direct = state.fit.direct[:DIRECT_DESCRIPTORS]
        state.fit_dirty = True
        overflow = block_map[DIRECT_DESCRIPTORS:]
        if not any(desc is not None for desc in overflow):
            return
        for slot in range(SINGLE_INDIRECT_SLOTS):
            lo = slot * DESCRIPTORS_PER_INDIRECT
            hi = lo + DESCRIPTORS_PER_INDIRECT
            chunk = overflow[lo:hi]
            if not any(desc is not None for desc in chunk):
                continue
            if state.fit.single_indirect[slot] is None:
                indirect_extent = self.disk.allocate_block(1)
                state.fit.single_indirect[slot] = indirect_extent.start
            state.dirty_indirect.add(slot)
        beyond = overflow[SINGLE_INDIRECT_SLOTS * DESCRIPTORS_PER_INDIRECT :]
        if not any(desc is not None for desc in beyond):
            return
        # Double-indirect growth: mark each touched (outer, inner) chunk.
        per_outer = DESCRIPTORS_PER_INDIRECT * DESCRIPTORS_PER_INDIRECT
        for rel, desc in enumerate(beyond):
            if desc is None:
                continue
            outer = rel // per_outer
            inner = (rel % per_outer) // DESCRIPTORS_PER_INDIRECT
            if outer >= len(state.fit.double_indirect):
                raise FileSizeError(
                    "file exceeds even the double-indirect range"
                )
            if state.fit.double_indirect[outer] is None:
                pointer_block = self.disk.allocate_block(1)
                state.fit.double_indirect[outer] = pointer_block.start
                state.double_pointers[outer] = (
                    [None] * DESCRIPTORS_PER_INDIRECT
                )
            state.dirty_double.add((outer, inner))

    def _flush_indirect(self, fit_address: int, state: _OpenState) -> None:
        if (
            not state.dirty_indirect and not state.dirty_double
        ) or state.block_map is None:
            state.dirty_indirect.clear()
            state.dirty_double.clear()
            return
        self._flush_double_indirect(state)
        for slot in sorted(state.dirty_indirect):
            address = state.fit.single_indirect[slot]
            if address is None:
                continue
            lo = DIRECT_DESCRIPTORS + slot * DESCRIPTORS_PER_INDIRECT
            hi = lo + DESCRIPTORS_PER_INDIRECT
            chunk = state.block_map[lo:hi]
            chunk += [None] * (DESCRIPTORS_PER_INDIRECT - len(chunk))
            self.disk.put(
                Extent.for_block_run(address, 1),
                encode_indirect_block(chunk),
                stability=Stability.BOTH,
            )
            self.metrics.add(f"{self.name}.indirect_stores")
        state.dirty_indirect.clear()

    def _flush_double_indirect(self, state: _OpenState) -> None:
        """Write dirty double-indirect chunks + their pointer blocks."""
        if not state.dirty_double:
            return
        base = DIRECT_DESCRIPTORS + SINGLE_INDIRECT_SLOTS * DESCRIPTORS_PER_INDIRECT
        per_outer = DESCRIPTORS_PER_INDIRECT * DESCRIPTORS_PER_INDIRECT
        dirty_pointer_blocks: set[int] = set()
        for outer, inner in sorted(state.dirty_double):
            pointers = self._double_pointers(state, outer)
            if pointers[inner] is None:
                inner_block = self.disk.allocate_block(1)
                pointers[inner] = inner_block.start
                dirty_pointer_blocks.add(outer)
            lo = base + outer * per_outer + inner * DESCRIPTORS_PER_INDIRECT
            hi = lo + DESCRIPTORS_PER_INDIRECT
            chunk = list(state.block_map[lo:hi])
            chunk += [None] * (DESCRIPTORS_PER_INDIRECT - len(chunk))
            self.disk.put(
                Extent.for_block_run(pointers[inner], 1),
                encode_indirect_block(chunk),
                stability=Stability.BOTH,
            )
            self.metrics.add(f"{self.name}.indirect_stores")
        for outer in sorted(dirty_pointer_blocks):
            address = state.fit.double_indirect[outer]
            pointer_descs = [
                None if addr is None else BlockDescriptor(addr, 1)
                for addr in state.double_pointers[outer]
            ]
            self.disk.put(
                Extent.for_block_run(address, 1),
                encode_indirect_block(pointer_descs),
                stability=Stability.BOTH,
            )
            self.metrics.add(f"{self.name}.indirect_stores")
        state.dirty_double.clear()

    def _double_pointers(
        self, state: _OpenState, outer: int
    ) -> List[Optional[int]]:
        pointers = state.double_pointers.get(outer)
        if pointers is None:
            address = state.fit.double_indirect[outer]
            blob = self.disk.get(Extent.for_block_run(address, 1))
            pointers = [
                None if desc is None else desc.address
                for desc in decode_indirect_block(blob)
            ]
            state.double_pointers[outer] = pointers
        return pointers

    # ---- allocation

    def _allocate_missing(
        self,
        fit_address: int,
        state: _OpenState,
        block_map: List[Optional[BlockDescriptor]],
        first_block: int,
        last_block: int,
    ) -> bool:
        """Ensure every block in [first_block, last_block] is mapped.

        Returns True if any allocation happened (structural change).
        Allocation policy: extend contiguously with the highest mapped
        predecessor when the adjacent fragments are free, else allocate
        the whole missing range as one contiguous run, else gather.
        """
        missing = [
            index
            for index in range(first_block, last_block + 1)
            if index >= len(block_map) or block_map[index] is None
        ]
        if not missing:
            return False
        while len(block_map) <= last_block:
            block_map.append(None)
        runs = self._group_consecutive(missing)
        for run_start, run_len in runs:
            self._allocate_run(block_map, run_start, run_len)
        self._writeback_map(fit_address, state, block_map)
        return True

    def _allocate_run(
        self,
        block_map: List[Optional[BlockDescriptor]],
        run_start: int,
        run_len: int,
    ) -> None:
        allocated: List[Extent] = []
        # Try to continue contiguously after the preceding mapped block,
        # reserving ahead of the immediate need so interleaved appenders
        # cannot shred each other's layout.  The reservation is capped by
        # how big the file already is (doubling-style), so small files
        # never over-allocate.
        predecessor = block_map[run_start - 1] if run_start > 0 else None
        remaining = run_len
        mapped_before = sum(1 for desc in block_map if desc is not None)
        if predecessor is not None:
            reserve = min(self.growth_batch_blocks - 1, mapped_before)
            want = remaining + max(0, reserve)
            extent = self.disk.try_allocate_at(
                predecessor.address + FRAGMENTS_PER_BLOCK,
                want * FRAGMENTS_PER_BLOCK,
            )
            while extent is None and want > 1:
                want -= 1
                extent = self.disk.try_allocate_at(
                    predecessor.address + FRAGMENTS_PER_BLOCK,
                    want * FRAGMENTS_PER_BLOCK,
                )
            if extent is not None:
                allocated.append(extent)
                remaining -= min(want, remaining)
        fresh_reserve = max(0, min(self.growth_batch_blocks - 1, mapped_before))
        while remaining > 0:
            try:
                # A fresh run also reserves ahead: the file could not
                # extend in place, so future appends should at least be
                # contiguous with *this* run.
                try:
                    extent = self.disk.allocate(
                        (remaining + fresh_reserve) * FRAGMENTS_PER_BLOCK
                    )
                except DiskFullError:
                    if fresh_reserve == 0:
                        raise
                    fresh_reserve = 0
                    extent = self.disk.allocate(remaining * FRAGMENTS_PER_BLOCK)
                allocated.append(extent)
                remaining = 0
            except DiskFullError:
                # Scattered fallback: one block at a time.  A block still
                # needs four contiguous fragments; if even that fails the
                # disk genuinely cannot hold another data block.
                allocated.append(self.disk.allocate_block(1))
                remaining -= 1
        index = run_start
        for extent in allocated:
            for block in range(extent.whole_blocks):
                address = extent.start + block * FRAGMENTS_PER_BLOCK
                if index < run_start + run_len:
                    block_map[index] = BlockDescriptor(address, 1)
                    index += 1
                    continue
                # Surplus from the reservation: map it into the directly
                # following unmapped slots (preallocation), free the rest.
                if index < MAX_FILE_BLOCKS and (
                    index >= len(block_map) or block_map[index] is None
                ):
                    while len(block_map) <= index:
                        block_map.append(None)
                    block_map[index] = BlockDescriptor(address, 1)
                    index += 1
                else:
                    self.disk.free(
                        Extent.for_block_run(
                            address, extent.whole_blocks - block
                        )
                    )
                    break

    @staticmethod
    def _group_consecutive(indices: List[int]) -> List[Tuple[int, int]]:
        runs: List[Tuple[int, int]] = []
        start = indices[0]
        length = 1
        for prev, cur in zip(indices, indices[1:]):
            if cur == prev + 1:
                length += 1
            else:
                runs.append((start, length))
                start, length = cur, 1
        runs.append((start, length))
        return runs

    # ---- data block I/O through the server cache

    def _fetch_run(self, address: int, n_blocks: int) -> bytes:
        """Read a contiguous run of blocks, server cache first.

        Fully cached runs cost no disk reference; otherwise uncached
        sub-runs are fetched, each in one disk reference (the
        contiguity-count payoff).
        """
        if self._data_cache is None:
            return self.disk.get(Extent.for_block_run(address, n_blocks))
        pieces: List[bytes] = []
        index = 0
        while index < n_blocks:
            block_addr = address + index * FRAGMENTS_PER_BLOCK
            cached = self._data_cache.get(block_addr)
            if cached is not None:
                self.tracer.annotate_add("block_pool_hits")
                pieces.append(cached)
                index += 1
                continue
            self.tracer.annotate_add("block_pool_misses")
            # Find the extent of the uncached sub-run.
            miss_len = 1
            while index + miss_len < n_blocks and not self._data_cache.contains(
                address + (index + miss_len) * FRAGMENTS_PER_BLOCK
            ):
                miss_len += 1
            data = self.disk.get(Extent.for_block_run(block_addr, miss_len))
            for sub in range(miss_len):
                self._data_cache.put(
                    block_addr + sub * FRAGMENTS_PER_BLOCK,
                    data[sub * BLOCK_SIZE : (sub + 1) * BLOCK_SIZE],
                )
            pieces.append(data)
            index += miss_len
        return b"".join(pieces)

    def _write_block(
        self,
        address: int,
        within: int,
        chunk: bytes,
        *,
        through: bool,
        whole: bool,
    ) -> None:
        if whole:
            block = chunk
        else:
            current = self._fetch_run(address, 1)
            block = current[:within] + chunk + current[within + len(chunk) :]
        if self._data_cache is None or through:
            self._write_block_to_disk(address, block)
            if self._data_cache is not None:
                self._data_cache.put(address, block, dirty=False)
        else:
            self._data_cache.put(address, block, dirty=True)

    def _write_block_to_disk(self, address: int, block: bytes) -> None:
        self.disk.put(Extent.for_block_run(address, 1), block)

    def __repr__(self) -> str:
        return f"FileServer(volume={self.volume_id}, files_cached={len(self._files)})"

