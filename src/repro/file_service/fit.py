"""The file index table (FIT) and block descriptors.

Paper section 5: "The sequence of block descriptors is stored in a
separate data structure called a file index table. ... The location
where a block descriptor is stored in the file index table is defined
as a block-index."  And: "in order to minimize the references to disk,
the file index table stores along with each block descriptor a two
byte count to indicate the number of contiguous successive disk
blocks", so "all successive blocks, which are contiguous, can be
cached using one single invocation of get-block, instead of count
number of invocations".

The FIT lives in a single 2 KB fragment.  Sixty-four direct
descriptors cover 64 x 8 KB = 512 KB, realising the paper's "direct
access to at least half a megabyte of file's data".  Eight
single-indirect and two double-indirect block references remove the
practical file-size limit (each indirect block is a data-block-sized
array of descriptors).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import FileSizeError
from repro.common.units import BLOCK_SIZE, FRAGMENT_SIZE, FRAGMENTS_PER_BLOCK
from repro.file_service.attributes import FileAttributes, LockingLevel, ServiceType

_MAGIC = b"RFIT"
_HEADER = struct.Struct("<4sHHQQQQQIBBHII")
_DESC = struct.Struct("<IH")  # address (fragment number of block start), count

#: Descriptor slots directly inside the FIT: 64 blocks = 512 KB.
DIRECT_DESCRIPTORS = 64
DIRECT_COVERAGE_BYTES = DIRECT_DESCRIPTORS * BLOCK_SIZE

#: Descriptors per 8 KB indirect block.
DESCRIPTORS_PER_INDIRECT = BLOCK_SIZE // _DESC.size

SINGLE_INDIRECT_SLOTS = 8
DOUBLE_INDIRECT_SLOTS = 2

#: Largest block-index representable (direct + single + double indirect).
MAX_FILE_BLOCKS = (
    DIRECT_DESCRIPTORS
    + SINGLE_INDIRECT_SLOTS * DESCRIPTORS_PER_INDIRECT
    + DOUBLE_INDIRECT_SLOTS * DESCRIPTORS_PER_INDIRECT * DESCRIPTORS_PER_INDIRECT
)

#: Sentinel meaning "no block here" (sparse hole / unallocated slot).
NULL_ADDRESS = 0xFFFF_FFFF

assert DIRECT_COVERAGE_BYTES == 512 * 1024


@dataclass(frozen=True, slots=True)
class BlockDescriptor:
    """One data block's location plus its contiguity run length.

    Attributes:
        address: fragment number where the 8 KB block starts.
        count: number of contiguous successive disk blocks beginning
            here (always >= 1; the paper's two-byte field).
    """

    address: int
    count: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.address < NULL_ADDRESS:
            raise FileSizeError(f"bad block address {self.address}")
        if not 1 <= self.count <= 0xFFFF:
            raise FileSizeError(f"bad contiguity count {self.count}")


def recompute_counts(
    descriptors: List[Optional[BlockDescriptor]],
) -> List[Optional[BlockDescriptor]]:
    """Recompute every descriptor's contiguity count (backward pass).

    ``count[i]`` is 1 plus ``count[i+1]`` when block i+1 sits exactly
    one block (four fragments) after block i on the disk; counts are
    capped at the two-byte maximum.
    """
    result: List[Optional[BlockDescriptor]] = list(descriptors)
    next_desc: Optional[BlockDescriptor] = None
    for index in range(len(result) - 1, -1, -1):
        desc = result[index]
        if desc is None:
            next_desc = None
            continue
        if (
            next_desc is not None
            and next_desc.address == desc.address + FRAGMENTS_PER_BLOCK
        ):
            count = min(next_desc.count + 1, 0xFFFF)
        else:
            count = 1
        desc = BlockDescriptor(desc.address, count)
        result[index] = desc
        next_desc = desc
    return result


def contiguous_runs(
    descriptors: List[Optional[BlockDescriptor]],
    first_block: int,
    last_block: int,
) -> Iterator[Tuple[int, int, int]]:
    """Group block-indices [first_block, last_block] into contiguous runs.

    Yields ``(block_index, n_blocks, address)`` triples; each triple is
    one ``get_block`` invocation thanks to the count field.  Holes
    (None descriptors) are yielded as ``(block_index, n_blocks, -1)``.
    """
    index = first_block
    while index <= last_block:
        desc = descriptors[index] if index < len(descriptors) else None
        if desc is None:
            start = index
            while index <= last_block and (
                index >= len(descriptors) or descriptors[index] is None
            ):
                index += 1
            yield start, index - start, -1
            continue
        run = min(desc.count, last_block - index + 1)
        yield index, run, desc.address
        index += run


@dataclass(slots=True)
class FileIndexTable:
    """In-memory form of one file's FIT fragment.

    The FIT records *where* the blocks are; indirect blocks themselves
    are read and written by the file server (they are ordinary disk
    blocks whose contents are descriptor arrays).
    """

    attributes: FileAttributes = field(default_factory=FileAttributes)
    direct: List[Optional[BlockDescriptor]] = field(
        default_factory=lambda: [None] * DIRECT_DESCRIPTORS
    )
    single_indirect: List[Optional[int]] = field(
        default_factory=lambda: [None] * SINGLE_INDIRECT_SLOTS
    )
    double_indirect: List[Optional[int]] = field(
        default_factory=lambda: [None] * DOUBLE_INDIRECT_SLOTS
    )

    # ------------------------------------------------------- codec

    def encode(self) -> bytes:
        """Serialise to exactly one fragment (2048 bytes)."""
        attrs = self.attributes
        parts = [
            _HEADER.pack(
                _MAGIC,
                1,  # version
                0,  # flags
                attrs.generation,
                attrs.file_size,
                attrs.created_us,
                attrs.last_read_us,
                attrs.last_write_us,
                attrs.ref_count,
                int(attrs.service_type),
                int(attrs.locking_level),
                attrs.extra_space,
                attrs.open_count_total,
                self.mapped_blocks(),
            )
        ]
        for desc in self.direct:
            if desc is None:
                parts.append(_DESC.pack(NULL_ADDRESS, 0))
            else:
                parts.append(_DESC.pack(desc.address, desc.count))
        for slots in (self.single_indirect, self.double_indirect):
            for address in slots:
                parts.append(
                    struct.pack("<I", NULL_ADDRESS if address is None else address)
                )
        blob = b"".join(parts)
        if len(blob) > FRAGMENT_SIZE:
            raise FileSizeError(f"FIT overflows its fragment ({len(blob)} bytes)")
        return blob + bytes(FRAGMENT_SIZE - len(blob))

    @classmethod
    def decode(cls, blob: bytes) -> "FileIndexTable":
        """Parse a FIT fragment; raises :class:`FileSizeError` on corruption."""
        if len(blob) < FRAGMENT_SIZE:
            raise FileSizeError(f"FIT fragment truncated ({len(blob)} bytes)")
        (
            magic,
            _version,
            _flags,
            generation,
            file_size,
            created_us,
            last_read_us,
            last_write_us,
            ref_count,
            service_type,
            locking_level,
            extra_space,
            open_count_total,
            _n_blocks,
        ) = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise FileSizeError("not a file index table (bad magic)")
        attrs = FileAttributes(
            file_size=file_size,
            created_us=created_us,
            last_read_us=last_read_us,
            last_write_us=last_write_us,
            ref_count=ref_count,
            service_type=ServiceType(service_type),
            locking_level=LockingLevel(locking_level),
            extra_space=extra_space,
            generation=generation,
            open_count_total=open_count_total,
        )
        offset = _HEADER.size
        direct: List[Optional[BlockDescriptor]] = []
        for _ in range(DIRECT_DESCRIPTORS):
            address, count = _DESC.unpack_from(blob, offset)
            offset += _DESC.size
            direct.append(
                None if address == NULL_ADDRESS else BlockDescriptor(address, count)
            )
        single: List[Optional[int]] = []
        for _ in range(SINGLE_INDIRECT_SLOTS):
            (address,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            single.append(None if address == NULL_ADDRESS else address)
        double: List[Optional[int]] = []
        for _ in range(DOUBLE_INDIRECT_SLOTS):
            (address,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            double.append(None if address == NULL_ADDRESS else address)
        return cls(
            attributes=attrs,
            direct=direct,
            single_indirect=single,
            double_indirect=double,
        )

    # ------------------------------------------------------ queries

    def mapped_blocks(self) -> int:
        """Number of direct descriptors in use (indirect counted by server)."""
        return sum(1 for desc in self.direct if desc is not None)

    def uses_indirection(self) -> bool:
        return any(address is not None for address in self.single_indirect) or any(
            address is not None for address in self.double_indirect
        )

    def refresh_direct_counts(self) -> None:
        """Recompute the contiguity counts of the direct descriptors."""
        self.direct = recompute_counts(self.direct)


def encode_indirect_block(
    descriptors: List[Optional[BlockDescriptor]],
) -> bytes:
    """Serialise one indirect block's descriptor array (8 KB)."""
    if len(descriptors) > DESCRIPTORS_PER_INDIRECT:
        raise FileSizeError("too many descriptors for an indirect block")
    parts = []
    for desc in descriptors:
        if desc is None:
            parts.append(_DESC.pack(NULL_ADDRESS, 0))
        else:
            parts.append(_DESC.pack(desc.address, desc.count))
    parts.append(
        _DESC.pack(NULL_ADDRESS, 0) * (DESCRIPTORS_PER_INDIRECT - len(descriptors))
    )
    blob = b"".join(parts)
    return blob + bytes(BLOCK_SIZE - len(blob))


def decode_indirect_block(blob: bytes) -> List[Optional[BlockDescriptor]]:
    """Parse one indirect block into its descriptor array."""
    if len(blob) != BLOCK_SIZE:
        raise FileSizeError(f"indirect block must be {BLOCK_SIZE} bytes")
    descriptors: List[Optional[BlockDescriptor]] = []
    offset = 0
    for _ in range(DESCRIPTORS_PER_INDIRECT):
        address, count = _DESC.unpack_from(blob, offset)
        offset += _DESC.size
        descriptors.append(
            None if address == NULL_ADDRESS else BlockDescriptor(address, max(count, 1))
        )
    return descriptors
