"""The RHODOS basic file service.

A *flat* file service (paper section 5): mutable files identified by
system names, no structure between files.  Each file is described by a
**file index table (FIT)** stored in a single 2 KB fragment, created
dynamically and contiguous with the file's first data block.  The FIT
holds the file-specific attributes and one 6-byte block descriptor per
data block; each descriptor carries a 2-byte **count** of contiguous
successive disk blocks, so any contiguous run is retrieved with one
single ``get_block``.  Sixty-four direct descriptors cover 512 KB —
"for files up to half a megabyte, the maximum number of disk references
is two: one for the file index table and the other for file data" —
and single/double indirect blocks remove any practical size limit.

Operations (paper section 5): create, open, delete, read, write,
pread, pwrite, get_attribute, lseek, close.  ``read``/``write`` vs
``pread``/``pwrite`` and ``lseek`` are *client* (file-agent) concepts —
the server itself is positional and therefore idempotent; see
:mod:`repro.agents`.
"""

from repro.file_service.attributes import FileAttributes, ServiceType, LockingLevel
from repro.file_service.fit import (
    BlockDescriptor,
    FileIndexTable,
    DIRECT_DESCRIPTORS,
    DIRECT_COVERAGE_BYTES,
    NULL_ADDRESS,
)
from repro.file_service.cache import BufferPool, WritePolicy
from repro.file_service.server import FileServer

__all__ = [
    "FileAttributes",
    "ServiceType",
    "LockingLevel",
    "BlockDescriptor",
    "FileIndexTable",
    "DIRECT_DESCRIPTORS",
    "DIRECT_COVERAGE_BYTES",
    "NULL_ADDRESS",
    "BufferPool",
    "WritePolicy",
    "FileServer",
]
