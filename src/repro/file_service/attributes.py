"""File-specific attributes stored in the file index table.

Paper section 5: "The file index table also stores the file-specific
attributes: file size; date and time of file creation; last read
access; a reference count to indicate the number of instances a file
is opened simultaneously; service type to indicate whether operations
on a file follow the semantics of the basic file service or
transaction service; locking level to indicate level of locking; and
space to indicate the amount of extra space needed for storing the
file-specific attributes."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ServiceType(enum.IntEnum):
    """Which semantics govern operations on the file right now.

    Paper section 2.2: "At any moment a file can be used either as a
    basic file ... or as a transaction file."
    """

    BASIC = 0
    TRANSACTION = 1


class LockingLevel(enum.IntEnum):
    """Granularity at which the transaction service locks this file.

    Paper section 6.1: record, page, or complete file locking; DEFAULT
    lets the service pick based on how the file is used.
    """

    RECORD = 0
    PAGE = 1
    FILE = 2
    DEFAULT = 255


@dataclass(slots=True)
class FileAttributes:
    """Mutable attribute block of one file.

    Times are simulated microseconds (see :class:`repro.common.SimClock`).
    """

    file_size: int = 0
    created_us: int = 0
    last_read_us: int = 0
    last_write_us: int = 0
    ref_count: int = 0
    service_type: ServiceType = ServiceType.BASIC
    locking_level: LockingLevel = LockingLevel.DEFAULT
    extra_space: int = 0
    generation: int = 0
    open_count_total: int = field(default=0)  # usage statistic for DEFAULT locking

    def copy(self) -> "FileAttributes":
        return FileAttributes(
            file_size=self.file_size,
            created_us=self.created_us,
            last_read_us=self.last_read_us,
            last_write_us=self.last_write_us,
            ref_count=self.ref_count,
            service_type=self.service_type,
            locking_level=self.locking_level,
            extra_space=self.extra_space,
            generation=self.generation,
            open_count_total=self.open_count_total,
        )
