"""Shared kernel for the RHODOS distributed file facility reproduction.

This package holds the pieces every other layer relies on: the unit
constants that define fragments and blocks, the simulated clock,
the exception hierarchy, identifier types (system names, object
descriptors), the metrics registry used by benchmarks, and binary
serialization helpers for on-disk structures.
"""

from repro.common.clock import SimClock
from repro.common.errors import (
    RhodosError,
    DiskError,
    DiskFullError,
    BadAddressError,
    BadSectorError,
    DiskCrashedError,
    FileServiceError,
    FileNotFoundError_,
    FileExistsError_,
    BadDescriptorError,
    FileSizeError,
    NamingError,
    NameNotFoundError,
    NameExistsError,
    TransactionError,
    TransactionAbortedError,
    LockTimeoutError,
    InvalidTransactionStateError,
    SerializabilityError,
    ReplicationError,
    RpcError,
    RpcTimeoutError,
    ProcessError,
)
from repro.common.ids import (
    SystemName,
    ObjectDescriptor,
    TransactionDescriptor,
    DEVICE_DESCRIPTOR_LIMIT,
    monotonic_id_factory,
)
from repro.common.metrics import Metrics
from repro.common.units import (
    SECTOR_SIZE,
    FRAGMENT_SIZE,
    BLOCK_SIZE,
    SECTORS_PER_FRAGMENT,
    FRAGMENTS_PER_BLOCK,
    SECTORS_PER_BLOCK,
    KIB,
    MIB,
    fragments_for_bytes,
    blocks_for_bytes,
)

__all__ = [
    "SimClock",
    "RhodosError",
    "DiskError",
    "DiskFullError",
    "BadAddressError",
    "BadSectorError",
    "DiskCrashedError",
    "FileServiceError",
    "FileNotFoundError_",
    "FileExistsError_",
    "BadDescriptorError",
    "FileSizeError",
    "NamingError",
    "NameNotFoundError",
    "NameExistsError",
    "TransactionError",
    "TransactionAbortedError",
    "LockTimeoutError",
    "InvalidTransactionStateError",
    "SerializabilityError",
    "ReplicationError",
    "RpcError",
    "RpcTimeoutError",
    "ProcessError",
    "SystemName",
    "ObjectDescriptor",
    "TransactionDescriptor",
    "DEVICE_DESCRIPTOR_LIMIT",
    "monotonic_id_factory",
    "Metrics",
    "SECTOR_SIZE",
    "FRAGMENT_SIZE",
    "BLOCK_SIZE",
    "SECTORS_PER_FRAGMENT",
    "FRAGMENTS_PER_BLOCK",
    "SECTORS_PER_BLOCK",
    "KIB",
    "MIB",
    "fragments_for_bytes",
    "blocks_for_bytes",
]
