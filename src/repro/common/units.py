"""Logical storage units of the RHODOS disk service.

The paper fixes two logical units of information storage (section 4):

* a **fragment** of 2 KB, used for structural (control) information such
  as file index tables, because small allocations out of full blocks
  would waste space while per-fragment I/O for small structures reduces
  communication overheads; and
* a **block** of 8 KB, used for file data, because a large block reduces
  the effect of rotational latency; *four contiguous fragments make one
  block*.

Sectors are the physical unit of the simulated disk (512 bytes, the
ubiquitous value in 1990s drives).  All unit arithmetic in the code base
goes through this module so the relationships above hold everywhere.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB

SECTOR_SIZE = 512
FRAGMENT_SIZE = 2 * KIB
BLOCK_SIZE = 8 * KIB

SECTORS_PER_FRAGMENT = FRAGMENT_SIZE // SECTOR_SIZE
FRAGMENTS_PER_BLOCK = BLOCK_SIZE // FRAGMENT_SIZE
SECTORS_PER_BLOCK = BLOCK_SIZE // SECTOR_SIZE

assert SECTORS_PER_FRAGMENT == 4
assert FRAGMENTS_PER_BLOCK == 4
assert SECTORS_PER_BLOCK == 16


def fragments_for_bytes(n_bytes: int) -> int:
    """Number of whole fragments needed to hold ``n_bytes``.

    Zero bytes still occupy one fragment: the disk service never hands
    out zero-length extents.
    """
    if n_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {n_bytes}")
    if n_bytes == 0:
        return 1
    return -(-n_bytes // FRAGMENT_SIZE)


def blocks_for_bytes(n_bytes: int) -> int:
    """Number of whole blocks needed to hold ``n_bytes`` of file data."""
    if n_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {n_bytes}")
    if n_bytes == 0:
        return 0
    return -(-n_bytes // BLOCK_SIZE)
