"""Deferred-time service frames: the overlapped-operation time context.

Historically every modelled delay — a disk reference, an RPC hop, a
port transfer — advanced the one shared
:class:`~repro.common.clock.SimClock` inline, which serializes the
whole simulated world: two operations on two different disks cost the
*sum* of their service times instead of the max.

A :class:`ServiceFrame` is the deferred-time context one overlapped
operation runs inside.  While a frame is open, components charge their
delays to the frame's *cursor* (via :func:`charge_elapsed` or a
disk's :class:`~repro.simdisk.timeline.DiskTimeline`) instead of the
global clock.  On exit the cursor is the operation's completion time;
the caller (a request pipeline or the cluster's concurrent driver)
schedules the completion on the event loop, and the loop advances the
clock event-to-event.  With no frame open, charging falls back to
inline clock advancement — bit-identical to the historical blocking
semantics, which is what keeps every sequential test and benchmark
byte-stable.

Frames nest (the innermost wins) and are keyed by clock instance, so
independent simulated systems in one process never share a frame
stack.  :class:`FrameFork` expresses fan-out *within* an operation —
e.g. a replicated write updating all replicas in parallel: branches
replay from the fork point and the join advances the cursor to the
slowest branch.

Everything here is deterministic: time is integer microseconds, state
is explicit, and nothing consults wall clock, dict order, or object
identity.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional

from repro.analysis import monitor as _monitor
from repro.common.clock import SimClock

#: Active frame stacks, keyed by ``id(clock)``.  The simulation is
#: single-threaded by construction (DESIGN.md §2), and the context
#: manager below pops eagerly, so entries never outlive their block.
_FRAMES: Dict[int, List["ServiceFrame"]] = {}


class ServiceFrame:
    """Deferred-time context for one overlapped operation.

    The frame's ``cursor_us`` starts at the global now and advances by
    every charge the operation performs, sequencing the operation's own
    delays while leaving the global clock — and therefore every *other*
    operation — untouched.
    """

    __slots__ = ("clock", "cursor_us", "waited_us", "charged_us")

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.cursor_us = clock.now_us
        #: Total time this operation's charges spent queued behind
        #: other operations' reservations (start - cursor, summed).
        self.waited_us = 0
        #: Total service time charged through this frame.
        self.charged_us = 0

    def __repr__(self) -> str:
        return (
            f"ServiceFrame(cursor_us={self.cursor_us}, "
            f"waited_us={self.waited_us}, charged_us={self.charged_us})"
        )


def active_frame(clock: SimClock) -> Optional[ServiceFrame]:
    """The innermost frame open for ``clock``, or None (blocking mode)."""
    stack = _FRAMES.get(id(clock))
    return stack[-1] if stack else None


def frame_now(clock: SimClock) -> int:
    """The operation-local now: frame cursor if one is open, else clock."""
    frame = active_frame(clock)
    return frame.cursor_us if frame is not None else clock.now_us


@contextlib.contextmanager
def service_frame(clock: SimClock) -> Iterator[ServiceFrame]:
    """Open a deferred-time frame: charges inside move the frame cursor.

    On exit the frame's ``cursor_us`` is the operation's completion
    time; the caller (a pipeline or driver) schedules the completion on
    the event loop instead of advancing the clock inline.
    """
    frame = ServiceFrame(clock)
    stack = _FRAMES.setdefault(id(clock), [])
    stack.append(frame)
    try:
        yield frame
    finally:
        stack.pop()
        if not stack:
            del _FRAMES[id(clock)]


def ceil_us(delta_us: float) -> int:
    """Round a delay up to whole microseconds.

    Mirrors :meth:`SimClock.advance_us` so a frame charge and the old
    inline advancement account for identical integer time.
    """
    return int(-(-delta_us // 1))


def charge_elapsed(clock: SimClock, delta_us: float) -> None:
    """Charge a plain (non-disk) delay — RPC latency, port transfer.

    Inside a frame the delay extends the frame cursor; otherwise the
    clock advances inline, exactly as ``clock.advance_us`` always did.
    Components with a busy-until resource of their own (disks) charge
    through their timeline instead.
    """
    frame = active_frame(clock)
    if frame is None:
        clock.advance_us(delta_us)
        return
    charged = ceil_us(delta_us)
    frame.cursor_us += charged
    frame.charged_us += charged


class FrameFork:
    """Fan one frame out into parallel branches, then join at the max.

    With no frame open every branch is a no-op passthrough (the
    operations run sequentially, as blocking mode always did), so
    callers fan out unconditionally::

        fork = FrameFork(clock)
        for replica in replicas:
            with fork.branch():
                replica.write(...)
        fork.join()

    Branches replay from the fork-point cursor; ``join`` advances the
    cursor to the slowest branch.  Per-disk ``busy_until`` ordering
    still applies inside each branch, so two branches on one disk
    serialize while branches on different disks overlap.
    """

    __slots__ = ("frame", "start_us", "end_us", "_branch_tasks")

    def __init__(self, clock: SimClock) -> None:
        self.frame = active_frame(clock)
        self.start_us = self.frame.cursor_us if self.frame is not None else 0
        self.end_us = self.start_us
        self._branch_tasks: List[int] = []

    @contextlib.contextmanager
    def branch(self) -> Iterator[None]:
        if self.frame is None:
            # Passthrough: blocking mode runs branches sequentially, so
            # program order already covers them — no monitor task.
            yield
            return
        self.frame.cursor_us = self.start_us
        mon = _monitor.active()
        tid = mon.open_task("fork.branch") if mon.enabled else 0
        try:
            yield
        finally:
            if mon.enabled:
                mon.close_task()
                self._branch_tasks.append(tid)
            self.end_us = max(self.end_us, self.frame.cursor_us)

    def join(self) -> None:
        if self.frame is not None:
            self.frame.cursor_us = max(self.end_us, self.frame.cursor_us)
            mon = _monitor.active()
            if mon.enabled and self._branch_tasks:
                # The joiner sees every branch's effects; branches stay
                # mutually unordered (that is the fork's whole point).
                mon.rejoin("fork.join", after=tuple(self._branch_tasks))
                self._branch_tasks = []
