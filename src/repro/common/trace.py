"""Cross-layer request tracing in simulated time.

The paper argues its design layer by layer — agent, file service, disk
service, physical disk (Fig. 1) — so understanding one request means
reconstructing the path it took through those layers: which cache
level answered, how many disk references it cost, where its simulated
time went.  A :class:`Tracer` records that path as a tree of
:class:`Span` objects.

Design constraints, in order:

* **deterministic** — span ids are monotonically assigned, timestamps
  come from the shared :class:`~repro.common.clock.SimClock`, and no
  ambient randomness or wall clock is ever consulted, so two identical
  runs produce identical traces;
* **zero-cost when disabled** — every instrumentation point is a
  ``with tracer.span(...)`` block; a disabled tracer returns one
  shared no-op handle and touches nothing else, so the benchmark
  numbers are unaffected by the instrumentation existing;
* **bounded** — completed spans live in a ring buffer
  (:class:`collections.deque` with ``maxlen``), so a long simulation
  cannot grow memory without bound; analysis reads the most recent
  window.

The simulation is single-threaded by construction (DESIGN.md §2), so
the tracer keeps one open-span stack: a span started while another is
open becomes its child, which is exactly the synchronous call
structure agents → file service → disk service → disk has.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.common.clock import SimClock

#: Default ring-buffer capacity (completed spans retained).
DEFAULT_CAPACITY = 4096


@dataclass(slots=True)
class Span:
    """One timed operation inside one layer.

    Attributes:
        span_id: unique per tracer, monotonically increasing.
        parent_id: the enclosing span's id, or None for a root span.
        trace_id: the root span's id — every span of one request
            shares it, which is what makes a trace reconstructible.
        layer: the architectural layer (``file_agent``,
            ``file_service``, ``disk_service``, ``simdisk``, ``rpc``,
            ``transactions``).
        op: the operation (``read``, ``write``, ``commit``, ...).
        start_us / end_us: simulated-clock bounds; ``end_us`` is None
            while the span is still open.
        annotations: facts attached along the way (cache level that
            answered, sector counts, disk-reference deltas).
    """

    span_id: int
    parent_id: Optional[int]
    trace_id: int
    layer: str
    op: str
    start_us: int
    end_us: Optional[int] = None
    annotations: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_us(self) -> int:
        """Simulated microseconds the span covered (0 while open)."""
        if self.end_us is None:
            return 0
        return self.end_us - self.start_us


class _NullSpanHandle:
    """The shared do-nothing handle a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def annotate(self, key: str, value: object) -> None:
        return None

    def annotate_add(self, key: str, amount: int) -> None:
        return None


#: Singleton no-op handle: the entire cost of tracing-while-disabled.
NULL_SPAN = _NullSpanHandle()


class _SpanHandle:
    """Context manager that closes its span at block exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self.span)
        return None

    def annotate(self, key: str, value: object) -> None:
        self.span.annotations[key] = value

    def annotate_add(self, key: str, amount: int) -> None:
        current = self.span.annotations.get(key, 0)
        self.span.annotations[key] = int(current) + amount  # type: ignore[arg-type]


class Tracer:
    """Ring-buffered recorder of cross-layer request spans.

    Args:
        clock: the simulation clock timestamps come from; may be None
            only while the tracer stays disabled.
        capacity: completed spans retained (ring buffer).
        enabled: start recording immediately.
    """

    __slots__ = ("clock", "capacity", "enabled", "_next_span_id", "_open", "_done")

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        *,
        capacity: int = DEFAULT_CAPACITY,
        enabled: bool = False,
    ) -> None:
        if enabled and clock is None:
            raise ValueError("an enabled tracer needs a clock")
        self.clock = clock
        self.capacity = max(1, capacity)
        #: Plain attribute, deliberately not a property: hot paths guard
        #: span construction on it (``if tracer.enabled:``) so disabled
        #: tracing costs one attribute read — no kwargs dict, no call.
        self.enabled = enabled
        self._next_span_id = 0
        self._open: List[Span] = []
        self._done: Deque[Span] = deque(maxlen=self.capacity)

    # ------------------------------------------------------- control

    def enable(self) -> None:
        if self.clock is None:
            raise ValueError("cannot enable a tracer without a clock")
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; open spans still close, new spans are no-ops."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded span (open-span stack included)."""
        self._open.clear()
        self._done.clear()

    # ----------------------------------------------------- recording

    def span(self, layer: str, op: str, **annotations: object):
        """Open a span; use as ``with tracer.span("simdisk", "read"):``.

        The span nests under whatever span is currently open, giving
        the synchronous call tree.  Disabled tracers return the shared
        :data:`NULL_SPAN` handle and allocate nothing.
        """
        if not self.enabled:
            return NULL_SPAN
        assert self.clock is not None  # guaranteed by enable()
        span_id = self._next_span_id
        self._next_span_id += 1
        parent = self._open[-1] if self._open else None
        span = Span(
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=parent.trace_id if parent is not None else span_id,
            layer=layer,
            op=op,
            start_us=self.clock.now_us,
            annotations=dict(annotations),
        )
        self._open.append(span)
        return _SpanHandle(self, span)

    def annotate(self, key: str, value: object) -> None:
        """Attach a fact to the innermost open span (no-op otherwise).

        This is how a lower layer that did not open the span reports
        into it — e.g. the track cache marking the enclosing
        ``disk_service.get`` span hit or miss.
        """
        if self.enabled and self._open:
            self._open[-1].annotations[key] = value

    def annotate_add(self, key: str, amount: int = 1) -> None:
        """Add ``amount`` to a numeric fact on the innermost open span."""
        if self.enabled and self._open:
            annotations = self._open[-1].annotations
            annotations[key] = int(annotations.get(key, 0)) + amount  # type: ignore[arg-type]

    def _finish(self, span: Span) -> None:
        assert self.clock is not None
        span.end_us = self.clock.now_us
        # Close any abandoned children first (exception unwinding skips
        # their __exit__ only if the with-statement was subverted; the
        # stack discipline below keeps the tree consistent regardless).
        while self._open and self._open[-1] is not span:
            orphan = self._open.pop()
            orphan.end_us = self.clock.now_us
            self._done.append(orphan)
        if self._open and self._open[-1] is span:
            self._open.pop()
        self._done.append(span)

    # ------------------------------------------------------ analysis

    def spans(self) -> List[Span]:
        """Completed spans, oldest first (bounded by ``capacity``)."""
        return list(self._done)

    def traces(self) -> Dict[int, List[Span]]:
        """Completed spans grouped by trace id, each group oldest first."""
        grouped: Dict[int, List[Span]] = {}
        for span in self._done:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def trace(self, trace_id: int) -> List[Span]:
        """Every completed span of one trace, oldest first."""
        return [span for span in self._done if span.trace_id == trace_id]

    def roots(self) -> List[Span]:
        """Completed root spans (one per fully recorded request)."""
        return [span for span in self._done if span.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        """Completed direct children of ``span``, oldest first."""
        return [s for s in self._done if s.parent_id == span.span_id]

    def layer_path(self, trace_id: int) -> List[str]:
        """The layers of one trace along one root-to-leaf chain.

        Follows the first child at every level (the request's primary
        path) and reports each distinct layer once, in order — e.g.
        ``["file_agent", "file_service", "disk_service", "simdisk"]``
        for a cold read.
        """
        spans = self.trace(trace_id)
        if not spans:
            return []
        by_parent: Dict[Optional[int], List[Span]] = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        path: List[str] = []
        cursor: Optional[Span] = next(
            (span for span in spans if span.trace_id == span.span_id), spans[0]
        )
        while cursor is not None:
            if not path or path[-1] != cursor.layer:
                path.append(cursor.layer)
            children = by_parent.get(cursor.span_id, [])
            cursor = children[0] if children else None
        return path

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Tracer({state}, {len(self._done)} done, "
            f"{len(self._open)} open, capacity={self.capacity})"
        )


#: Shared disabled tracer components default to when none is wired in.
#: Never enable this instance — create a real Tracer with a clock.
NULL_TRACER = Tracer()
