"""Simulated time.

Performance in this reproduction is measured in *simulated
microseconds*: every disk access advances the clock by its modelled
service time, every message by its latency.  A single :class:`SimClock`
is shared by all components of one simulated system, which makes runs
deterministic and lets benchmarks report times that depend only on the
access pattern, not on the host machine.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock, in microseconds."""

    __slots__ = ("_now_us",)

    def __init__(self, start_us: int = 0) -> None:
        if start_us < 0:
            raise ValueError("clock cannot start before time zero")
        self._now_us = int(start_us)

    @property
    def now_us(self) -> int:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_us / 1000.0

    def advance_us(self, delta_us: float) -> int:
        """Advance the clock by ``delta_us`` microseconds; returns the new time.

        Fractional service times are accumulated by rounding up so that
        no modelled cost is ever lost to truncation.
        """
        if delta_us < 0:
            raise ValueError(f"time cannot move backwards (delta={delta_us})")
        self._now_us += int(-(-delta_us // 1))
        return self._now_us

    def advance_to(self, when_us: int) -> int:
        """Advance the clock to an absolute time; no-op if already past it."""
        if when_us > self._now_us:
            self._now_us = int(when_us)
        return self._now_us

    def __repr__(self) -> str:
        return f"SimClock(now_us={self._now_us})"
