"""Exception hierarchy of the RHODOS distributed file facility.

Every layer raises errors rooted at :class:`RhodosError` so callers can
distinguish facility failures from programming errors.  The hierarchy
mirrors the service layering of the paper: disk service, file service,
naming service, transaction service, replication service, and the RPC
substrate each own a branch.
"""

from __future__ import annotations


class RhodosError(Exception):
    """Base class for every error raised by the file facility."""


# ---------------------------------------------------------------- disk


class DiskError(RhodosError):
    """Base class for disk-service and simulated-disk failures."""


class DiskFullError(DiskError):
    """No extent of the requested size (or shape) can be allocated."""


class BadAddressError(DiskError):
    """An address or extent lies outside the disk, or is malformed."""


class MediaError(DiskError):
    """The physical medium failed silently: a latent sector error or
    detected at-rest corruption.

    Distinct from :class:`DiskCrashedError` (the whole drive stopped):
    a media error is localised — the rest of the disk keeps serving —
    and the repair story is redundancy (the stable-storage mirror or a
    replica), not restart.
    """


class BadSectorError(MediaError):
    """A sector is unreadable (injected media failure)."""


class ChecksumError(MediaError):
    """Stored data failed its fragment checksum on read.

    Raised by the disk server *instead of returning the corrupt bytes*
    — no caller, and no cache, ever sees data whose CRC disagrees with
    the recorded one.
    """


class SectorAlignmentError(DiskError):
    """A write payload is not a whole number of sectors.

    Raised *before* any byte reaches disk or cache: a silently
    truncated tail would leave a stale cached suffix behind.
    """


class DiskCrashedError(DiskError):
    """The disk (or its server) has crashed and is not serving requests."""


class StableKeyError(DiskError, KeyError):
    """No stable-storage record exists for the requested key.

    Also a :class:`KeyError` so mapping-style callers (``except
    KeyError``) keep working while the error stays classifiable inside
    the facility taxonomy.
    """


# ---------------------------------------------------------------- file


class FileServiceError(RhodosError):
    """Base class for basic-file-service failures."""


class FileNotFoundError_(FileServiceError):
    """No file with the given system name exists.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class FileExistsError_(FileServiceError):
    """Creation was requested for a name that already designates a file."""


class BadDescriptorError(FileServiceError):
    """An object descriptor does not designate an open file or device."""


class FileSizeError(FileServiceError):
    """An operation would exceed representable file size or a bad offset."""


# -------------------------------------------------------------- naming


class NamingError(RhodosError):
    """Base class for naming-service failures."""


class NameNotFoundError(NamingError):
    """An attributed name resolves to no system name."""


class NameExistsError(NamingError):
    """An attributed name is already bound."""


class WrongShardError(NamingError):
    """The addressed shard does not own the name's hash slot.

    Raised by a shard server when a request arrives under a stale
    shard map — after a rebalance moved the slot, or before a router
    learned of one.  Carries the server's current map epoch so the
    router knows to re-fetch before retrying.
    """

    def __init__(self, message: str, *, epoch: int, slot: int) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.slot = slot


class ShardDownError(NamingError):
    """A shard server is crashed and cannot serve the request.

    The in-process analogue of an RPC timeout against a dead endpoint:
    routers treat both identically (fail reads over to the replica
    peer, surface writes as unavailability).
    """


# -------------------------------------------------------- transactions


class TransactionError(RhodosError):
    """Base class for transaction-service failures."""


class TransactionAbortedError(TransactionError):
    """The transaction was aborted (explicitly, or by the service)."""

    def __init__(self, message: str, *, reason: str = "aborted") -> None:
        super().__init__(message)
        self.reason = reason


class LockTimeoutError(TransactionAbortedError):
    """A lock outlived its N*LT invulnerability budget; holder aborted."""

    def __init__(self, message: str) -> None:
        super().__init__(message, reason="lock-timeout")


class InvalidTransactionStateError(TransactionError):
    """An operation is illegal in the transaction's current phase."""


class SerializabilityError(TransactionError):
    """An action would violate two-phase locking (e.g. lock after unlock)."""


# --------------------------------------------------------- replication


class ReplicationError(RhodosError):
    """Base class for replication-service failures."""


# ----------------------------------------------------------------- rpc


class RpcError(RhodosError):
    """Base class for message-transport failures."""


class RpcTimeoutError(RpcError):
    """A request exhausted its retransmission budget without a reply."""


class CircuitOpenError(RpcTimeoutError):
    """The destination's circuit breaker is open: the call failed fast.

    A :class:`RpcTimeoutError` subclass so callers that treat timeouts
    as "server unreachable" need no new handling — the breaker merely
    delivers the same verdict without spending the attempt budget.
    """


# ------------------------------------------------------------- process


class ProcessError(RhodosError):
    """Illegal process operation (e.g. process_twin with live transactions)."""
