"""Counter registry used throughout the facility.

The paper's performance argument is counted in *disk references*,
*messages*, and *cache hits*, not wall-clock seconds.  Every component
therefore increments named counters on a shared :class:`Metrics`
instance; benchmarks snapshot and diff them to produce the tables in
EXPERIMENTS.md.

Beyond plain counters the registry holds two further instrument kinds,
both fed exclusively from *simulated* time and therefore fully
deterministic:

* **histograms** — distributions of observed values (typically
  per-operation simulated-microsecond durations recorded through
  :meth:`Metrics.observe` or the :meth:`Metrics.timer` context
  manager); quantiles are computed by the deterministic nearest-rank
  rule, so two identically seeded runs report byte-identical p50/p95;
* **gauges** — last-value-wins level measurements
  (:meth:`Metrics.gauge`), e.g. current cached-sector counts.

All instrument names follow the same ``layer.noun_verb`` dotted
grammar the ``metrics-naming`` lint rule enforces.
"""

from __future__ import annotations

import contextlib
from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Mapping, Optional

if TYPE_CHECKING:
    from repro.common.clock import SimClock

#: Percentiles every histogram summary reports, in order.
HISTOGRAM_PERCENTILES = (50, 95)


def prefix_matches(name: str, prefix: str) -> bool:
    """Dot-segment-aware prefix match.

    ``"disk.1"`` matches ``disk.1`` and ``disk.1.*`` but **not**
    ``disk.10.*`` (raw ``str.startswith`` would).  A prefix ending in
    a dot matches any name under it, preserving the established
    ``total("disk.")`` idiom.
    """
    if prefix.endswith("."):
        return name.startswith(prefix)
    return name == prefix or name.startswith(prefix + ".")


def _nearest_rank(ordered: List[int], percentile: int) -> int:
    """Nearest-rank percentile of a sorted, non-empty sample list.

    Integer arithmetic only (``rank = ceil(p*n/100)``), so the result
    never depends on floating-point rounding.
    """
    rank = max(1, -(-percentile * len(ordered) // 100))
    return ordered[min(rank, len(ordered)) - 1]


class Metrics:
    """A hierarchic bag of named integer counters, histograms and gauges.

    Instrument names are dotted paths, e.g. ``disk.0.reads`` or
    ``file_agent.cache.hits``.  Components only ever *add*/*observe*;
    analysis code reads, snapshots and diffs.
    """

    #: When a :meth:`tracking` block is active, every Metrics instance
    #: constructed registers itself here so harnesses (the bench
    #: runner) can aggregate registries benchmarks build internally.
    _live: Optional[List["Metrics"]] = None

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._histograms: Dict[str, List[int]] = defaultdict(list)
        self._gauges: Dict[str, int] = {}
        if Metrics._live is not None:
            Metrics._live.append(self)

    @classmethod
    @contextlib.contextmanager
    def tracking(cls) -> Iterator[List["Metrics"]]:
        """Collect every Metrics instance constructed inside the block.

        Used by ``repro.tools.bench`` to aggregate the registries that
        benchmark helpers build internally.  Nesting restores the outer
        collector on exit.
        """
        previous, collected = cls._live, []
        cls._live = collected
        try:
            yield collected
        finally:
            cls._live = previous

    # ------------------------------------------------------- counters

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (may be negative)."""
        self._counters[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def total(self, prefix: str) -> int:
        """Sum of all counters under dotted prefix ``prefix``.

        Matching is dot-segment aware: ``total("disk.1")`` covers
        ``disk.1`` and ``disk.1.*`` but never ``disk.10.*``.
        """
        return sum(
            value
            for name, value in self._counters.items()
            if prefix_matches(name, prefix)
        )

    def snapshot(self, prefixes: Iterable[str] | None = None) -> Dict[str, int]:
        """A copy of the counters, optionally restricted to ``prefixes``.

        Prefixes are matched dot-segment aware, like :meth:`total`.
        """
        if prefixes is None:
            return dict(self._counters)
        wanted = tuple(prefixes)
        return {
            name: value
            for name, value in self._counters.items()
            if any(prefix_matches(name, prefix) for prefix in wanted)
        }

    def diff(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Counters that changed since ``before`` (a prior snapshot)."""
        changed: Dict[str, int] = {}
        for name, value in self._counters.items():
            delta = value - before.get(name, 0)
            if delta:
                changed[name] = delta
        return changed

    # ----------------------------------------------------- histograms

    def observe(self, name: str, value: int) -> None:
        """Record one sample into histogram ``name``.

        Values are integers by convention (simulated microseconds,
        sector counts); floats are truncated toward zero to keep
        summaries platform-independent.
        """
        self._histograms[name].append(int(value))

    @contextlib.contextmanager
    def timer(self, name: str, clock: "SimClock") -> Iterator[None]:
        """Observe the simulated time a ``with`` block spends.

        The elapsed ``clock`` microseconds are recorded into histogram
        ``name`` on exit — including exits by exception, so failed
        operations still account for the time they consumed.  Inside a
        deferred-time frame (:mod:`repro.common.frames`) the frame
        cursor is measured instead, so overlapped operations record
        their modelled duration rather than zero.
        """
        from repro.common.frames import frame_now

        started = frame_now(clock)
        try:
            yield
        finally:
            self._histograms[name].append(frame_now(clock) - started)

    def histogram(self, name: str) -> Dict[str, int]:
        """Deterministic summary of histogram ``name``.

        Returns ``{count, min, max, sum, p50, p95}`` (all zero for an
        empty or unknown histogram).  Quantiles use the nearest-rank
        rule over the sorted samples, so identical runs produce
        identical summaries.
        """
        samples = self._histograms.get(name)
        if not samples:
            return {"count": 0, "min": 0, "max": 0, "sum": 0, "p50": 0, "p95": 0}
        ordered = sorted(samples)
        summary = {
            "count": len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "sum": sum(ordered),
        }
        for percentile in HISTOGRAM_PERCENTILES:
            summary[f"p{percentile}"] = _nearest_rank(ordered, percentile)
        return summary

    def histogram_names(self) -> List[str]:
        """Names of every histogram with at least one sample, sorted."""
        return sorted(name for name, samples in self._histograms.items() if samples)

    def histogram_samples(self, name: str) -> List[int]:
        """A copy of the raw samples of histogram ``name`` (merge-friendly)."""
        return list(self._histograms.get(name, ()))

    # --------------------------------------------------------- gauges

    def gauge(self, name: str, value: int) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = int(value)

    def get_gauge(self, name: str) -> int:
        """Current value of gauge ``name`` (0 if never set)."""
        return self._gauges.get(name, 0)

    def gauges(self) -> Dict[str, int]:
        """A copy of every gauge."""
        return dict(self._gauges)

    # ------------------------------------------------------ lifecycle

    def reset(self) -> None:
        """Zero every counter, histogram and gauge (between bench runs)."""
        self._counters.clear()
        self._histograms.clear()
        self._gauges.clear()

    def __repr__(self) -> str:
        return (
            f"Metrics({len(self._counters)} counters, "
            f"{len(self._histograms)} histograms, {len(self._gauges)} gauges)"
        )
