"""Counter registry used throughout the facility.

The paper's performance argument is counted in *disk references*,
*messages*, and *cache hits*, not wall-clock seconds.  Every component
therefore increments named counters on a shared :class:`Metrics`
instance; benchmarks snapshot and diff them to produce the tables in
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping


class Metrics:
    """A hierarchic bag of named integer counters.

    Counter names are dotted paths, e.g. ``disk.0.reads`` or
    ``file_agent.cache.hits``.  Components only ever *add*; analysis
    code reads, snapshots and diffs.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (may be negative)."""
        self._counters[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def total(self, prefix: str) -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(
            value for name, value in self._counters.items() if name.startswith(prefix)
        )

    def snapshot(self, prefixes: Iterable[str] | None = None) -> Dict[str, int]:
        """A copy of the counters, optionally restricted to ``prefixes``."""
        if prefixes is None:
            return dict(self._counters)
        wanted = tuple(prefixes)
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(wanted)
        }

    def diff(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Counters that changed since ``before`` (a prior snapshot)."""
        changed: Dict[str, int] = {}
        for name, value in self._counters.items():
            delta = value - before.get(name, 0)
            if delta:
                changed[name] = delta
        return changed

    def reset(self) -> None:
        """Zero every counter.  Benchmarks call this between runs."""
        self._counters.clear()

    def __repr__(self) -> str:
        return f"Metrics({len(self._counters)} counters)"
