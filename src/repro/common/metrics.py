"""Counter registry used throughout the facility.

The paper's performance argument is counted in *disk references*,
*messages*, and *cache hits*, not wall-clock seconds.  Every component
therefore increments named counters on a shared :class:`Metrics`
instance; benchmarks snapshot and diff them to produce the tables in
EXPERIMENTS.md.

Beyond plain counters the registry holds two further instrument kinds,
both fed exclusively from *simulated* time and therefore fully
deterministic:

* **histograms** — distributions of observed values (typically
  per-operation simulated-microsecond durations recorded through
  :meth:`Metrics.observe` or the :meth:`Metrics.timer` context
  manager); quantiles are computed by the deterministic nearest-rank
  rule, so two identically seeded runs report byte-identical p50/p95;
* **gauges** — last-value-wins level measurements
  (:meth:`Metrics.gauge`), e.g. current cached-sector counts.

All instrument names follow the same ``layer.noun_verb`` dotted
grammar the ``metrics-naming`` lint rule enforces.
"""

from __future__ import annotations

import contextlib
from collections import defaultdict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
)

if TYPE_CHECKING:
    from repro.common.clock import SimClock

#: Percentiles every histogram summary reports, in order.
HISTOGRAM_PERCENTILES = (50, 95)


def prefix_matches(name: str, prefix: str) -> bool:
    """Dot-segment-aware prefix match.

    ``"disk.1"`` matches ``disk.1`` and ``disk.1.*`` but **not**
    ``disk.10.*`` (raw ``str.startswith`` would).  A prefix ending in
    a dot matches any name under it, preserving the established
    ``total("disk.")`` idiom.
    """
    if prefix.endswith("."):
        return name.startswith(prefix)
    return name == prefix or name.startswith(prefix + ".")


def _nearest_rank(ordered: List[int], percentile: int) -> int:
    """Nearest-rank percentile of a sorted, non-empty sample list.

    Integer arithmetic only (``rank = ceil(p*n/100)``), so the result
    never depends on floating-point rounding.
    """
    rank = max(1, -(-percentile * len(ordered) // 100))
    return ordered[min(rank, len(ordered)) - 1]


class Counter:
    """Pre-bound handle to one counter: the name is resolved once.

    Hot paths (a simulated disk charging every reference) used to build
    an f-string metric name per call; a handle created at construction
    time keeps the hot path to one dictionary update with a cached
    string hash.  The handle writes into the registry's own counter
    table, so every read path (:meth:`Metrics.get`, :meth:`Metrics.total`,
    :meth:`Metrics.snapshot`, :meth:`Metrics.diff`, :meth:`Metrics.reset`)
    observes handle increments exactly as if :meth:`Metrics.add` had
    been called with the same name.
    """

    __slots__ = ("name", "_counters")

    def __init__(self, name: str, counters: Dict[str, int]) -> None:
        self.name = name
        self._counters = counters

    def add(self, amount: int = 1) -> None:
        """Increment the bound counter by ``amount`` (may be negative)."""
        self._counters[self.name] += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r})"


class HistogramHandle:
    """Pre-bound handle recording samples into one histogram."""

    __slots__ = ("name", "_histograms")

    def __init__(self, name: str, histograms: Dict[str, List[int]]) -> None:
        self.name = name
        self._histograms = histograms

    def observe(self, value: int) -> None:
        """Record one sample (floats truncate toward zero, as observe)."""
        self._histograms[self.name].append(int(value))

    def extend(self, values: Iterable[int]) -> None:
        """Record many samples at once, in order.

        Values must already be integers — this is the bulk drain used
        by deferred-accounting flushes, which only ever batch values
        :meth:`observe` would have recorded one at a time.
        """
        self._histograms[self.name].extend(values)

    def __repr__(self) -> str:
        return f"HistogramHandle({self.name!r})"


class Gauge:
    """Pre-bound handle setting one gauge (last write wins)."""

    __slots__ = ("name", "_gauges")

    def __init__(self, name: str, gauges: Dict[str, int]) -> None:
        self.name = name
        self._gauges = gauges

    def set(self, value: int) -> None:
        """Set the bound gauge to ``value``."""
        self._gauges[self.name] = int(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r})"


class Metrics:
    """A hierarchic bag of named integer counters, histograms and gauges.

    Instrument names are dotted paths, e.g. ``disk.0.reads`` or
    ``file_agent.cache.hits``.  Components only ever *add*/*observe*;
    analysis code reads, snapshots and diffs.
    """

    #: When a :meth:`tracking` block is active, every Metrics instance
    #: constructed registers itself here so harnesses (the bench
    #: runner) can aggregate registries benchmarks build internally.
    _live: Optional[List["Metrics"]] = None

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._histograms: Dict[str, List[int]] = defaultdict(list)
        self._gauges: Dict[str, int] = {}
        # Histogram summaries keyed by name -> (sample count, summary).
        # Samples only ever grow between resets, so the count is a
        # complete staleness check even for handle-recorded samples.
        self._summaries: Dict[str, tuple[int, Dict[str, int]]] = {}
        # Deferred-accounting drains (see register_flush): every read
        # entry point runs these before touching the tables.
        self._flush_hooks: List[Callable[[], None]] = []
        if Metrics._live is not None:
            Metrics._live.append(self)

    @classmethod
    @contextlib.contextmanager
    def tracking(cls) -> Iterator[List["Metrics"]]:
        """Collect every Metrics instance constructed inside the block.

        Used by ``repro.tools.bench`` to aggregate the registries that
        benchmark helpers build internally.  Nesting restores the outer
        collector on exit.
        """
        previous, collected = cls._live, []
        cls._live = collected
        try:
            yield collected
        finally:
            cls._live = previous

    # -------------------------------------------------- deferred flush

    def register_flush(self, hook: Callable[[], None]) -> None:
        """Register a deferred-accounting drain to run before any read.

        Hot components (the simulated disk charging every reference)
        batch their per-operation updates into plain attributes and
        register a hook that drains the batch into the tables.  Every
        read entry point (:meth:`get`, :meth:`snapshot`,
        :meth:`histogram`, ...) calls :meth:`flush` first, so observers
        see the registry exactly as if each update had been applied
        immediately — same counter values, same per-name histogram
        sample order, same last-write-wins gauge values.  Hooks must be
        idempotent and cheap when their batch is empty.
        """
        self._flush_hooks.append(hook)

    def flush(self) -> None:
        """Drain every registered deferred-accounting batch now."""
        for hook in self._flush_hooks:
            hook()

    # -------------------------------------------------------- handles

    def counter(self, name: str) -> Counter:
        """A pre-bound :class:`Counter` handle for ``name``.

        Resolve the name once (typically at component construction) and
        call ``handle.add(...)`` on the hot path; behaviour is identical
        to :meth:`add` with the same name, minus the per-call string
        formatting.  Prefix scans (:meth:`total`, :meth:`snapshot`) stay
        lazy — handle increments cost one table update and nothing else
        until an analysis read actually asks.
        """
        return Counter(name, self._counters)

    def histogram_handle(self, name: str) -> HistogramHandle:
        """A pre-bound :class:`HistogramHandle` for ``name`` (see counter)."""
        return HistogramHandle(name, self._histograms)

    def gauge_handle(self, name: str) -> Gauge:
        """A pre-bound :class:`Gauge` handle for ``name`` (see counter)."""
        return Gauge(name, self._gauges)

    # ------------------------------------------------------- counters

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (may be negative)."""
        self._counters[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        self.flush()
        return self._counters.get(name, 0)

    def total(self, prefix: str) -> int:
        """Sum of all counters under dotted prefix ``prefix``.

        Matching is dot-segment aware: ``total("disk.1")`` covers
        ``disk.1`` and ``disk.1.*`` but never ``disk.10.*``.
        """
        self.flush()
        return sum(
            value
            for name, value in self._counters.items()
            if prefix_matches(name, prefix)
        )

    def snapshot(self, prefixes: Iterable[str] | None = None) -> Dict[str, int]:
        """A copy of the counters, optionally restricted to ``prefixes``.

        Prefixes are matched dot-segment aware, like :meth:`total`.
        """
        self.flush()
        if prefixes is None:
            return dict(self._counters)
        wanted = tuple(prefixes)
        return {
            name: value
            for name, value in self._counters.items()
            if any(prefix_matches(name, prefix) for prefix in wanted)
        }

    def diff(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Counters that changed since ``before`` (a prior snapshot)."""
        self.flush()
        changed: Dict[str, int] = {}
        for name, value in self._counters.items():
            delta = value - before.get(name, 0)
            if delta:
                changed[name] = delta
        return changed

    # ----------------------------------------------------- histograms

    def observe(self, name: str, value: int) -> None:
        """Record one sample into histogram ``name``.

        Values are integers by convention (simulated microseconds,
        sector counts); floats are truncated toward zero to keep
        summaries platform-independent.
        """
        self._histograms[name].append(int(value))

    @contextlib.contextmanager
    def timer(self, name: str, clock: "SimClock") -> Iterator[None]:
        """Observe the simulated time a ``with`` block spends.

        The elapsed ``clock`` microseconds are recorded into histogram
        ``name`` on exit — including exits by exception, so failed
        operations still account for the time they consumed.  Inside a
        deferred-time frame (:mod:`repro.common.frames`) the frame
        cursor is measured instead, so overlapped operations record
        their modelled duration rather than zero.
        """
        from repro.common.frames import frame_now

        started = frame_now(clock)
        try:
            yield
        finally:
            self._histograms[name].append(frame_now(clock) - started)

    def histogram(self, name: str) -> Dict[str, int]:
        """Deterministic summary of histogram ``name``.

        Returns ``{count, min, max, sum, p50, p95}`` (all zero for an
        empty or unknown histogram).  Quantiles use the nearest-rank
        rule over the sorted samples, so identical runs produce
        identical summaries.

        Summaries are cached per sample count: repeated calls without
        new samples reuse the computed summary instead of re-sorting
        the full sample list (samples are append-only between resets,
        so an unchanged count proves the summary is still current).
        """
        self.flush()
        samples = self._histograms.get(name)
        if not samples:
            return {"count": 0, "min": 0, "max": 0, "sum": 0, "p50": 0, "p95": 0}
        cached = self._summaries.get(name)
        if cached is not None and cached[0] == len(samples):
            return dict(cached[1])
        ordered = sorted(samples)
        summary = {
            "count": len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "sum": sum(ordered),
        }
        for percentile in HISTOGRAM_PERCENTILES:
            summary[f"p{percentile}"] = _nearest_rank(ordered, percentile)
        self._summaries[name] = (len(ordered), summary)
        return dict(summary)

    def histogram_names(self) -> List[str]:
        """Names of every histogram with at least one sample, sorted."""
        self.flush()
        return sorted(name for name, samples in self._histograms.items() if samples)

    def histogram_samples(self, name: str) -> List[int]:
        """A copy of the raw samples of histogram ``name`` (merge-friendly)."""
        self.flush()
        return list(self._histograms.get(name, ()))

    # --------------------------------------------------------- gauges

    def gauge(self, name: str, value: int) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = int(value)

    def get_gauge(self, name: str) -> int:
        """Current value of gauge ``name`` (0 if never set)."""
        self.flush()
        return self._gauges.get(name, 0)

    def gauges(self) -> Dict[str, int]:
        """A copy of every gauge."""
        self.flush()
        return dict(self._gauges)

    # ------------------------------------------------------ lifecycle

    def reset(self) -> None:
        """Zero every counter, histogram and gauge (between bench runs).

        Tables are cleared in place, so pre-bound handles created before
        the reset keep recording into this registry afterwards.
        Deferred batches are drained first, so nothing recorded before
        the reset can leak into the epoch after it.
        """
        self.flush()
        self._counters.clear()
        self._histograms.clear()
        self._gauges.clear()
        self._summaries.clear()

    def __repr__(self) -> str:
        return (
            f"Metrics({len(self._counters)} counters, "
            f"{len(self._histograms)} histograms, {len(self._gauges)} gauges)"
        )
