"""Identifier types: system names, object descriptors, transaction descriptors.

The paper (section 3) distinguishes *attributed names* — user-visible,
resolved by the naming service — from *system names*, by which the file
agent, transaction agent and file service always refer to a file.  A
system name here identifies the volume holding the file, the fragment
address of its file index table, and a generation number that changes
when the address is reused, so stale names are detected.

Object descriptors are the integers agents hand back from ``open``:
device descriptors are below 100 000 and file/transaction descriptors
above it, which is how RHODOS implements I/O redirection (section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

#: Object descriptors below this value designate devices; at or above
#: it they designate files (basic or transactional).  The paper picks
#: 100 000.
DEVICE_DESCRIPTOR_LIMIT = 100_000

#: Descriptors handed to a process that redirects its standard streams
#: (paper section 3): stdout -> 100001, stdin -> 100002, stderr -> 100003.
REDIRECTED_STDOUT = 100_001
REDIRECTED_STDIN = 100_002
REDIRECTED_STDERR = 100_003


@dataclass(frozen=True, slots=True)
class SystemName:
    """The internal, location-bearing name of a file.

    Attributes:
        volume_id: id of the volume (disk) whose file service owns the file.
        fit_address: fragment address of the file index table on that volume.
        generation: reuse counter for ``fit_address``; a mismatch means the
            file the name referred to has been deleted and the fragment
            recycled.
    """

    volume_id: int
    fit_address: int
    generation: int

    def __str__(self) -> str:
        return f"sys:{self.volume_id}:{self.fit_address}:{self.generation}"


# Object and transaction descriptors are plain ints at runtime; the
# aliases document intent in signatures.
ObjectDescriptor = int
TransactionDescriptor = int


def monotonic_id_factory(start: int = 1) -> Callable[[], int]:
    """Return a callable producing 1, 2, 3, ... (or from ``start``).

    Used wherever a component needs locally unique, deterministic ids:
    request ids, transaction descriptors, generation numbers.
    """
    counter: Iterator[int] = iter(range(start, 2**63))

    def next_id() -> int:
        return next(counter)

    return next_id


def descriptor_is_device(descriptor: int) -> bool:
    """True if an object descriptor designates a device (paper: < 100 000)."""
    return 0 <= descriptor < DEVICE_DESCRIPTOR_LIMIT


def descriptor_is_file(descriptor: int) -> bool:
    """True if an object descriptor designates a file (paper: > 100 000)."""
    return descriptor > DEVICE_DESCRIPTOR_LIMIT
