"""The simulated message bus.

Delivery is synchronous in simulated time: sending charges the latency
model, faults are drawn from a seeded RNG, and the destination handler
runs inline.  That keeps the whole system single-threaded and
deterministic while preserving exactly the semantics the paper's
idempotency argument depends on: a request may be lost (never executed),
executed once, or executed more than once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.common.clock import SimClock
from repro.common.errors import RpcError
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER, Tracer

#: A handler takes (op, payload) and returns the reply payload.
Handler = Callable[[str, Any], Any]


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Fault rates and latency of one bus.

    Attributes:
        latency_us: one-way message latency.
        request_loss: probability a request vanishes in transit.
        reply_loss: probability a reply vanishes (the server *did*
            execute — the dangerous case for non-idempotent designs).
        duplication: probability a delivered request is executed twice.
    """

    latency_us: int = 500
    request_loss: float = 0.0
    reply_loss: float = 0.0
    duplication: float = 0.0

    def __post_init__(self) -> None:
        for rate in (self.request_loss, self.reply_loss, self.duplication):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"fault rate {rate} outside [0, 1)")
        if self.latency_us < 0:
            raise ValueError("latency cannot be negative")

    @classmethod
    def reliable(cls, latency_us: int = 500) -> "FaultProfile":
        return cls(latency_us=latency_us)


class MessageBus:
    """Registry of addressable endpoints plus the fault model."""

    def __init__(
        self,
        clock: SimClock,
        metrics: Metrics,
        profile: FaultProfile | None = None,
        *,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.profile = profile or FaultProfile.reliable()
        #: Surfaced in timeout messages so a failing run names the exact
        #: fault schedule that reproduces it.
        self.seed = seed
        self._rng = random.Random(seed)
        self._endpoints: Dict[str, Handler] = {}
        self._down: set[str] = set()

    # ------------------------------------------------------ registry

    def register(self, address: str, handler: Handler) -> None:
        if address in self._endpoints:
            raise RpcError(f"address {address!r} already registered")
        self._endpoints[address] = handler

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)
        self._down.discard(address)

    def set_down(self, address: str, down: bool = True) -> None:
        """Mark an endpoint crashed: its requests are silently lost."""
        if down:
            self._down.add(address)
        else:
            self._down.discard(address)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    # ------------------------------------------------------ transport

    def transmit(self, dst: str, op: str, payload: Any) -> tuple[bool, Any]:
        """One send attempt: returns ``(reply_arrived, reply)``.

        Charges one-way latency for the request; if the request is
        delivered, the handler runs (possibly twice under duplication)
        and the reply charges latency back — unless the reply itself is
        lost, in which case the caller sees a timeout *after the server
        already executed*.
        """
        handler = self._endpoints.get(dst)
        if handler is None:
            raise RpcError(f"no endpoint at {dst!r}")
        with self.tracer.span(
            "rpc", "transmit", dst=dst, rpc_op=op
        ) as span, self.metrics.timer("rpc.transmit_us", self.clock):
            self.clock.advance_us(self.profile.latency_us)
            self.metrics.add("rpc.messages")
            if dst in self._down or self._chance(self.profile.request_loss):
                self.metrics.add("rpc.requests_lost")
                span.annotate("outcome", "request_lost")
                return False, None
            reply = handler(op, payload)
            self.metrics.add("rpc.executions")
            if self._chance(self.profile.duplication):
                reply = handler(op, payload)
                self.metrics.add("rpc.executions")
                self.metrics.add("rpc.duplicated_executions")
            self.clock.advance_us(self.profile.latency_us)
            if dst in self._down or self._chance(self.profile.reply_loss):
                self.metrics.add("rpc.replies_lost")
                span.annotate("outcome", "reply_lost")
                return False, None
            span.annotate("outcome", "ok")
            return True, reply

    # ------------------------------------------------------ internal

    def _chance(self, rate: float) -> bool:
        return rate > 0.0 and self._rng.random() < rate
