"""The simulated message bus.

Delivery is synchronous in simulated time: sending charges the latency
model, faults are drawn from a seeded RNG, and the destination handler
runs inline.  That keeps the whole system single-threaded and
deterministic while preserving exactly the semantics the paper's
idempotency argument depends on: a request may be lost (never
executed), executed once, executed more than once, or — under
**reorder** injection — executed *late*, after operations that were
issued after it.

Reordering is modelled with a delayed-delivery queue: a request chosen
for reordering is parked instead of delivered (its sender times out and
retransmits), and parked requests are drained — executed, their replies
discarded — immediately *after* the handler of a later transmit runs.
The late execution therefore really does land out of program order,
which is the case positional idempotent operations must absorb
(experiment E12 sweeps it alongside loss and duplication).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.frames import charge_elapsed
from repro.common.errors import RpcError
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER, Tracer

#: A handler takes (op, payload) and returns the reply payload.
Handler = Callable[[str, Any], Any]


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Fault rates and latency of one bus.

    Attributes:
        latency_us: one-way message latency.
        request_loss: probability a request vanishes in transit.
        reply_loss: probability a reply vanishes (the server *did*
            execute — the dangerous case for non-idempotent designs).
        duplication: probability a delivered request is executed twice.
        reorder: probability a request is parked in the delayed-
            delivery queue and executed only after a later transmit's
            handler (the sender sees a timeout and retransmits).
    """

    latency_us: int = 500
    request_loss: float = 0.0
    reply_loss: float = 0.0
    duplication: float = 0.0
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for rate in (
            self.request_loss, self.reply_loss, self.duplication, self.reorder
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"fault rate {rate} outside [0, 1)")
        if self.latency_us < 0:
            raise ValueError("latency cannot be negative")

    @classmethod
    def reliable(cls, latency_us: int = 500) -> "FaultProfile":
        return cls(latency_us=latency_us)


class MessageBus:
    """Registry of addressable endpoints plus the fault model."""

    def __init__(
        self,
        clock: SimClock,
        metrics: Metrics,
        profile: FaultProfile | None = None,
        *,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.profile = profile or FaultProfile.reliable()
        #: Surfaced in timeout messages so a failing run names the exact
        #: fault schedule that reproduces it.
        self.seed = seed
        self._rng = random.Random(seed)
        self._endpoints: Dict[str, Handler] = {}
        self._down: set[str] = set()
        self._delayed: List[Tuple[str, str, Any]] = []

    # ------------------------------------------------------ registry

    def register(self, address: str, handler: Handler) -> None:
        if address in self._endpoints:
            raise RpcError(f"address {address!r} already registered")
        self._endpoints[address] = handler

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)
        self._down.discard(address)

    def set_down(self, address: str, down: bool = True) -> None:
        """Mark an endpoint crashed: its requests are silently lost."""
        if down:
            self._down.add(address)
        else:
            self._down.discard(address)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    # ------------------------------------------------------ transport

    def transmit(self, dst: str, op: str, payload: Any) -> tuple[bool, Any]:
        """One send attempt: returns ``(reply_arrived, reply)``.

        Charges one-way latency for the request; if the request is
        delivered, the handler runs (possibly twice under duplication)
        and the reply charges latency back — unless the reply itself is
        lost, in which case the caller sees a timeout *after the server
        already executed*.  Requests parked for reordering execute
        after a later transmit's handler (see :meth:`drain_delayed`).
        """
        handler = self._endpoints.get(dst)
        if handler is None:
            raise RpcError(f"no endpoint at {dst!r}")
        with self.tracer.span(
            "rpc", "transmit", dst=dst, rpc_op=op
        ) as span, self.metrics.timer("rpc.transmit_us", self.clock):
            charge_elapsed(self.clock, self.profile.latency_us)
            self.metrics.add("rpc.messages")
            if dst in self._down or self._chance(self.profile.request_loss):
                self.metrics.add("rpc.requests_lost")
                span.annotate("outcome", "request_lost")
                return False, None
            if self._chance(self.profile.reorder):
                self._delayed.append((dst, op, payload))
                self.metrics.add("rpc.requests_delayed")
                span.annotate("outcome", "delayed")
                return False, None
            reply = handler(op, payload)
            self.metrics.add("rpc.executions")
            if self._chance(self.profile.duplication):
                reply = handler(op, payload)
                self.metrics.add("rpc.executions")
                self.metrics.add("rpc.duplicated_executions")
            self.drain_delayed()
            charge_elapsed(self.clock, self.profile.latency_us)
            if dst in self._down or self._chance(self.profile.reply_loss):
                self.metrics.add("rpc.replies_lost")
                span.annotate("outcome", "reply_lost")
                return False, None
            span.annotate("outcome", "ok")
            return True, reply

    def drain_delayed(self) -> int:
        """Execute every parked request late; returns how many ran.

        Replies are discarded (their senders gave up long ago).  A
        parked request whose endpoint is down or unregistered by drain
        time is dropped as lost.  Runs automatically after each
        delivered transmit; callers (campaign teardown, tests) may also
        invoke it directly so no delivery stays parked forever.
        """
        drained = 0
        while self._delayed:
            dst, op, payload = self._delayed.pop(0)
            handler = self._endpoints.get(dst)
            if handler is None or dst in self._down:
                self.metrics.add("rpc.requests_lost")
                continue
            handler(op, payload)
            drained += 1
            self.metrics.add("rpc.executions")
            self.metrics.add("rpc.reordered_executions")
        return drained

    def pending_delayed(self) -> int:
        """Requests currently parked in the delayed-delivery queue."""
        return len(self._delayed)

    # ------------------------------------------------------ internal

    def _chance(self, rate: float) -> bool:
        return rate > 0.0 and self._rng.random() < rate
