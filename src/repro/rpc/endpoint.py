"""Request/reply endpoints over the message bus.

:class:`RpcServer` dispatches named operations to registered
functions.  :class:`RpcClient` retransmits on timeout up to a budget —
safe precisely because the operations are idempotent; the bench for
experiment E12 runs this machinery under loss and duplication and
checks the final file state is byte-identical to a fault-free run.

Retransmission can be disciplined further with the policies of
:mod:`repro.rpc.retry`: seeded exponential backoff between attempts
(``rpc.backoff_us`` records every extra wait) and a per-destination
circuit breaker that fails calls fast while a server is known dead
(:class:`~repro.common.errors.CircuitOpenError`).  Both are off by
default, preserving the fixed-interval behaviour the idempotency
benches established.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.common.errors import CircuitOpenError, RpcError, RpcTimeoutError
from repro.common.ids import monotonic_id_factory
from repro.rpc.bus import MessageBus
from repro.rpc.retry import BackoffPolicy, CircuitBreaker


class RpcServer:
    """A named endpoint dispatching ops to handler functions.

    Handlers receive the payload and return the reply payload.
    Exceptions of type :class:`~repro.common.errors.RhodosError` are
    propagated to the caller as part of the reply (errors are answers,
    not transport failures).
    """

    def __init__(self, bus: MessageBus, address: str) -> None:
        self.bus = bus
        self.address = address
        self._ops: Dict[str, Callable[[Any], Any]] = {}
        bus.register(address, self._dispatch)

    def expose(self, op: str, fn: Callable[[Any], Any]) -> None:
        if op in self._ops:
            raise RpcError(f"{self.address}: op {op!r} already exposed")
        self._ops[op] = fn

    def expose_object(self, obj: object, ops: Dict[str, str]) -> None:
        """Expose methods of ``obj``: ``ops`` maps op name -> method name."""
        for op, method_name in ops.items():
            self.expose(op, getattr(obj, method_name))

    def _dispatch(self, op: str, payload: Any) -> Any:
        fn = self._ops.get(op)
        if fn is None:
            raise RpcError(f"{self.address}: unknown op {op!r}")
        try:
            return ("ok", fn(payload))
        except Exception as exc:  # noqa: BLE001 - errors travel as replies
            return ("error", exc)


class RpcClient:
    """Caller side: retransmission with a per-call attempt budget.

    The timeout charged on a lost message models the client waiting out
    its retransmission timer in simulated time.

    Args:
        backoff: optional exponential-backoff policy; its jitter draws
            from a :class:`random.Random` seeded with ``seed``, so two
            identically seeded clients wait identical schedules.
        breaker: optional per-destination circuit breaker.  While a
            destination's circuit is open, :meth:`call` raises
            :class:`~repro.common.errors.CircuitOpenError` immediately
            — no messages, no simulated time spent.  Note that a
            fast-failed call advances *no* clock; a caller polling in a
            loop must advance time itself (real callers do other work).
    """

    def __init__(
        self,
        bus: MessageBus,
        *,
        timeout_us: int = 20_000,
        max_attempts: int = 8,
        backoff: Optional[BackoffPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        self.bus = bus
        self.timeout_us = timeout_us
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.breaker = breaker
        self._rng = random.Random(seed)
        self._next_request_id = monotonic_id_factory()

    def call(self, dst: str, op: str, payload: Any) -> Any:
        """Invoke ``op`` at ``dst``; retransmits until a reply arrives.

        Raises :class:`RpcTimeoutError` after the attempt budget (or
        :class:`CircuitOpenError` as soon as the breaker trips), and
        re-raises any error the remote handler produced.
        """
        self._next_request_id()  # request ids exist for tracing/metrics
        if self.breaker is not None and not self.breaker.allow(dst):
            raise CircuitOpenError(
                f"circuit open for {dst!r} op {op!r}: failing fast until "
                f"{self.breaker.policy.cooldown_us}us cooldown elapses"
            )
        failures = 0
        for attempt in range(self.max_attempts):
            if attempt:
                self.bus.metrics.add("rpc.retransmissions")
            arrived, reply = self.bus.transmit(dst, op, payload)
            if arrived:
                if self.breaker is not None:
                    self.breaker.record_success(dst)
                status, value = reply
                if status == "error":
                    raise value
                return value
            failures += 1
            if self.breaker is not None:
                self.breaker.record_failure(dst)
                if self.breaker.is_open(dst):
                    # The breaker tripped mid-call: stop hammering now;
                    # the remaining attempt budget is the whole saving.
                    raise CircuitOpenError(
                        f"circuit for {dst!r} opened after {failures} "
                        f"consecutive timeouts (op {op!r}, bus fault seed "
                        f"{self.bus.seed})"
                    )
            wait_us = self.timeout_us
            if self.backoff is not None:
                extra_us = self.backoff.delay_us(failures, self._rng)
                self.bus.metrics.observe("rpc.backoff_us", extra_us)
                wait_us += extra_us
            self.bus.clock.advance_us(wait_us)
        raise RpcTimeoutError(
            f"no reply from {dst!r} op {op!r} after {self.max_attempts} "
            f"attempts (bus fault seed {self.bus.seed}, profile "
            f"{self.bus.profile})"
        )
