"""Retry discipline for RPC callers: backoff and circuit breaking.

Plain fixed-interval retransmission is the right model for the paper's
idempotency argument, but it makes a caller hammer a dead server at
full rate for its whole attempt budget — failover latency is then the
*worst case* of the budget, every time.  Two policies fix that, both
deterministic under a seed:

* :class:`BackoffPolicy` — exponential backoff with seeded jitter
  added to the retransmission timeout.  Jitter is subtracted from the
  deterministic delay (never added), so ``max_us`` is a hard bound a
  latency budget can be computed from.
* :class:`BreakerPolicy` / :class:`CircuitBreaker` — a per-destination
  circuit breaker: ``threshold`` consecutive timeouts open the
  circuit, further calls fail fast (no messages, no waiting) until
  ``cooldown_us`` of simulated time has passed, then one half-open
  probe decides between closing the circuit and re-opening it.

Breaker transitions are the RPC layer's failure-detector feed: a
:class:`BreakerListener` (in practice an adapter onto
:class:`~repro.recovery.health.HealthRegistry`) hears every open and
close, which is how "the client gave up on this server" becomes
system-wide health truth without this package importing anything above
:mod:`repro.common`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Protocol

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER, Tracer

#: Circuit states (module constants, not an Enum, so breaker state can
#: be compared cheaply in the transmit hot path).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True, slots=True)
class BackoffPolicy:
    """Exponential backoff parameters (pure values, no runtime state).

    The delay after the ``n``-th consecutive failure is
    ``min(max_us, base_us * multiplier**n)``, reduced by up to
    ``jitter`` (a fraction in [0, 1]) drawn from the caller's seeded
    RNG.  Jitter only ever shrinks the delay: ``max_us`` stays a hard
    upper bound usable in availability budgets.
    """

    base_us: int = 2_000
    multiplier: float = 2.0
    max_us: int = 160_000
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_us < 0 or self.max_us < self.base_us:
            raise ValueError("need 0 <= base_us <= max_us")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter is a fraction in [0, 1]")

    def delay_us(self, failures: int, rng: random.Random) -> int:
        """Backoff to add after ``failures`` consecutive timeouts (>= 1)."""
        exponent = max(0, failures - 1)
        raw = min(float(self.max_us), self.base_us * self.multiplier**exponent)
        if self.jitter:
            raw -= raw * self.jitter * rng.random()
        return int(raw)


@dataclass(frozen=True, slots=True)
class BreakerPolicy:
    """Circuit-breaker parameters (pure values, no runtime state)."""

    threshold: int = 4
    cooldown_us: int = 400_000

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.cooldown_us < 0:
            raise ValueError("cooldown cannot be negative")


class BreakerListener(Protocol):
    """Receives breaker transitions (the failure-detector feed)."""

    def on_breaker_open(self, destination: str) -> None: ...

    def on_breaker_close(self, destination: str) -> None: ...


class _Circuit:
    """Runtime state of one destination's circuit."""

    __slots__ = ("state", "consecutive_failures", "opened_at_us")

    def __init__(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_us = 0


class CircuitBreaker:
    """Per-destination circuit breaker over shared simulated time.

    One instance serves one caller (the simulation is single-threaded,
    so at most one probe is ever in flight: ``allow`` → transmit →
    ``record_success``/``record_failure`` happen back to back).
    """

    def __init__(
        self,
        policy: BreakerPolicy,
        clock: SimClock,
        metrics: Metrics,
        *,
        listener: Optional[BreakerListener] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.policy = policy
        self.clock = clock
        self.metrics = metrics
        self.listener = listener
        self.tracer = tracer or NULL_TRACER
        self._circuits: Dict[str, _Circuit] = {}

    # ------------------------------------------------------- queries

    def state(self, destination: str) -> str:
        return self._circuits[destination].state if destination in self._circuits else CLOSED

    def is_open(self, destination: str) -> bool:
        """True when a call to ``destination`` would be rejected now."""
        circuit = self._circuits.get(destination)
        if circuit is None or circuit.state is not OPEN:
            return False
        return self.clock.now_us < circuit.opened_at_us + self.policy.cooldown_us

    # ----------------------------------------------------- lifecycle

    def allow(self, destination: str) -> bool:
        """Gate one call: False = fail fast without touching the bus."""
        circuit = self._circuits.get(destination)
        if circuit is None or circuit.state == CLOSED:
            return True
        if circuit.state == OPEN:
            if self.clock.now_us < circuit.opened_at_us + self.policy.cooldown_us:
                self.metrics.add("rpc.breaker_rejections")
                return False
            circuit.state = HALF_OPEN
            self.metrics.add("rpc.breaker_probes")
            with self.tracer.span("rpc", "breaker_probe", dst=destination):
                pass
            return True
        # HALF_OPEN with the probe outcome still unrecorded: single-
        # threaded callers never reach this, but fail safe anyway.
        self.metrics.add("rpc.breaker_rejections")
        return False

    def record_success(self, destination: str) -> None:
        circuit = self._circuits.get(destination)
        if circuit is None:
            return
        was_broken = circuit.state != CLOSED
        circuit.state = CLOSED
        circuit.consecutive_failures = 0
        if was_broken:
            self.metrics.add("rpc.breaker_closes")
            with self.tracer.span("rpc", "breaker_close", dst=destination):
                pass
            if self.listener is not None:
                self.listener.on_breaker_close(destination)

    def record_failure(self, destination: str) -> None:
        """One timed-out attempt; may trip the circuit open."""
        circuit = self._circuits.setdefault(destination, _Circuit())
        if circuit.state == HALF_OPEN:
            self._trip(destination, circuit)
            return
        circuit.consecutive_failures += 1
        if circuit.state == CLOSED and (
            circuit.consecutive_failures >= self.policy.threshold
        ):
            self._trip(destination, circuit)

    # ------------------------------------------------------ internal

    def _trip(self, destination: str, circuit: _Circuit) -> None:
        reopened = circuit.state == HALF_OPEN
        circuit.state = OPEN
        circuit.opened_at_us = self.clock.now_us
        circuit.consecutive_failures = 0
        self.metrics.add("rpc.breaker_opens")
        if reopened:
            self.metrics.add("rpc.breaker_reopens")
        with self.tracer.span("rpc", "breaker_open", dst=destination):
            pass
        if self.listener is not None:
            self.listener.on_breaker_open(destination)

    def __repr__(self) -> str:
        open_count = sum(1 for c in self._circuits.values() if c.state != CLOSED)
        return f"CircuitBreaker({len(self._circuits)} circuits, {open_count} broken)"
