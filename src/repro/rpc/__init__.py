"""Client-server message substrate.

RHODOS is message-passing; the paper leans on one property of that
substrate (section 3): "Certain errors caused by computer failures and
communication delays may lead to repeated execution of some
operations.  However, their repetition in RHODOS does not produce any
uncertain effect.  This is because the semantics of the messages
exchanged among the file agent, transaction agent, file service, and
naming service constitute idempotent operations."

This package provides an in-process :class:`MessageBus` with simulated
latency and seeded fault injection — message **loss** (client times out
and retransmits), **duplication** (the server executes the request
twice), and **reordering** (a request is delivered late, after
operations issued after it; see :meth:`MessageBus.drain_delayed`) —
plus request/reply endpoints.  Servers deliberately keep *no* reply
cache: duplicated and reordered requests really are re-executed, and
the experiments show the final state is unaffected because every file
operation is positional, hence idempotent.

On the caller side, :mod:`repro.rpc.retry` adds the retry discipline a
failure-aware deployment needs: seeded exponential backoff between
retransmissions and a per-destination :class:`CircuitBreaker` that
fails fast (:class:`~repro.common.errors.CircuitOpenError`) instead of
hammering a dead server, feeding its open/close transitions to the
failure detector.
"""

from repro.rpc.bus import MessageBus, FaultProfile
from repro.rpc.endpoint import RpcClient, RpcServer
from repro.rpc.retry import (
    BackoffPolicy,
    BreakerPolicy,
    BreakerListener,
    CircuitBreaker,
)

__all__ = [
    "MessageBus",
    "FaultProfile",
    "RpcClient",
    "RpcServer",
    "BackoffPolicy",
    "BreakerPolicy",
    "BreakerListener",
    "CircuitBreaker",
]
