"""Access patterns: what the caching experiments replay.

The cache-level experiment (E5) needs a request stream with temporal
locality — re-reads of a hot working set — because that is what a
cache can exploit; the readahead experiment (E14) needs sequential and
strided streams.
"""

from __future__ import annotations

import enum
import random
from typing import Iterator, List, Sequence, Tuple


class AccessPattern(enum.Enum):
    SEQUENTIAL = "sequential"
    RANDOM = "random"
    STRIDED = "strided"


def offsets(
    pattern: AccessPattern,
    file_size: int,
    request_bytes: int,
    n_requests: int,
    *,
    stride: int = 4,
    seed: int = 0,
) -> Iterator[int]:
    """Request offsets within one file, per the chosen pattern."""
    if file_size < request_bytes:
        raise ValueError("file smaller than one request")
    slots = max(1, file_size // request_bytes)
    rng = random.Random(seed)
    for index in range(n_requests):
        if pattern is AccessPattern.SEQUENTIAL:
            slot = index % slots
        elif pattern is AccessPattern.STRIDED:
            slot = (index * stride) % slots
        else:
            slot = rng.randrange(slots)
        yield slot * request_bytes


def locality_reads(
    population: Sequence[int],
    n_requests: int,
    *,
    hot_fraction: float = 0.2,
    hot_probability: float = 0.8,
    seed: int = 0,
) -> List[int]:
    """Indices into ``population`` with an 80/20-style hot set.

    ``hot_fraction`` of the items receive ``hot_probability`` of the
    accesses — the locality every cache level in the paper's design is
    built to exploit.
    """
    if not population:
        return []
    rng = random.Random(seed)
    n_hot = max(1, int(len(population) * hot_fraction))
    hot = list(range(n_hot))
    cold = list(range(n_hot, len(population))) or hot
    picks = []
    for _ in range(n_requests):
        if rng.random() < hot_probability:
            picks.append(rng.choice(hot))
        else:
            picks.append(rng.choice(cold))
    return picks


def read_plan(
    file_count: int,
    file_size: int,
    request_bytes: int,
    n_requests: int,
    *,
    seed: int = 0,
) -> List[Tuple[int, int]]:
    """(file index, offset) pairs combining locality across files with
    random offsets inside each file."""
    rng = random.Random(seed)
    picks = locality_reads(range(file_count), n_requests, seed=seed)
    slots = max(1, file_size // request_bytes)
    return [(pick, rng.randrange(slots) * request_bytes) for pick in picks]
