"""Workload generators for the experiments.

Seeded, deterministic generators for the access patterns the
benchmarks sweep: file-size distributions, sequential/random read-write
mixes, transactional account transfers, deadlock-prone lock orders,
and hot/cold locality.
"""

from repro.workloads.files import FileSizeDistribution, populate_files
from repro.workloads.access import AccessPattern, locality_reads
from repro.workloads.transactions import (
    transfer_script,
    deadlock_pair_scripts,
    long_transaction_script,
    make_accounts_file,
)

__all__ = [
    "FileSizeDistribution",
    "populate_files",
    "AccessPattern",
    "locality_reads",
    "transfer_script",
    "deadlock_pair_scripts",
    "long_transaction_script",
    "make_accounts_file",
]
