"""File populations: sizes drawn from realistic distributions.

Early-1990s file-system studies (the Sprite trace papers the RHODOS
authors cite) found most files small — well under the 512 KB the FIT's
direct area covers — with a long tail of large files.  A log-normal
distribution reproduces that shape.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.common.ids import SystemName
from repro.file_service.server import FileServer


@dataclass(frozen=True, slots=True)
class FileSizeDistribution:
    """Log-normal file sizes, clamped to [min_bytes, max_bytes]."""

    median_bytes: int = 8 * 1024
    sigma: float = 1.6
    min_bytes: int = 128
    max_bytes: int = 4 * 1024 * 1024

    def sample(self, rng: random.Random) -> int:
        size = int(math.exp(rng.gauss(math.log(self.median_bytes), self.sigma)))
        return max(self.min_bytes, min(self.max_bytes, size))


def deterministic_payload(seed: int, n_bytes: int) -> bytes:
    """Reproducible pseudo-random file content (cheap, no RNG object)."""
    if n_bytes == 0:
        return b""
    unit = (seed % 251 + 1).to_bytes(1, "little")
    pattern = bytes(
        (seed * 2654435761 + index * 40503) % 256 for index in range(256)
    )
    reps = -(-n_bytes // len(pattern))
    return (pattern * reps)[:n_bytes]


def populate_files(
    server: FileServer,
    count: int,
    *,
    distribution: FileSizeDistribution | None = None,
    seed: int = 0,
) -> List[SystemName]:
    """Create ``count`` files with sampled sizes; returns their names."""
    distribution = distribution or FileSizeDistribution()
    rng = random.Random(seed)
    names: List[SystemName] = []
    for index in range(count):
        size = distribution.sample(rng)
        name = server.create()
        server.write(name, 0, deterministic_payload(index, size))
        names.append(name)
    server.flush()
    return names


def file_sizes(server: FileServer, names: List[SystemName]) -> Dict[SystemName, int]:
    return {name: server.get_attribute(name).file_size for name in names}
