"""Transactional client scripts for the concurrency experiments.

Scripts follow the :mod:`repro.simkernel` convention: generator
functions yielding zero-argument thunks, restartable after abort.
They drive the lock-granularity (E7), timeout-deadlock (E8) and
WAL-vs-shadow (E9) experiments.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Generator, List, Tuple

from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.transactions.agent import TransactionAgentHost

#: Fixed-width account record: balance as an 8-byte integer.
ACCOUNT_RECORD = struct.Struct("<q")
ACCOUNT_BYTES = ACCOUNT_RECORD.size

Script = Callable[[], Generator]


def make_accounts_file(
    host: TransactionAgentHost,
    name: AttributedName,
    n_accounts: int,
    *,
    initial_balance: int = 1000,
    locking_level: LockingLevel = LockingLevel.RECORD,
) -> None:
    """Create and populate a bank-accounts file transactionally."""
    tid = host.tbegin()
    descriptor = host.tcreate(tid, name, locking_level=locking_level)
    payload = ACCOUNT_RECORD.pack(initial_balance) * n_accounts
    host.twrite(tid, descriptor, payload)
    host.tend(tid)


def read_balance(data: bytes) -> int:
    return ACCOUNT_RECORD.unpack(data)[0]


def transfer_script(
    host: TransactionAgentHost,
    name: AttributedName,
    source: int,
    target: int,
    amount: int = 1,
) -> Script:
    """Move ``amount`` between two accounts — the canonical transaction.

    Locks ascending account order? No: deliberately in (source, target)
    order, so opposing transfers can deadlock — which is the behaviour
    the timeout policy exists to resolve.
    """

    def script() -> Generator:
        tid = yield lambda: host.tbegin()
        descriptor = yield lambda: host.topen(tid, name)
        raw_source = yield lambda: host.tpread(
            tid, descriptor, ACCOUNT_BYTES, source * ACCOUNT_BYTES, for_update=True
        )
        raw_target = yield lambda: host.tpread(
            tid, descriptor, ACCOUNT_BYTES, target * ACCOUNT_BYTES, for_update=True
        )
        new_source = read_balance(raw_source) - amount
        new_target = read_balance(raw_target) + amount
        yield lambda: host.tpwrite(
            tid, descriptor, ACCOUNT_RECORD.pack(new_source), source * ACCOUNT_BYTES
        )
        yield lambda: host.tpwrite(
            tid, descriptor, ACCOUNT_RECORD.pack(new_target), target * ACCOUNT_BYTES
        )
        yield lambda: host.tend(tid)

    return script


def random_transfer_mix(
    host: TransactionAgentHost,
    name: AttributedName,
    n_accounts: int,
    n_clients: int,
    *,
    hot_accounts: int = 0,
    seed: int = 0,
) -> List[Script]:
    """One transfer script per client over random (optionally hot) pairs."""
    rng = random.Random(seed)
    scripts = []
    pool = hot_accounts if hot_accounts > 0 else n_accounts
    for _ in range(n_clients):
        source = rng.randrange(pool)
        target = rng.randrange(pool)
        while target == source:
            target = rng.randrange(pool)
        scripts.append(transfer_script(host, name, source, target))
    return scripts


def deadlock_pair_scripts(
    host: TransactionAgentHost,
    name: AttributedName,
    account_a: int,
    account_b: int,
) -> Tuple[Script, Script]:
    """Two transfers locking the same pair in opposite orders.

    Interleaved, they deadlock: each holds one account's lock and waits
    for the other.  Only the LT/N timeout policy (experiment E8) lets
    either finish.
    """
    return (
        transfer_script(host, name, account_a, account_b),
        transfer_script(host, name, account_b, account_a),
    )


def long_transaction_script(
    host: TransactionAgentHost,
    name: AttributedName,
    account: int,
    *,
    think_rounds: int = 50,
) -> Script:
    """A transaction that holds one lock over many think steps.

    The paper's stated weakness of timeouts: "transactions taking a
    long time will be penalized" — this script is the victim.
    """

    def script() -> Generator:
        tid = yield lambda: host.tbegin()
        descriptor = yield lambda: host.topen(tid, name)
        raw = yield lambda: host.tpread(
            tid, descriptor, ACCOUNT_BYTES, account * ACCOUNT_BYTES, for_update=True
        )
        for _ in range(think_rounds):
            yield lambda: None  # pure computation between I/O steps
        yield lambda: host.tpwrite(
            tid,
            descriptor,
            ACCOUNT_RECORD.pack(read_balance(raw) + 1),
            account * ACCOUNT_BYTES,
        )
        yield lambda: host.tend(tid)

    return script


def total_balance(
    host: TransactionAgentHost, name: AttributedName, n_accounts: int
) -> int:
    """Sum of all balances, read in one transaction (the invariant)."""
    tid = host.tbegin()
    descriptor = host.topen(tid, name)
    raw = host.tpread(tid, descriptor, n_accounts * ACCOUNT_BYTES, 0)
    host.tend(tid)
    return sum(
        read_balance(raw[index * ACCOUNT_BYTES : (index + 1) * ACCOUNT_BYTES])
        for index in range(n_accounts)
    )
