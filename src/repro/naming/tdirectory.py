"""Transactional directory operations.

The paper's abstract claims that "using transaction semantics file
operations in not only database applications but also in **system
programming** can be made resilient against system and media failure."
Directory maintenance is the canonical piece of system programming:
a rename touches two directory files, and a crash between the two
updates would corrupt the namespace (an entry lost, or present twice).

This module runs directory mutations through the transaction service,
so multi-entry updates are atomic: either both parents reflect the
rename or neither does, across any crash.  Reads inside an operation
see the operation's own tentative state; directory files are locked
(page-level) for the duration, serialising concurrent mutators of the
same directory.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

from repro.common.errors import (
    NameExistsError,
    NameNotFoundError,
    NamingError,
)
from repro.common.ids import SystemName
from repro.file_service.attributes import FileAttributes, LockingLevel
from repro.naming.directory import (
    DirectoryEntry,
    DirectoryService,
    _decode_entries,
    _encode_entries,
    _KIND_DIR,
    _KIND_FILE,
    _MAX_DIRECTORY_BYTES,
)


class TransactionHost(Protocol):
    """The slice of the transaction agent host this module drives.

    Declared structurally so the naming layer does not import the
    transaction service (which itself imports naming — the concrete
    :class:`~repro.transactions.agent.TransactionAgentHost` satisfies
    this protocol without either side naming the other).
    """

    def tbegin(
        self, *, process_id: int = 0, parent: Optional[int] = None
    ) -> int: ...

    def tend(self, tid: int) -> None: ...

    def tabort(self, tid: int) -> None: ...

    def topen_system(
        self, tid: int, system_name: SystemName, **kwargs: object
    ) -> int: ...

    def tcreate_system(self, tid: int, *, volume_id: int) -> int: ...

    def tdelete_system(self, tid: int, system_name: SystemName) -> None: ...

    def system_name_of(self, tid: int, descriptor: int) -> SystemName: ...

    def tpread(
        self,
        tid: int,
        descriptor: int,
        n_bytes: int,
        offset: int,
        *,
        for_update: bool = False,
    ) -> bytes: ...

    def tpwrite(
        self, tid: int, descriptor: int, data: bytes, offset: int
    ) -> int: ...

    def tget_attribute(self, tid: int, descriptor: int) -> FileAttributes: ...


class _TxnView:
    """Directory operations bound to one open transaction."""

    def __init__(
        self,
        service: "TransactionalDirectory",
        tid: int,
    ) -> None:
        self._service = service
        self._host = service.host
        self.tid = tid
        self._descriptors: Dict[SystemName, int] = {}

    # ------------------------------------------------------- plumbing

    def _descriptor(self, directory: SystemName) -> int:
        descriptor = self._descriptors.get(directory)
        if descriptor is None:
            descriptor = self._host.topen_system(
                self.tid, directory, locking_level=LockingLevel.PAGE
            )
            self._descriptors[directory] = descriptor
        return descriptor

    def _read_entries(self, directory: SystemName) -> Dict[str, DirectoryEntry]:
        descriptor = self._descriptor(directory)
        blob = self._host.tpread(
            self.tid, descriptor, _MAX_DIRECTORY_BYTES, 0, for_update=True
        )
        return _decode_entries(blob)

    def _write_entries(
        self, directory: SystemName, entries: Dict[str, DirectoryEntry]
    ) -> None:
        descriptor = self._descriptor(directory)
        blob = _encode_entries(entries)
        current = self._host.tget_attribute(self.tid, descriptor).file_size
        self._host.tpwrite(
            self.tid,
            descriptor,
            blob + b" " * max(0, current - len(blob)),
            0,
        )

    def resolve(self, path: str) -> SystemName:
        """Walk the tree inside the transaction (sees tentative state)."""
        parts = DirectoryService._split(path)
        current = self._service.directories.root
        for index, part in enumerate(parts):
            entry = self._read_entries(current).get(part)
            if entry is None:
                raise NameNotFoundError(
                    f"no entry {part!r} in /{'/'.join(parts[:index])}"
                )
            if index < len(parts) - 1 and not entry.is_directory:
                raise NamingError(
                    f"/{'/'.join(parts[: index + 1])} is not a directory"
                )
            current = entry.target
        return current

    def _parent_and_leaf(self, path: str) -> Tuple[SystemName, str]:
        parts = DirectoryService._split(path)
        if not parts:
            raise NamingError("the root directory itself cannot be a target")
        # Walk to the parent, verifying every step (including the parent
        # itself) is a directory.
        current = self._service.directories.root
        for index, part in enumerate(parts[:-1]):
            entry = self._read_entries(current).get(part)
            if entry is None:
                raise NameNotFoundError(
                    f"no entry {part!r} in /{'/'.join(parts[:index])}"
                )
            if not entry.is_directory:
                raise NamingError(
                    f"/{'/'.join(parts[: index + 1])} is not a directory"
                )
            current = entry.target
        return current, parts[-1]

    # ------------------------------------------------------- mutators

    def mkdir(self, path: str, *, volume_id: int | None = None) -> SystemName:
        parent, leaf = self._parent_and_leaf(path)
        entries = self._read_entries(parent)
        if leaf in entries:
            raise NameExistsError(f"{path} already exists")
        descriptor = self._host.tcreate_system(
            self.tid,
            volume_id=(
                volume_id
                if volume_id is not None
                else self._service.directories.root_volume
            ),
        )
        directory = self._host.system_name_of(self.tid, descriptor)
        self._host.tpwrite(self.tid, descriptor, _encode_entries({}), 0)
        self._descriptors[directory] = descriptor
        entries[leaf] = DirectoryEntry(leaf, directory, _KIND_DIR)
        self._write_entries(parent, entries)
        return directory

    def create_file(self, path: str, *, volume_id: int | None = None) -> SystemName:
        parent, leaf = self._parent_and_leaf(path)
        entries = self._read_entries(parent)
        if leaf in entries:
            raise NameExistsError(f"{path} already exists")
        descriptor = self._host.tcreate_system(
            self.tid,
            volume_id=(
                volume_id
                if volume_id is not None
                else self._service.directories.root_volume
            ),
        )
        target = self._host.system_name_of(self.tid, descriptor)
        self._descriptors[target] = descriptor
        entries[leaf] = DirectoryEntry(leaf, target, _KIND_FILE)
        self._write_entries(parent, entries)
        return target

    def write_file(self, path: str, offset: int, data: bytes) -> int:
        """Write file content inside the same transaction."""
        target = self.resolve(path)
        descriptor = self._descriptors.get(target)
        if descriptor is None:
            descriptor = self._host.topen_system(self.tid, target)
            self._descriptors[target] = descriptor
        return self._host.tpwrite(self.tid, descriptor, data, offset)

    def unlink(self, path: str) -> SystemName:
        parent, leaf = self._parent_and_leaf(path)
        entries = self._read_entries(parent)
        entry = entries.get(leaf)
        if entry is None:
            raise NameNotFoundError(f"{path}: no such file")
        if entry.is_directory:
            raise NamingError(f"{path} is a directory; use rmdir")
        del entries[leaf]
        self._write_entries(parent, entries)
        self._host.tdelete_system(self.tid, entry.target)
        return entry.target

    def rmdir(self, path: str) -> None:
        parent, leaf = self._parent_and_leaf(path)
        entries = self._read_entries(parent)
        entry = entries.get(leaf)
        if entry is None:
            raise NameNotFoundError(f"{path}: no such directory")
        if not entry.is_directory:
            raise NamingError(f"{path} is a file, not a directory")
        if self._read_entries(entry.target):
            raise NamingError(f"{path} is not empty")
        del entries[leaf]
        self._write_entries(parent, entries)
        self._host.tdelete_system(self.tid, entry.target)

    def rename(self, old_path: str, new_path: str) -> None:
        """The multi-directory mutation this module exists for."""
        old_parent, old_leaf = self._parent_and_leaf(old_path)
        new_parent, new_leaf = self._parent_and_leaf(new_path)
        old_entries = self._read_entries(old_parent)
        entry = old_entries.get(old_leaf)
        if entry is None:
            raise NameNotFoundError(f"{old_path}: no such entry")
        if old_parent == new_parent:
            if new_leaf in old_entries:
                raise NameExistsError(f"{new_path} already exists")
            del old_entries[old_leaf]
            old_entries[new_leaf] = DirectoryEntry(
                new_leaf, entry.target, entry.kind
            )
            self._write_entries(old_parent, old_entries)
            return
        new_entries = self._read_entries(new_parent)
        if new_leaf in new_entries:
            raise NameExistsError(f"{new_path} already exists")
        del old_entries[old_leaf]
        new_entries[new_leaf] = DirectoryEntry(new_leaf, entry.target, entry.kind)
        # Two directory files change; the enclosing transaction makes
        # the pair atomic across any crash.
        self._write_entries(old_parent, old_entries)
        self._write_entries(new_parent, new_entries)

    def list_directory(self, path: str) -> List[DirectoryEntry]:
        return sorted(
            self._read_entries(self.resolve(path)).values(),
            key=lambda entry: entry.name,
        )


class TransactionalDirectory:
    """Directory mutations with transaction semantics.

    Wraps a :class:`DirectoryService` (for the root bootstrap and
    read-only conveniences) and a transaction agent host.  Every
    mutation runs inside a transaction; :meth:`transaction` groups
    several into one atomic unit.
    """

    def __init__(
        self, directories: DirectoryService, host: TransactionHost
    ) -> None:
        self.directories = directories
        self.host = host

    @contextmanager
    def transaction(self) -> Iterator[_TxnView]:
        """Group directory mutations into one atomic transaction."""
        tid = self.host.tbegin()
        view = _TxnView(self, tid)
        try:
            yield view
        except BaseException:
            self.host.tabort(tid)
            raise
        else:
            self.host.tend(tid)

    # One-shot conveniences: each runs in its own transaction.

    def mkdir(self, path: str, **kwargs) -> SystemName:
        with self.transaction() as view:
            return view.mkdir(path, **kwargs)

    def create_file(self, path: str, **kwargs) -> SystemName:
        with self.transaction() as view:
            return view.create_file(path, **kwargs)

    def unlink(self, path: str) -> SystemName:
        with self.transaction() as view:
            return view.unlink(path)

    def rmdir(self, path: str) -> None:
        with self.transaction() as view:
            view.rmdir(path)

    def rename(self, old_path: str, new_path: str) -> None:
        with self.transaction() as view:
            view.rename(old_path, new_path)
