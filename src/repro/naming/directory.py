"""The directory service: hierarchy stored in RHODOS files.

Figure 1 of the paper labels its top layer "NAMING / DIRECTORY
SERVICE".  The naming service (attributed names) is flat; this module
adds the conventional hierarchy on top — and stores every directory
*as a RHODOS file* through the basic file service, so directories get
the facility's own durability (FITs on stable storage, crash recovery)
for free, and the directory tree survives anything a file survives.

A directory file holds a serialised entry table: name -> (system name,
kind).  The root directory's system name is bootstrapped through the
flat naming service under a reserved attributed name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import (
    FileServiceError,
    NameExistsError,
    NameNotFoundError,
    NamingError,
)
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService

#: The flat-naming bootstrap binding for the root directory.
ROOT_BINDING = AttributedName.file(directory="root", path="/")

_KIND_FILE = "file"
_KIND_DIR = "dir"
_MAX_DIRECTORY_BYTES = 1 << 20


@dataclass(frozen=True, slots=True)
class DirectoryEntry:
    """One row of a directory file."""

    name: str
    target: SystemName
    kind: str  # "file" | "dir"

    @property
    def is_directory(self) -> bool:
        return self.kind == _KIND_DIR


def _encode_entries(entries: Dict[str, DirectoryEntry]) -> bytes:
    rows = [
        {
            "name": entry.name,
            "volume": entry.target.volume_id,
            "fit": entry.target.fit_address,
            "generation": entry.target.generation,
            "kind": entry.kind,
        }
        for entry in sorted(entries.values(), key=lambda e: e.name)
    ]
    return json.dumps(rows, sort_keys=True).encode("utf-8")


def _decode_entries(blob: bytes) -> Dict[str, DirectoryEntry]:
    if not blob:
        return {}
    entries = {}
    for row in json.loads(blob.decode("utf-8")):
        entry = DirectoryEntry(
            name=row["name"],
            target=SystemName(row["volume"], row["fit"], row["generation"]),
            kind=row["kind"],
        )
        entries[entry.name] = entry
    return entries


class DirectoryService:
    """Hierarchical paths over the basic file service.

    Args:
        naming: the flat naming service (holds the root bootstrap).
        router: any :class:`~repro.agents.routing.FileServiceRouter`-
            shaped object carrying file operations by volume.
        metrics: counter registry.
        root_volume: volume that hosts the root directory (and, by
            default, newly created directories and files).
    """

    def __init__(
        self,
        naming: NamingService,
        router,
        metrics: Metrics,
        *,
        root_volume: int = 0,
    ) -> None:
        self.naming = naming
        self.router = router
        self.metrics = metrics
        self.root_volume = root_volume
        if ROOT_BINDING in naming:
            self.root = naming.resolve_file(ROOT_BINDING)
        else:
            self.root = router.create(root_volume)
            self._write_entries(self.root, {})
            naming.bind(ROOT_BINDING, self.root)

    # ------------------------------------------------------- lookup

    def resolve(self, path: str) -> SystemName:
        """Walk the tree; raises :class:`NameNotFoundError` if absent."""
        parts = self._split(path)
        current = self.root
        for index, part in enumerate(parts):
            entries = self._read_entries(current)
            entry = entries.get(part)
            if entry is None:
                raise NameNotFoundError(
                    f"no entry {part!r} in /{'/'.join(parts[:index])}"
                )
            if index < len(parts) - 1 and not entry.is_directory:
                raise NamingError(f"/{'/'.join(parts[: index + 1])} is not a directory")
            current = entry.target
        self.metrics.add("directory.resolutions")
        return current

    def list_directory(self, path: str) -> List[DirectoryEntry]:
        """Entries of a directory, sorted by name."""
        target = self.resolve(path)
        self._require_directory(path)
        return sorted(self._read_entries(target).values(), key=lambda e: e.name)

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except (NameNotFoundError, NamingError):
            return False

    def is_directory(self, path: str) -> bool:
        parts = self._split(path)
        if not parts:
            return True
        parent_entries = self._read_entries(self.resolve(self._parent(path)))
        entry = parent_entries.get(parts[-1])
        return entry is not None and entry.is_directory

    def walk(self, path: str = "/"):
        """Yield (directory_path, entries) depth-first, like os.walk."""
        entries = self.list_directory(path)
        yield path.rstrip("/") or "/", entries
        for entry in entries:
            if entry.is_directory:
                child = (path.rstrip("/") or "") + "/" + entry.name
                yield from self.walk(child)

    # ------------------------------------------------------- mutate

    def mkdir(self, path: str, *, volume_id: int | None = None) -> SystemName:
        """Create an empty directory; parent must exist."""
        parent, leaf = self._parent_and_leaf(path)
        directory = self.router.create(
            volume_id if volume_id is not None else self.root_volume
        )
        self._write_entries(directory, {})
        self._add_entry(parent, DirectoryEntry(leaf, directory, _KIND_DIR))
        self.metrics.add("directory.mkdirs")
        return directory

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        parent, leaf = self._parent_and_leaf(path)
        entries = self._read_entries(self.resolve(parent))
        entry = entries.get(leaf)
        if entry is None:
            raise NameNotFoundError(f"{path}: no such directory")
        if not entry.is_directory:
            raise NamingError(f"{path} is a file, not a directory")
        if self._read_entries(entry.target):
            raise NamingError(f"{path} is not empty")
        self._remove_entry(parent, leaf)
        self.router.delete(entry.target)
        self.metrics.add("directory.rmdirs")

    def create_file(self, path: str, *, volume_id: int | None = None, **create_kwargs) -> SystemName:
        """Create a file and link it at ``path``."""
        parent, leaf = self._parent_and_leaf(path)
        target = self.router.create(
            volume_id if volume_id is not None else self.root_volume,
            **create_kwargs,
        )
        self._add_entry(parent, DirectoryEntry(leaf, target, _KIND_FILE))
        self.metrics.add("directory.creates")
        return target

    def link(self, path: str, target: SystemName) -> None:
        """Link an existing file under a (new) path — hard-link style."""
        parent, leaf = self._parent_and_leaf(path)
        self._add_entry(parent, DirectoryEntry(leaf, target, _KIND_FILE))
        self.metrics.add("directory.links")

    def unlink(self, path: str, *, delete_file: bool = True) -> SystemName:
        """Remove a file entry; optionally delete the file itself."""
        parent, leaf = self._parent_and_leaf(path)
        entries = self._read_entries(self.resolve(parent))
        entry = entries.get(leaf)
        if entry is None:
            raise NameNotFoundError(f"{path}: no such file")
        if entry.is_directory:
            raise NamingError(f"{path} is a directory; use rmdir")
        self._remove_entry(parent, leaf)
        if delete_file:
            self.router.delete(entry.target)
        self.metrics.add("directory.unlinks")
        return entry.target

    def rename(self, old_path: str, new_path: str) -> None:
        """Move an entry (file or directory) to a new path."""
        old_parent, old_leaf = self._parent_and_leaf(old_path)
        new_parent, new_leaf = self._parent_and_leaf(new_path)
        entries = self._read_entries(self.resolve(old_parent))
        entry = entries.get(old_leaf)
        if entry is None:
            raise NameNotFoundError(f"{old_path}: no such entry")
        self._add_entry(
            new_parent, DirectoryEntry(new_leaf, entry.target, entry.kind)
        )
        self._remove_entry(old_parent, old_leaf)
        self.metrics.add("directory.renames")

    # ------------------------------------------------------ internal

    @staticmethod
    def _split(path: str) -> List[str]:
        parts = [part for part in path.split("/") if part]
        for part in parts:
            if part in (".", ".."):
                raise NamingError("relative path components are not supported")
        return parts

    def _parent(self, path: str) -> str:
        parts = self._split(path)
        return "/" + "/".join(parts[:-1])

    def _parent_and_leaf(self, path: str) -> Tuple[str, str]:
        parts = self._split(path)
        if not parts:
            raise NamingError("the root directory itself cannot be a target")
        return "/" + "/".join(parts[:-1]), parts[-1]

    def _require_directory(self, path: str) -> None:
        if self._split(path) and not self.is_directory(path):
            raise NamingError(f"{path} is not a directory")

    def _read_entries(self, directory: SystemName) -> Dict[str, DirectoryEntry]:
        blob = self.router.read(directory, 0, _MAX_DIRECTORY_BYTES)
        try:
            return _decode_entries(blob)
        except (ValueError, KeyError) as exc:
            raise FileServiceError(
                f"directory file {directory} is corrupt: {exc}"
            ) from exc

    def _write_entries(
        self, directory: SystemName, entries: Dict[str, DirectoryEntry]
    ) -> None:
        blob = _encode_entries(entries)
        current_size = self.router.get_attribute(directory).file_size
        self.router.write(directory, 0, blob + b" " * max(0, current_size - len(blob)))

    def _add_entry(self, parent_path: str, entry: DirectoryEntry) -> None:
        if not self.is_directory(parent_path):
            raise NamingError(f"{parent_path} is not a directory")
        parent = self.resolve(parent_path)
        entries = self._read_entries(parent)
        if entry.name in entries:
            raise NameExistsError(
                f"{parent_path.rstrip('/')}/{entry.name} already exists"
            )
        entries[entry.name] = entry
        self._write_entries(parent, entries)

    def _remove_entry(self, parent_path: str, leaf: str) -> None:
        parent = self.resolve(parent_path)
        entries = self._read_entries(parent)
        entries.pop(leaf, None)
        self._write_entries(parent, entries)
