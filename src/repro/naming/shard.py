"""The sharded namespace: attributed names partitioned across shard servers.

The paper's Figure-1 stack tops out at a single NAMING/DIRECTORY
SERVICE; this module scales that layer out.  The binding space is cut
into a fixed number of **hash slots**: every name has a canonical key
(the ``path`` attribute by convention, see :func:`canonical_key`),
CRC-32 of the key picks the slot, and an epoch-numbered
:class:`ShardMap` assigns each slot to one of N shard servers via a
consistent-hash ring of virtual-node tokens — so adding a shard moves
roughly ``1/(N+1)`` of the slots and nothing else.

Each :class:`NamingShard` wraps its own
:class:`~repro.naming.service.NamingService` and checks slot ownership
on every keyed operation, answering :class:`WrongShardError` (with its
current epoch) when a request arrives under a stale map.  The
:class:`ShardedNamespace` router on each client machine owns a cached
copy of the map, re-fetches it on ``WrongShardError``, fans subset
queries without a routable key out to every shard, and presents the
exact ``NamingService`` surface — agents, directories, and replication
cannot tell a sharded namespace from a flat one.

Failover: shard K's writes are mirrored synchronously to a **replica
peer** (its successor in shard-id order) over the intra-service
channel; when the primary dies mid-workload, the router fails reads
over to the peer's replica store, writes surface as bounded
unavailability, and restart resyncs the primary from the peer.

Rebalancing: :class:`ShardManager.begin_rebalance` moves slots to a
(possibly new) shard by streaming bindings in deterministic key order
behind a **write-through watermark** — from the instant a slot is
marked migrating, every write dual-applies to source and destination
(the PR 9 rebuilder discipline), while the stream copies the
still-live snapshot behind it.  Reads stay single-authority: the
destination redirects until the epoch cutover, which merges the
incoming set and bumps the map in one atomic instant — the
arbitration that makes a resolve miss structurally impossible.

Time: every shard operation charges ``service_us`` to the shard's
:class:`ShardTimeline` — the shard server's busy-until resource —
so concurrent metadata operations overlap across shards exactly as
disk requests overlap across spindles, and aggregate metadata
throughput scales with shard count under ``run_concurrent`` (E20).
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.common.clock import SimClock
from repro.common.errors import (
    CircuitOpenError,
    NameNotFoundError,
    NamingError,
    RpcTimeoutError,
    ShardDownError,
    WrongShardError,
)
from repro.common.frames import active_frame
from repro.common.ids import SystemName, monotonic_id_factory
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName, ObjectType
from repro.naming.service import NamingService, Target
from repro.recovery.health import HealthRegistry

#: Hash slots per map.  Small enough to enumerate, large enough that a
#: rebalance moves load in fine grains; every map of a namespace must
#: use the same count.
DEFAULT_SLOTS = 64

#: Virtual-node tokens per shard on the consistent-hash ring.
_VNODES = 16


def shard_component(shard_id: int) -> str:
    """The health-registry component name of one shard server."""
    return f"shard.{shard_id}"


def canonical_key(name: AttributedName) -> str:
    """The partitioning key of a name.

    ``path`` wins when present (any subset query carrying the same
    ``path`` hashes identically, which is what makes path-keyed
    resolution single-shard); ``directory`` is the fallback for the
    rare path-less directory names; otherwise the sorted attribute
    items — still deterministic, but only exact-match routable.
    """
    path = name.get("path")
    if path is not None:
        return "p:" + path
    directory = name.get("directory")
    if directory is not None:
        return "d:" + directory
    return "a:" + ";".join(f"{key}={value}" for key, value in name)


def routing_key(query: AttributedName) -> Optional[str]:
    """The key a *subset* query can be routed by, or None (fan out).

    Only a ``path``-carrying query is routable: every binding whose
    attributes are a superset shares that path, hence the slot.  A
    query without ``path`` may match bindings that *do* have one —
    which live wherever their paths hash — so it must fan out.
    """
    if query.get("path") is not None:
        return canonical_key(query)
    return None


def slot_of(key: str, n_slots: int) -> int:
    """Deterministic slot of a canonical key (never builtin ``hash``,
    which is salted per process by PYTHONHASHSEED)."""
    return zlib.crc32(key.encode("utf-8")) % n_slots


def _ring_token(label: str) -> int:
    """A stable 64-bit ring position for a virtual node or a slot."""
    return int.from_bytes(hashlib.sha1(label.encode("utf-8")).digest()[:8], "big")


class ShardMap:
    """An epoch-numbered assignment of hash slots to shard ids.

    Immutable by convention: rebalancing produces a *new* map with
    ``epoch + 1`` (:meth:`moved`), never mutates one in place — the
    epoch is what lets a shard server prove a router's copy stale.
    """

    __slots__ = ("epoch", "owners")

    def __init__(self, epoch: int, owners: Tuple[int, ...]) -> None:
        if not owners:
            raise NamingError("a shard map needs at least one slot")
        self.epoch = epoch
        self.owners = tuple(owners)

    @property
    def n_slots(self) -> int:
        return len(self.owners)

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.owners)))

    def owner_of_slot(self, slot: int) -> int:
        return self.owners[slot]

    def owner_of(self, key: str) -> int:
        return self.owners[slot_of(key, len(self.owners))]

    def slots_of(self, shard_id: int) -> Tuple[int, ...]:
        return tuple(
            slot for slot, owner in enumerate(self.owners) if owner == shard_id
        )

    def moved(self, slots: Tuple[int, ...], destination: int) -> "ShardMap":
        """The successor map: ``slots`` reassigned, epoch bumped."""
        owners = list(self.owners)
        for slot in slots:
            owners[slot] = destination
        return ShardMap(self.epoch + 1, tuple(owners))

    @classmethod
    def assign(
        cls, shard_ids: Tuple[int, ...], *, n_slots: int = DEFAULT_SLOTS, epoch: int = 0
    ) -> "ShardMap":
        """Consistent-hash assignment of every slot to a shard.

        Each shard contributes :data:`_VNODES` tokens to a ring; a slot
        belongs to the first token clockwise of the slot's own hash.
        Tokens depend only on shard ids, so growing the set reassigns
        only the slots the new shard's tokens capture.
        """
        if not shard_ids:
            raise NamingError("need at least one shard")
        ring: List[Tuple[int, int]] = []
        for shard_id in sorted(shard_ids):
            for vnode in range(_VNODES):
                ring.append((_ring_token(f"shard:{shard_id}:v{vnode}"), shard_id))
        ring.sort()
        tokens = [token for token, _ in ring]
        owners = []
        for slot in range(n_slots):
            point = _ring_token(f"slot:{slot}")
            # first token clockwise (wrapping) of the slot's point
            lo, hi = 0, len(tokens)
            while lo < hi:
                mid = (lo + hi) // 2
                if tokens[mid] < point:
                    lo = mid + 1
                else:
                    hi = mid
            owners.append(ring[lo % len(ring)][1])
        return cls(epoch, tuple(owners))

    def __repr__(self) -> str:
        counts = {
            shard_id: len(self.slots_of(shard_id)) for shard_id in self.shard_ids
        }
        return f"ShardMap(epoch={self.epoch}, slots={counts})"


class ShardTimeline:
    """A shard server's busy-until resource (the CPU it resolves on).

    The metadata analogue of :class:`~repro.simdisk.timeline.DiskTimeline`:
    inside a service frame the charge reserves the next free interval
    at or after the frame cursor and moves the cursor to its end, so
    operations on different shards overlap while operations on one
    shard serialize; with no frame open it blocks the global clock
    inline, bit-identical to the sequential semantics.
    """

    __slots__ = ("clock", "busy_until_us")

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.busy_until_us = 0

    def charge(self, service_us: int) -> None:
        if service_us <= 0:
            return
        frame = active_frame(self.clock)
        if frame is None:
            start = max(self.clock.now_us, self.busy_until_us)
            end = start + service_us
            self.busy_until_us = end
            self.clock.advance_to(end)
            return
        start = max(frame.cursor_us, self.busy_until_us)
        end = start + service_us
        frame.waited_us += start - frame.cursor_us
        frame.charged_us += service_us
        frame.cursor_us = end
        self.busy_until_us = end


class NamingShard:
    """One shard server: a slot-checked ``NamingService`` plus a
    replica store for its ring predecessor.

    Args:
        shard_id: this server's id (stable across restarts).
        clock: the shared simulated clock.
        metrics: the shared registry (``naming.*`` and per-shard
            ``naming_shard.*`` counters).
        service_us: modelled service time charged per operation to the
            shard's timeline (0 = free, the flat-namespace default).
    """

    def __init__(
        self,
        shard_id: int,
        clock: SimClock,
        metrics: Metrics,
        *,
        service_us: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.clock = clock
        self.metrics = metrics
        self.service_us = service_us
        self.timeline = ShardTimeline(clock)
        self.service = NamingService(metrics)
        #: Replica copy of the ring predecessor's primary table.  Kept
        #: on a private registry so mirrored writes don't double the
        #: shared ``naming.*`` counters.
        self.replica = NamingService()
        #: Successor shard this primary mirrors its writes to.
        self.peer: Optional["NamingShard"] = None
        self.map: ShardMap = ShardMap(0, (shard_id,))
        self.crashed = False
        #: slot -> destination shard for slots migrating *out* (writes
        #: dual-apply behind the watermark).
        self._migrating_out: Dict[int, "NamingShard"] = {}
        #: Bindings streamed or written through while migrating *in*;
        #: merged into the primary table at the epoch cutover.
        self._incoming: Dict[AttributedName, Optional[Target]] = {}
        #: Codec snapshot taken at crash when no peer exists — the
        #: naming-DB-in-a-RHODOS-file durability path of the flat
        #: namespace (service.py's codec), modelled as a blob.
        self._stable: Optional[bytes] = None
        #: Reply cache for mutating ops, keyed by the router's per-call
        #: token (Birrell-Nelson at-most-once).  The bus may duplicate
        #: a request or re-deliver it after a lost reply; a cached
        #: token means "already applied — return the recorded answer".
        #: Modelled as riding the stable store, so it survives a crash
        #: (a straddling retransmission must not double-apply after
        #: the peer resync restored the binding).
        self._done: Dict[int, Any] = {}
        self._ops = metrics.counter(f"naming_shard.{shard_id}.ops")

    # --------------------------------------------------------- guards

    def _enter(self) -> None:
        if self.crashed:
            raise ShardDownError(f"shard {self.shard_id} is down")
        self._ops.add()
        self.timeline.charge(self.service_us)

    def _check_owner(self, key: str) -> int:
        slot = slot_of(key, self.map.n_slots)
        if self.map.owner_of_slot(slot) != self.shard_id:
            raise WrongShardError(
                f"shard {self.shard_id} does not own slot {slot} "
                f"(epoch {self.map.epoch})",
                epoch=self.map.epoch,
                slot=slot,
            )
        return slot

    # ------------------------------------------------------ keyed ops

    def bind(
        self, name: AttributedName, target: Target, token: Optional[int] = None
    ) -> None:
        self._enter()
        if token is not None and token in self._done:
            return self._done[token]
        slot = self._check_owner(canonical_key(name))
        self.service.bind(name, target)
        self._mirror("rebind", name, target)
        self._write_through(slot, name, target)
        if token is not None:
            self._done[token] = None

    def rebind(
        self, name: AttributedName, target: Target, token: Optional[int] = None
    ) -> None:
        self._enter()
        if token is not None and token in self._done:
            return self._done[token]
        slot = self._check_owner(canonical_key(name))
        self.service.rebind(name, target)
        self._mirror("rebind", name, target)
        self._write_through(slot, name, target)
        if token is not None:
            self._done[token] = None

    def unbind(
        self, name: AttributedName, token: Optional[int] = None
    ) -> Target:
        self._enter()
        if token is not None and token in self._done:
            return self._done[token]
        slot = self._check_owner(canonical_key(name))
        target = self.service.unbind(name)
        self._mirror("unbind", name, None)
        self._write_through(slot, name, None)
        if token is not None:
            self._done[token] = target
        return target

    def resolve(self, query: AttributedName) -> Target:
        """Keyed resolution: the whole match set lives on this shard."""
        self._enter()
        self._check_owner(canonical_key(query))
        return self.service.resolve(query)

    def contains(self, name: AttributedName) -> bool:
        self._enter()
        self._check_owner(canonical_key(name))
        return name in self.service

    def unbind_path(self, path: str, token: Optional[int] = None) -> Target:
        self._enter()
        if token is not None and token in self._done:
            return self._done[token]
        self._check_owner("p:" + NamingService._norm_path(path))
        target = self.service.unbind_path(path)
        # The exact unbound name is needed for mirroring; unbind_path
        # already removed it, so replay the removal on the mirrors by
        # path as well.
        if self.peer is not None and not self.peer.crashed:
            try:
                self.peer.replica.unbind_path(path)
            except NameNotFoundError:
                pass
        for destination in self._migrating_out.values():
            destination._incoming_unbind_path(path)
        if token is not None:
            self._done[token] = target
        return target

    # ---------------------------------------------------- fan-out ops

    def match(
        self, query: AttributedName
    ) -> List[Tuple[AttributedName, Target, bool]]:
        """Local matches of a subset query: ``(name, target, exact)``.

        Serves from the primary table only — bindings migrating *in*
        stay invisible until the cutover (single-authority reads).
        """
        self._enter()
        exact = query in self.service
        return [
            (name, target, exact and name == query)
            for name, target in self.service.lookup(query)
        ]

    def list_paths(self, prefix: str) -> List[str]:
        """This shard's contribution to ``list_directory(prefix)``."""
        self._enter()
        return self.service.list_directory(prefix)

    def size(self) -> int:
        self._enter()
        return len(self.service)

    def names(self) -> List[AttributedName]:
        self._enter()
        return list(self.service)

    def dump(self) -> bytes:
        """Codec snapshot of the primary table (satellite: partition
        round-trips are proven against the unsharded oracle)."""
        self._enter()
        return self.service.to_bytes()

    # ------------------------------------------------- replica reads

    def replica_resolve(self, query: AttributedName) -> Target:
        self._enter()
        return self.replica.resolve(query)

    def replica_match(
        self, query: AttributedName
    ) -> List[Tuple[AttributedName, Target, bool]]:
        self._enter()
        exact = query in self.replica
        return [
            (name, target, exact and name == query)
            for name, target in self.replica.lookup(query)
        ]

    def replica_contains(self, name: AttributedName) -> bool:
        self._enter()
        return name in self.replica

    def replica_list_paths(self, prefix: str) -> List[str]:
        self._enter()
        return self.replica.list_directory(prefix)

    def replica_size(self) -> int:
        self._enter()
        return len(self.replica)

    def replica_names(self) -> List[AttributedName]:
        self._enter()
        return list(self.replica)

    # ------------------------------------------------- mirror channel

    def _mirror(
        self, op: str, name: AttributedName, target: Optional[Target]
    ) -> None:
        """Write-through to the replica peer (intra-service channel).

        The channel is modelled reliable and synchronous — the paper's
        servers replicate over the same trusted interconnect the disk
        servers use — so a mirrored write costs no bus fault draws.  A
        crashed peer is skipped; its replica is rebuilt wholesale on
        restart (:meth:`ShardManager.restart_shard`).
        """
        peer = self.peer
        if peer is None or peer is self or peer.crashed:
            return
        if op == "unbind":
            try:
                peer.replica.unbind(name)
            except NameNotFoundError:
                pass
        else:
            assert target is not None
            peer.replica.rebind(name, target)

    # --------------------------------------------------- migration io

    def _write_through(
        self, slot: int, name: AttributedName, target: Optional[Target]
    ) -> None:
        """Dual-apply a write to the migration destination, if any.

        This is the watermark discipline: from ``begin_rebalance`` on,
        every write to a migrating slot lands on both sides, so the
        stream only has to copy the snapshot behind it.  A destination
        that died is skipped — the abort path discards its partial
        state, so nothing can be served from it.
        """
        destination = self._migrating_out.get(slot)
        if destination is None or destination.crashed:
            return
        destination._incoming[name] = target

    def _incoming_unbind_path(self, path: str) -> None:
        if self.crashed:
            return
        normalised = NamingService._norm_path(path)
        for name in list(self._incoming):
            if (
                name.object_type is ObjectType.FILE
                and name.get("path") == normalised
            ):
                self._incoming[name] = None

    # ----------------------------------------------------- lifecycle

    def crash(self) -> None:
        """Process death: volatile state (the in-memory tables) is lost.

        Without a peer the naming DB is recovered from its codec
        snapshot (the flat namespace's RHODOS-file path); with peers,
        restart streams from the replica — the point of the exercise.
        """
        if self.peer is None or self.peer is self:
            self._stable = self.service.to_bytes()
        self.crashed = True
        self.service = NamingService(self.metrics)
        self.replica = NamingService()
        self._incoming = {}
        self._migrating_out = {}

    def snapshot(self) -> bytes:
        """Control-plane copy of the primary table (no timeline charge)."""
        return self.service.to_bytes()

    def replica_dump(self) -> bytes:
        self._enter()
        return self.replica.to_bytes()

    def replica_snapshot(self) -> bytes:
        return self.replica.to_bytes()

    def __repr__(self) -> str:
        state = "down" if self.crashed else "up"
        return (
            f"NamingShard(id={self.shard_id}, {state}, "
            f"bindings={len(self.service)}, replica={len(self.replica)})"
        )


class _Migration:
    """One in-flight rebalance: slots streaming from sources to ``destination``."""

    __slots__ = ("destination", "slots", "sources", "stream", "watermark", "failed")

    def __init__(
        self,
        destination: NamingShard,
        slots: Tuple[int, ...],
        sources: Dict[int, NamingShard],
        stream: List[Tuple[int, AttributedName]],
    ) -> None:
        self.destination = destination
        self.slots = slots
        self.sources = sources  # slot -> source shard
        self.stream = stream  # deterministic (slot, name) order
        self.watermark = 0
        self.failed = False

    @property
    def done(self) -> bool:
        return self.watermark >= len(self.stream)


class ShardManager:
    """Owns the authoritative shard map, peer links, and rebalancing.

    The manager is control plane: it never sits on a data path, so its
    calls are direct (no bus) and charge no service time — exactly like
    the RAID tier's rebuild coordinator.
    """

    def __init__(
        self,
        shards: Dict[int, NamingShard],
        *,
        n_slots: int = DEFAULT_SLOTS,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if not shards:
            raise NamingError("need at least one shard")
        self.metrics = metrics or Metrics()
        self.shards: Dict[int, NamingShard] = dict(shards)
        self._map = ShardMap.assign(tuple(sorted(shards)), n_slots=n_slots)
        self._migration: Optional[_Migration] = None
        self._install_map(self._map)
        self._relink_peers()
        self.metrics.gauge("naming_shard.epoch", 0)

    # ------------------------------------------------------------ map

    @property
    def map(self) -> ShardMap:
        return self._map

    def get_map(self) -> ShardMap:
        """Router fetch: the authoritative current map."""
        return self._map

    def _install_map(self, shard_map: ShardMap) -> None:
        self._map = shard_map
        for shard in self.shards.values():
            shard.map = shard_map
        self.metrics.gauge("naming_shard.epoch", shard_map.epoch)

    def _relink_peers(self) -> None:
        """Ring the shards in id order; rebuild every replica wholesale.

        Wholesale rebuild keeps peer reassignment trivially correct
        (membership changes are rare control-plane events); the
        steady-state mirror is the incremental write-through.
        """
        ids = sorted(self.shards)
        for index, shard_id in enumerate(ids):
            shard = self.shards[shard_id]
            peer = self.shards[ids[(index + 1) % len(ids)]]
            shard.peer = None if peer is shard else peer
        for shard_id in ids:
            shard = self.shards[shard_id]
            if shard.peer is not None and not shard.peer.crashed and not shard.crashed:
                shard.peer.replica = NamingService.from_bytes(shard.snapshot())

    def peer_id_of(self, shard_id: int) -> Optional[int]:
        shard = self.shards.get(shard_id)
        if shard is None or shard.peer is None:
            return None
        return shard.peer.shard_id

    # ----------------------------------------------------- membership

    def add_shard(self, shard: NamingShard) -> None:
        """Register a spare shard: owns no slots until a rebalance."""
        if shard.shard_id in self.shards:
            raise NamingError(f"shard {shard.shard_id} already registered")
        self.shards[shard.shard_id] = shard
        shard.map = self._map
        self._relink_peers()
        self.metrics.add("naming_shard.shards_added")

    def restart_shard(self, shard_id: int) -> None:
        """Un-crash a shard and resync both its roles from the ring.

        The primary table streams back from the peer's replica copy
        (or, peerless, from the codec snapshot taken at crash); the
        shard's own replica store rebuilds from its predecessor.  An
        in-flight migration targeting the restarted shard was aborted
        at detection, so there is no partial incoming state to merge.
        """
        shard = self.shards[shard_id]
        shard.crashed = False
        if shard.peer is not None and shard.peer is not shard:
            shard.service = NamingService.from_bytes(
                shard.peer.replica_snapshot(), shard.metrics
            )
        elif shard._stable is not None:
            shard.service = NamingService.from_bytes(shard._stable, shard.metrics)
        self._relink_peers()
        self.metrics.add("naming_shard.resyncs")

    # ----------------------------------------------------- rebalancing

    def begin_rebalance(
        self, destination_id: int, slots: Optional[Tuple[int, ...]] = None
    ) -> Tuple[int, ...]:
        """Mark slots migrating to ``destination_id``; start the stream.

        With ``slots`` unset, the consistent-hash assignment over the
        *current* membership decides: the destination receives exactly
        the slots its ring tokens capture — which is how ``add_shard``
        followed by ``begin_rebalance`` implements ``split_shard``.
        Returns the slots chosen.
        """
        if self._migration is not None:
            raise NamingError("a rebalance is already in flight")
        destination = self.shards[destination_id]
        if destination.crashed:
            raise ShardDownError(f"shard {destination_id} is down")
        if slots is None:
            target = ShardMap.assign(
                tuple(sorted(self.shards)), n_slots=self._map.n_slots
            )
            slots = tuple(
                slot
                for slot in range(self._map.n_slots)
                if target.owner_of_slot(slot) == destination_id
                and self._map.owner_of_slot(slot) != destination_id
            )
        slots = tuple(sorted(slots))
        sources: Dict[int, NamingShard] = {}
        stream: List[Tuple[int, AttributedName]] = []
        for slot in slots:
            source = self.shards[self._map.owner_of_slot(slot)]
            if source is destination:
                continue
            sources[slot] = source
            slot_names = [
                name
                for name in source.service
                if slot_of(canonical_key(name), self._map.n_slots) == slot
            ]
            slot_names.sort(key=lambda name: (canonical_key(name), repr(name)))
            stream.extend((slot, name) for name in slot_names)
            source._migrating_out[slot] = destination
        self._migration = _Migration(destination, slots, sources, stream)
        self.metrics.add("naming_shard.migrations_started")
        return slots

    def step_rebalance(self, max_bindings: int = 64) -> int:
        """Stream up to ``max_bindings`` snapshot entries; returns the count.

        Entries unbound since the snapshot are skipped (the
        write-through already propagated the removal).  A destination
        found dead aborts the whole migration — the source keeps sole
        ownership, so nothing is lost and nothing was ever served from
        the partial copy.
        """
        migration = self._migration
        if migration is None:
            return 0
        if migration.destination.crashed:
            self.abort_rebalance()
            return 0
        streamed = 0
        while streamed < max_bindings and not migration.done:
            slot, name = migration.stream[migration.watermark]
            migration.watermark += 1
            source = migration.sources[slot]
            if name not in source.service:
                continue  # unbound behind the watermark; removal already forwarded
            if name in migration.destination._incoming:
                continue  # write-through got there first; it is newer
            migration.destination._incoming[name] = source.service.resolve(name)
            streamed += 1
        self.metrics.add("naming_shard.streamed_bindings", streamed)
        return streamed

    @property
    def rebalance_in_flight(self) -> bool:
        return self._migration is not None

    @property
    def rebalance_done(self) -> bool:
        return self._migration is not None and self._migration.done

    def abort_rebalance(self) -> None:
        """Discard the migration: destination state dropped, map unchanged."""
        migration = self._migration
        if migration is None:
            return
        for source in migration.sources.values():
            for slot in migration.slots:
                source._migrating_out.pop(slot, None)
        migration.destination._incoming = {}
        self._migration = None
        self.metrics.add("naming_shard.migrations_aborted")

    def complete_rebalance(self) -> ShardMap:
        """The atomic cutover: merge, transfer ownership, bump the epoch.

        Requires the stream drained.  In one instant of simulated time
        the destination merges its incoming set into the primary table,
        every source drops the moved bindings, and the new map installs
        everywhere the manager reaches — routers with the old epoch get
        ``WrongShardError`` from the sources and re-fetch.
        """
        migration = self._migration
        if migration is None:
            raise NamingError("no rebalance in flight")
        if not migration.done:
            raise NamingError(
                f"stream not drained: watermark {migration.watermark}"
                f"/{len(migration.stream)}"
            )
        destination = migration.destination
        if destination.crashed:
            self.abort_rebalance()
            raise ShardDownError("migration destination died before cutover")
        new_map = self._map.moved(migration.slots, destination.shard_id)
        self._install_map(new_map)
        for name, target in destination._incoming.items():
            if target is None:
                continue
            destination.service.rebind(name, target)
        destination._incoming = {}
        slot_set = set(migration.slots)
        unique_sources = {
            source.shard_id: source for source in migration.sources.values()
        }
        for source_id in sorted(unique_sources):
            source = unique_sources[source_id]
            for slot in migration.slots:
                source._migrating_out.pop(slot, None)
            for name in list(source.service):
                if slot_of(canonical_key(name), new_map.n_slots) in slot_set:
                    source.service.unbind(name)
        self._migration = None
        self._relink_peers()
        self.metrics.add("naming_shard.migrations_completed")
        return new_map

    def __repr__(self) -> str:
        return (
            f"ShardManager({len(self.shards)} shards, epoch={self._map.epoch}, "
            f"migration={'yes' if self._migration else 'no'})"
        )


#: How a router invokes one shard op: ``caller(op, args_tuple)``.
ShardCaller = Callable[[str, tuple], Any]

#: Errors that mean "this shard is unreachable" — fail reads over.
_DOWN_ERRORS = (ShardDownError, RpcTimeoutError, CircuitOpenError)


class PlacementPolicy:
    """Chunk→volume write placement for creates without a volume hint.

    ``fixed`` reproduces the historical choice (first volume);
    ``round_robin`` cycles; ``least_loaded`` reads the live
    ``disk.N.queue_depth`` and ``disk.N.utilization`` gauges the
    pipelines and disks already publish — the clusterIO discipline of
    steering new chunks at the coldest spindle.
    """

    def __init__(
        self,
        volume_ids: List[int],
        policy: str = "fixed",
        metrics: Optional[Metrics] = None,
    ) -> None:
        if not volume_ids:
            raise NamingError("placement needs at least one volume")
        if policy not in ("fixed", "round_robin", "least_loaded"):
            raise NamingError(f"unknown placement policy {policy!r}")
        self.volume_ids = sorted(volume_ids)
        self.policy = policy
        self.metrics = metrics or Metrics()
        self._next = 0

    def place(self) -> int:
        if self.policy == "fixed":
            return self.volume_ids[0]
        if self.policy == "round_robin":
            volume_id = self.volume_ids[self._next % len(self.volume_ids)]
            self._next += 1
            return volume_id
        return min(self.volume_ids, key=self._load)

    def _load(self, volume_id: int) -> Tuple[int, int, int]:
        queue = self.metrics.get_gauge(f"disk.{volume_id}.queue_depth") or 0
        utilization = self.metrics.get_gauge(f"disk.{volume_id}.utilization") or 0
        return (queue, utilization, volume_id)  # volume id breaks ties


class ShardedNamespace:
    """The client-side router: a ``NamingService``-shaped view over shards.

    Owns a cached :class:`ShardMap` (re-fetched on
    :class:`WrongShardError`), routes keyed operations to the owning
    shard, fans un-routable subset queries out to every shard and
    arbitrates exactly like the flat service (exact match wins, zero
    matches raise ``NameNotFoundError``, several raise ambiguity), and
    fails reads over to the replica peer when a primary is dead.

    Args:
        callers: shard id -> transport (direct closure or RPC stub).
        fetch_map: the manager's authoritative-map fetch.
        peer_of: shard id -> replica peer id (None = no failover).
        metrics: shared registry.
        health: optional failure detector fed with shard evidence.
        placement: optional chunk→volume policy (:meth:`place_volume`).
    """

    def __init__(
        self,
        callers: Dict[int, ShardCaller],
        fetch_map: Callable[[], ShardMap],
        *,
        peer_of: Optional[Callable[[int], Optional[int]]] = None,
        metrics: Optional[Metrics] = None,
        health: Optional[HealthRegistry] = None,
        placement: Optional[PlacementPolicy] = None,
        max_redirects: int = 4,
    ) -> None:
        if not callers:
            raise NamingError("router needs at least one shard caller")
        self._callers = dict(callers)
        self._fetch_map = fetch_map
        self._peer_of = peer_of
        self.metrics = metrics or Metrics()
        self.health = health
        self.placement = placement
        self.max_redirects = max_redirects
        self._map = fetch_map()
        #: Per-call token for mutating ops — the shard's reply cache
        #: dedupes retransmitted/duplicated deliveries against it.
        self._next_token = monotonic_id_factory()

    # --------------------------------------------------------- wiring

    def add_caller(self, shard_id: int, caller: ShardCaller) -> None:
        """Register the transport of a shard added after construction."""
        self._callers[shard_id] = caller

    @property
    def map_epoch(self) -> int:
        return self._map.epoch

    def place_volume(self) -> int:
        """Pick the volume for a new file's chunks (write placement)."""
        if self.placement is None:
            raise NamingError("no placement policy configured")
        return self.placement.place()

    # ------------------------------------------------------ transport

    def _invoke(self, shard_id: int, op: str, args: tuple) -> Any:
        caller = self._callers.get(shard_id)
        if caller is None:
            raise NamingError(f"no transport for shard {shard_id}")
        return caller(op, args)

    def _note_down(self, shard_id: int) -> None:
        self.metrics.add("naming_shard.failovers")
        if self.health is not None:
            self.health.note_error(shard_component(shard_id), permanent=True)

    def _call_keyed(self, key: str, op: str, args: tuple) -> Any:
        """Route a keyed op to the slot owner; chase epoch bumps."""
        for _attempt in range(self.max_redirects + 1):
            shard_id = self._map.owner_of(key)
            try:
                return self._invoke(shard_id, op, args)
            except WrongShardError:
                self.metrics.add("naming_shard.redirects")
                self._map = self._fetch_map()
        raise NamingError(
            f"shard map did not converge after {self.max_redirects} redirects"
        )

    def _read_keyed(self, key: str, op: str, args: tuple) -> Any:
        """A keyed *read*: on a dead primary, serve from the peer replica."""
        for _attempt in range(self.max_redirects + 1):
            shard_id = self._map.owner_of(key)
            try:
                return self._invoke(shard_id, op, args)
            except WrongShardError:
                self.metrics.add("naming_shard.redirects")
                self._map = self._fetch_map()
            except _DOWN_ERRORS:
                self._note_down(shard_id)
                return self._failover_read(shard_id, op, args)
        raise NamingError(
            f"shard map did not converge after {self.max_redirects} redirects"
        )

    def _failover_read(self, shard_id: int, op: str, args: tuple) -> Any:
        peer_id = self._peer_of(shard_id) if self._peer_of is not None else None
        if peer_id is None:
            raise ShardDownError(
                f"shard {shard_id} is down and has no replica peer"
            )
        return self._invoke(peer_id, "replica_" + op, args)

    def _read_all(self, op: str, args: tuple) -> Iterator[Tuple[int, Any]]:
        """Fan a read out to every shard, replica-failing-over per shard."""
        for shard_id in sorted(self._callers):
            try:
                yield shard_id, self._invoke(shard_id, op, args)
            except _DOWN_ERRORS:
                self._note_down(shard_id)
                yield shard_id, self._failover_read(shard_id, op, args)

    # -------------------------------------------- NamingService surface

    def bind(self, name: AttributedName, target: Target) -> None:
        self._call_keyed(
            canonical_key(name), "bind", (name, target, self._next_token())
        )

    def rebind(self, name: AttributedName, target: Target) -> None:
        self._call_keyed(
            canonical_key(name), "rebind", (name, target, self._next_token())
        )

    def unbind(self, name: AttributedName) -> Target:
        return self._call_keyed(
            canonical_key(name), "unbind", (name, self._next_token())
        )

    def resolve(self, query: AttributedName) -> Target:
        key = routing_key(query)
        if key is not None:
            return self._read_keyed(key, "resolve", (query,))
        self.metrics.add("naming_shard.fan_outs")
        matches: List[Tuple[int, AttributedName, Target, bool]] = []
        for shard_id, local in self._read_all("match", (query,)):
            matches.extend(
                (shard_id, name, target, exact) for name, target, exact in local
            )
        exacts = [entry for entry in matches if entry[3]]
        if exacts:
            return exacts[0][2]
        if not matches:
            raise NameNotFoundError(f"nothing matches {query}")
        if len(matches) > 1:
            raise NamingError(
                f"{query} is ambiguous: matches "
                f"{[str(name) for _, name, _, _ in matches]}"
            )
        return matches[0][2]

    def resolve_file(self, query: AttributedName) -> SystemName:
        if query.object_type is not ObjectType.FILE:
            raise NamingError(f"{query} is not a FILE name")
        target = self.resolve(query)
        if not isinstance(target, SystemName):
            raise NamingError(f"{query} resolved to a device, not a file")
        return target

    def lookup(self, query: AttributedName) -> List[Tuple[AttributedName, Target]]:
        results: List[Tuple[AttributedName, Target]] = []
        for _shard_id, local in self._read_all("match", (query,)):
            results.extend((name, target) for name, target, _exact in local)
        return results

    def __contains__(self, name: AttributedName) -> bool:
        return bool(self._read_keyed(canonical_key(name), "contains", (name,)))

    def __len__(self) -> int:
        return sum(count for _sid, count in self._read_all("size", ()))

    def __iter__(self) -> Iterator[AttributedName]:
        names: List[AttributedName] = []
        for _shard_id, local in self._read_all("names", ()):
            names.extend(local)
        return iter(names)

    # ------------------------------------------------- path helpers

    def bind_path(self, path: str, target: SystemName, **attrs: str) -> AttributedName:
        name = AttributedName.file(path=NamingService._norm_path(path), **attrs)
        self.bind(name, target)
        return name

    def resolve_path(self, path: str) -> SystemName:
        return self.resolve_file(
            AttributedName.file(path=NamingService._norm_path(path))
        )

    def unbind_path(self, path: str) -> Target:
        key = "p:" + NamingService._norm_path(path)
        return self._call_keyed(
            key, "unbind_path", (path, self._next_token())
        )

    def list_directory(self, prefix: str) -> List[str]:
        seen = set()
        for _shard_id, local in self._read_all("list_paths", (prefix,)):
            seen.update(local)
        return sorted(seen)

    # ----------------------------------------------------- inspection

    def shard_dumps(self) -> Dict[int, bytes]:
        """Per-shard codec snapshots (partition/round-trip checks)."""
        return {shard_id: blob for shard_id, blob in self._read_all("dump", ())}

    def to_bytes(self) -> bytes:
        """Serialise the *whole* namespace through the flat codec.

        The union of the shard tables round-trips through
        :meth:`NamingService.from_bytes` unchanged — sharding is a
        partition of the binding set, not a different data model — so
        the naming database stays storable in a RHODOS file exactly as
        before.  Shards are merged in id order for byte determinism.
        """
        merged = NamingService()
        for shard_id in sorted(self._callers):
            try:
                blob = self._invoke(shard_id, "dump", ())
            except _DOWN_ERRORS:
                self._note_down(shard_id)
                blob = self._failover_read(shard_id, "dump", ())
            part = NamingService.from_bytes(blob)
            for name in part:
                merged._install(name, part.resolve(name))
        return merged.to_bytes()

    def __repr__(self) -> str:
        return (
            f"ShardedNamespace({len(self._callers)} shards, "
            f"epoch={self._map.epoch})"
        )


Shardable = Union[NamingService, ShardedNamespace]
