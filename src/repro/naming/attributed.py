"""Attributed names for FILE and TTY objects.

An attributed name is an unordered set of ``key=value`` attributes
plus an object type.  Two names are equal iff their types and
attribute sets are equal; a *query* name matches a *binding* name when
the query's attributes are a subset of the binding's — which is what
lets a user open ``{owner=rajmohan, project=dff}`` without knowing
every attribute the file was registered with.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Mapping, Tuple


class ObjectType(enum.Enum):
    """What kind of object a name designates (paper section 3)."""

    FILE = "FILE"
    TTY = "TTY"


class AttributedName:
    """An immutable attributed name.

    Attribute keys and values are strings; construction normalises the
    attribute order away, so names hash and compare structurally.
    """

    __slots__ = ("object_type", "_attrs", "_frozen")

    def __init__(self, object_type: ObjectType, attrs: Mapping[str, str]) -> None:
        if not attrs:
            raise ValueError("an attributed name needs at least one attribute")
        clean: Dict[str, str] = {}
        for key, value in attrs.items():
            if not isinstance(key, str) or not isinstance(value, str):
                raise TypeError("attribute keys and values must be strings")
            if not key:
                raise ValueError("attribute keys must be non-empty")
            clean[key] = value
        self.object_type = object_type
        self._attrs = clean
        self._frozen = frozenset(clean.items())

    # ----------------------------------------------------- builders

    @classmethod
    def file(cls, path: str | None = None, **attrs: str) -> "AttributedName":
        """A FILE-object name; ``path`` is the conventional key."""
        merged = dict(attrs)
        if path is not None:
            merged["path"] = path
        return cls(ObjectType.FILE, merged)

    @classmethod
    def tty(cls, device: str | None = None, **attrs: str) -> "AttributedName":
        """A TTY-object name; ``device`` is the conventional key."""
        merged = dict(attrs)
        if device is not None:
            merged["device"] = device
        return cls(ObjectType.TTY, merged)

    # ------------------------------------------------------ queries

    @property
    def attributes(self) -> Dict[str, str]:
        return dict(self._attrs)

    def get(self, key: str, default: str | None = None) -> str | None:
        return self._attrs.get(key, default)

    def matches(self, query: "AttributedName") -> bool:
        """True if ``query``'s attributes are a subset of this name's."""
        return (
            self.object_type is query.object_type
            and query._frozen <= self._frozen
        )

    def with_attributes(self, **attrs: str) -> "AttributedName":
        merged = dict(self._attrs)
        merged.update(attrs)
        return AttributedName(self.object_type, merged)

    # ----------------------------------------------------- protocol

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributedName):
            return NotImplemented
        return self.object_type is other.object_type and self._frozen == other._frozen

    def __hash__(self) -> int:
        return hash((self.object_type, self._frozen))

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(sorted(self._attrs.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value}" for key, value in self)
        return f"{self.object_type.value}{{{inner}}}"
