"""The naming service: attributed name -> system name resolution.

Bindings map an :class:`AttributedName` to either a file's
:class:`~repro.common.ids.SystemName` or a device's system device name
(a plain string).  Resolution tries an exact match first and falls
back to subset matching; an ambiguous subset match is an error rather
than a guess.

The service also offers directory-flavoured helpers over the ``path``
attribute convention, and a codec so a naming database can itself be
stored in a RHODOS file (used by the cluster facade to make naming
survive restarts).

Subset matching is served from a **per-attribute inverted index**: for
every ``(object_type, key, value)`` attribute a binding carries, the
index keeps an insertion-ordered posting of the names carrying it.  A
query intersects its attributes' postings starting from the smallest,
so the cost is proportional to the rarest attribute's posting — not to
the whole binding table, which matters once a shard holds thousands of
names and every client operation resolves through it.  Posting order
is first-install order, so results come back in exactly the order the
historical linear scan produced (the equivalence test in
``tests/naming`` proves it against a defeated-lane oracle).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Tuple, Union

from repro.common.errors import NameExistsError, NameNotFoundError, NamingError
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName, ObjectType

Target = Union[SystemName, str]

#: One inverted-index posting key: (object type, attribute key, value).
_Posting = Tuple[ObjectType, str, str]


class NamingService:
    """An in-memory binding store with subset-match resolution."""

    def __init__(self, metrics: Metrics | None = None) -> None:
        self.metrics = metrics or Metrics()
        self._bindings: Dict[AttributedName, Target] = {}
        #: posting -> insertion-ordered set (a dict-to-None) of names.
        self._index: Dict[_Posting, Dict[AttributedName, None]] = {}

    # ---------------------------------------------------------- bind

    def bind(self, name: AttributedName, target: Target) -> None:
        """Bind ``name``; raises :class:`NameExistsError` if already bound."""
        if name in self._bindings:
            raise NameExistsError(f"{name} is already bound")
        self._check_target(name, target)
        self._install(name, target)
        self.metrics.add("naming.binds")

    def rebind(self, name: AttributedName, target: Target) -> None:
        """Bind or replace ``name`` (used by replication failover)."""
        self._check_target(name, target)
        self._install(name, target)
        self.metrics.add("naming.rebinds")

    def unbind(self, name: AttributedName) -> Target:
        """Remove a binding; returns the old target."""
        try:
            target = self._remove(name)
        except KeyError:
            raise NameNotFoundError(f"{name} is not bound") from None
        self.metrics.add("naming.unbinds")
        return target

    # ------------------------------------------------------- resolve

    def resolve(self, query: AttributedName) -> Target:
        """Evaluate and resolve an attributed name to its system name.

        Exact match wins; otherwise the unique binding whose attributes
        are a superset of the query's.  Zero matches raise
        :class:`NameNotFoundError`, several raise :class:`NamingError`.
        """
        self.metrics.add("naming.resolutions")
        exact = self._bindings.get(query)
        if exact is not None:
            return exact
        matches = self._subset_matches(query)
        if not matches:
            raise NameNotFoundError(f"nothing matches {query}")
        if len(matches) > 1:
            raise NamingError(
                f"{query} is ambiguous: matches {[str(name) for name, _ in matches]}"
            )
        return matches[0][1]

    def resolve_file(self, query: AttributedName) -> SystemName:
        """Resolve a FILE name, guaranteeing a SystemName result."""
        if query.object_type is not ObjectType.FILE:
            raise NamingError(f"{query} is not a FILE name")
        target = self.resolve(query)
        if not isinstance(target, SystemName):
            raise NamingError(f"{query} resolved to a device, not a file")
        return target

    def lookup(self, query: AttributedName) -> List[Tuple[AttributedName, Target]]:
        """All bindings matching a query (attribute search)."""
        self.metrics.add("naming.lookups")
        return self._subset_matches(query)

    def __contains__(self, name: AttributedName) -> bool:
        return name in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[AttributedName]:
        return iter(list(self._bindings))

    # ----------------------------------------------- path helpers

    def bind_path(self, path: str, target: SystemName, **attrs: str) -> AttributedName:
        """Bind a file under a conventional hierarchical path."""
        name = AttributedName.file(path=self._norm_path(path), **attrs)
        self.bind(name, target)
        return name

    def resolve_path(self, path: str) -> SystemName:
        return self.resolve_file(AttributedName.file(path=self._norm_path(path)))

    def unbind_path(self, path: str) -> Target:
        # Exact-match removal requires the full binding; the path
        # posting of the inverted index yields it directly.
        normalised = self._norm_path(path)
        bucket = self._index.get((ObjectType.FILE, "path", normalised))
        if bucket:
            return self.unbind(next(iter(bucket)))
        raise NameNotFoundError(f"no binding for path {path!r}")

    def list_directory(self, prefix: str) -> List[str]:
        """Paths bound directly under ``prefix`` (one level)."""
        base = self._norm_path(prefix).rstrip("/")
        seen = set()
        for name in self._bindings:
            path = name.get("path")
            if path is None or not path.startswith(base + "/"):
                continue
            rest = path[len(base) + 1 :]
            seen.add(rest.split("/", 1)[0])
        return sorted(seen)

    @staticmethod
    def _norm_path(path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        while "//" in path:
            path = path.replace("//", "/")
        return path

    # ----------------------------------------------------- codec

    def to_bytes(self) -> bytes:
        """Serialise the binding table (for storage in a RHODOS file)."""
        records = []
        for name, target in self._bindings.items():
            if isinstance(target, SystemName):
                encoded: object = {
                    "kind": "file",
                    "volume": target.volume_id,
                    "fit": target.fit_address,
                    "generation": target.generation,
                }
            else:
                encoded = {"kind": "device", "device": target}
            records.append(
                {
                    "type": name.object_type.value,
                    "attrs": name.attributes,
                    "target": encoded,
                }
            )
        return json.dumps(records, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, blob: bytes, metrics: Metrics | None = None) -> "NamingService":
        service = cls(metrics)
        for record in json.loads(blob.decode("utf-8")):
            name = AttributedName(ObjectType(record["type"]), record["attrs"])
            target = record["target"]
            if target["kind"] == "file":
                service._install(
                    name,
                    SystemName(target["volume"], target["fit"], target["generation"]),
                )
            else:
                service._install(name, target["device"])
        return service

    # ----------------------------------------------------- internal

    def _install(self, name: AttributedName, target: Target) -> None:
        """Store a binding and index its attributes (first install only:
        a rebind of an existing name keeps its posting positions, which
        is what keeps index-served results in linear-scan order)."""
        if name not in self._bindings:
            for key, value in name:
                self._index.setdefault(
                    (name.object_type, key, value), {}
                )[name] = None
        self._bindings[name] = target

    def _remove(self, name: AttributedName) -> Target:
        """Drop a binding and its postings; raises ``KeyError`` if absent."""
        target = self._bindings.pop(name)
        for key, value in name:
            posting = (name.object_type, key, value)
            bucket = self._index.get(posting)
            if bucket is not None:
                bucket.pop(name, None)
                if not bucket:
                    del self._index[posting]
        return target

    def _subset_matches(
        self, query: AttributedName
    ) -> List[Tuple[AttributedName, Target]]:
        """Bindings whose attributes are a superset of the query's.

        Intersects the query attributes' postings starting from the
        smallest bucket; candidates are verified with the same
        ``matches`` predicate the linear scan used, and emitted in that
        bucket's insertion order — which equals the binding table's
        insertion order restricted to those names, so callers observe
        results byte-identical to the historical full scan.
        """
        buckets: List[Dict[AttributedName, None]] = []
        for key, value in query:
            bucket = self._index.get((query.object_type, key, value))
            if not bucket:
                return []
            buckets.append(bucket)
        smallest = min(buckets, key=len)
        return [
            (name, self._bindings[name])
            for name in smallest
            if name.matches(query)
        ]

    @staticmethod
    def _check_target(name: AttributedName, target: Target) -> None:
        if name.object_type is ObjectType.FILE and not isinstance(target, SystemName):
            raise NamingError(f"FILE name {name} must bind to a SystemName")
        if name.object_type is ObjectType.TTY and not isinstance(target, str):
            raise NamingError(f"TTY name {name} must bind to a system device name")
