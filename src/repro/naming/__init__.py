"""The RHODOS naming service.

Processes refer to devices (TTY objects) and files (FILE objects) by
*attributed names*; the file agent, transaction agent and device agent
refer to them by *system names*.  "The process of evaluation and
resolution of an attributed name of a device or file to its system
name is performed by the RHODOS naming service" (paper section 3).

The service is a binding store with attribute-subset lookup plus a
conventional hierarchical-path convenience layer (a path is just an
attributed name whose ``path`` attribute is set).
"""

from repro.naming.attributed import AttributedName, ObjectType
from repro.naming.service import NamingService
from repro.naming.directory import DirectoryEntry, DirectoryService

# repro.naming.tdirectory.TransactionalDirectory is intentionally not
# re-exported here: it depends on the transaction service, which sits
# above naming in the layering (importing it here would be circular).
# It is available from the top-level package: ``from repro import
# TransactionalDirectory``.

__all__ = [
    "AttributedName",
    "ObjectType",
    "NamingService",
    "DirectoryEntry",
    "DirectoryService",
]
