"""Access recording for the happens-before race detector.

The simulation is single-threaded, so "concurrency" means overlapped
*simulated* time: deferred-time service frames, per-disk busy-until
timelines, and Completions delivered by the event loop.  Two pieces of
code interfere when they touch the same shared structure and nothing in
the *design* — not the incidental execution order — forces one before
the other.  This module records what the design promises:

* a **task** is one unit of design-level concurrency — the mainline (a
  chain of segments split at join points), one event-loop callback, one
  pipeline service batch, one FrameFork branch;
* an **edge** ``src -> dst`` is one promised ordering: program order
  into a spawned task, pipeline submit → drain, scheduler dequeue
  order, Completion resolve → callback delivery, a ``wait``/``join``
  rejoining the mainline, a per-resource serialization chain;
* an **access** is one read or write of a registered shared structure,
  interval-granular (fragment, sector, or request-sequence cells).

Tasks are numbered in creation order and every edge points forward
(``src < dst``), so the graph is acyclic *by construction* — the
detector never needs a cycle check, and topological order is id order.

Zero cost when disabled: the module-level :data:`NULL_MONITOR` (the
same NULL-object pattern as :data:`repro.common.trace.NULL_TRACER`)
swallows every call; :func:`install` swaps in a real
:class:`AccessMonitor` only for analysis runs (``repro.tools.racecheck``).
Everything here is stdlib-only and deterministic: no wall clock, no
``id()`` in any output, structures interned in first-touch order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

#: Upper cell bound of whole-structure accesses (``read_all``/``write_all``):
#: overlaps every interval a structure can legally use.
ALL_CELLS_HI = 1 << 62


@dataclass(frozen=True)
class Access:
    """One recorded access to a shared structure.

    Attributes:
        structure: interned structure id (see ``structure_labels``).
        lo / hi: the half-open cell interval ``[lo, hi)`` touched.
        kind: ``"r"`` or ``"w"``.
        task: id of the task that performed the access.
        time_us: simulated time at the access.
        site: short instrumentation-site label, e.g. ``"bitmap.mark_free"``.
    """

    structure: int
    lo: int
    hi: int
    kind: str
    task: int
    time_us: int
    site: str


class _TaskHandle:
    """Context manager closing the task it entered."""

    __slots__ = ("_monitor", "_tid")

    def __init__(self, monitor: "AccessMonitor", tid: int) -> None:
        self._monitor = monitor
        self._tid = tid

    def __enter__(self) -> int:
        return self._tid

    def __exit__(self, *_exc: object) -> bool:
        self._monitor.close_task()
        return False


class _NullTaskHandle:
    """Shared no-op context for the null monitor."""

    __slots__ = ()

    def __enter__(self) -> int:
        return 0

    def __exit__(self, *_exc: object) -> bool:
        return False


_NULL_TASK = _NullTaskHandle()


class NullMonitor:
    """The disabled monitor: every call is a no-op.

    Instrumentation sites call :func:`active` unconditionally; with this
    installed (the default) the cost is one global read and one no-op
    method call — no allocation, no recording, no behavioural change.
    """

    enabled = False

    def current(self) -> int:
        return 0

    def open_task(
        self, label: str, after: Sequence[int] = (), *, bind: bool = True
    ) -> int:
        return 0

    def close_task(self) -> None:
        pass

    def task(
        self, label: str, after: Sequence[int] = (), *, bind: bool = True
    ) -> _NullTaskHandle:
        return _NULL_TASK

    def rejoin(self, label: str, after: Sequence[int] = ()) -> int:
        return 0

    def barrier(self, label: str) -> int:
        return 0

    def chain(self, obj: object, name: str = "") -> None:
        pass

    def note_settled(self, obj: object) -> None:
        pass

    def settled_task(self, obj: object) -> Optional[int]:
        return None

    def read(
        self, obj: object, lo: int, hi: Optional[int] = None,
        *, name: str = "", site: str = "",
    ) -> None:
        pass

    def write(
        self, obj: object, lo: int, hi: Optional[int] = None,
        *, name: str = "", site: str = "",
    ) -> None:
        pass

    def key_read(
        self, obj: object, key: str, *, name: str = "", site: str = ""
    ) -> None:
        pass

    def key_write(
        self, obj: object, key: str, *, name: str = "", site: str = ""
    ) -> None:
        pass

    def read_all(self, obj: object, *, name: str = "", site: str = "") -> None:
        pass

    def write_all(self, obj: object, *, name: str = "", site: str = "") -> None:
        pass


class AccessMonitor(NullMonitor):
    """Records tasks, happens-before edges, and shared-structure accesses.

    Args:
        now_fn: returns the current simulated time in microseconds;
            accesses and task openings are stamped with it.  Defaults
            to a constant 0 (unit tests that don't care about time).
    """

    enabled = True

    def __init__(self, now_fn: Optional[Callable[[], int]] = None) -> None:
        self._now = now_fn or (lambda: 0)
        #: task id -> label; task 0 is the mainline root.
        self.task_labels: List[str] = ["main"]
        #: task id -> simulated time the task was opened.
        self.task_stamps: List[int] = [0]
        #: promised orderings, every edge with ``src < dst``.
        self.edges: List[Tuple[int, int]] = []
        self._edge_set: Set[Tuple[int, int]] = set()
        self._stack: List[int] = [0]
        self.accesses: List[Access] = []
        self._seen: Set[Tuple[int, int, int, int, str, str]] = set()
        #: interned structure id -> deterministic label.
        self.structure_labels: List[str] = []
        self._structure_ids: Dict[Tuple[int, str], int] = {}
        self._structure_refs: List[object] = []  # pin objects: no id reuse
        self._key_cells: Dict[int, Dict[str, int]] = {}
        self._chain_last: Dict[Tuple[int, str], int] = {}
        self._chain_refs: Dict[Tuple[int, str], object] = {}
        self._settled: Dict[int, Tuple[object, int]] = {}

    # ------------------------------------------------------- tasks

    def current(self) -> int:
        return self._stack[-1]

    def open_task(
        self, label: str, after: Sequence[int] = (), *, bind: bool = True
    ) -> int:
        """Create a task ordered after ``after`` (and the opener if ``bind``).

        ``bind=False`` is for tasks whose enclosing execution context is
        *incidental*, not a promised ordering — event-loop callbacks are
        ordered after their spawner, pipeline batches after their
        submitters, regardless of which stack frame happened to pump
        them.
        """
        tid = self._new_task(label)
        if bind:
            self._edge(self._stack[-1], tid)
        for src in after:
            self._edge(src, tid)
        self._stack.append(tid)
        return tid

    def close_task(self) -> None:
        if len(self._stack) > 1:
            self._stack.pop()

    def task(
        self, label: str, after: Sequence[int] = (), *, bind: bool = True
    ) -> _TaskHandle:
        return _TaskHandle(self, self.open_task(label, after, bind=bind))

    def rejoin(self, label: str, after: Sequence[int] = ()) -> int:
        """Split the current segment at a join point.

        The running task's continuation becomes a *new* task ordered
        after both the old segment and every task in ``after`` — this is
        how ``wait``, ``FrameFork.join``, ``run_until_idle`` and
        ``drain`` express "everything after this line sees those tasks'
        effects".
        """
        old = self._stack[-1]
        tid = self._new_task(label)
        self._edge(old, tid)
        for src in after:
            self._edge(src, tid)
        self._stack[-1] = tid
        return tid

    def barrier(self, label: str) -> int:
        """Rejoin after *every* task created so far.

        The machine-restart edge: a crash ends all concurrency, and
        recovery is promised to observe everything that ran before it —
        including event tasks whose waiter the crash interrupted (their
        ``wait`` never rejoined, so nothing else orders them).
        """
        return self.rejoin(label, after=tuple(range(len(self.task_labels))))

    def chain(self, obj: object, name: str = "") -> None:
        """Append the current task to ``obj``'s serialization chain.

        Models serially-owned resources: a disk timeline accepts
        reservations in order; a disk server is one serial actor whose
        entry-point invocations are totally ordered.  Consecutive chain
        members get an edge.
        """
        key = (id(obj), name)
        current = self._stack[-1]
        last = self._chain_last.get(key)
        if last is None:
            self._chain_refs[key] = obj
        elif last < current:
            self._edge(last, current)
        # last > current: a task that outlives a nested child touches
        # the chain after it.  The forward edge into the child already
        # orders that pair, and a backward edge would make a cycle, so
        # the pair is skipped; the chain still advances to ``current``.
        self._chain_last[key] = current

    # -------------------------------------------------- completions

    def note_settled(self, obj: object) -> None:
        """Record that ``obj`` (a Completion) settled in the current task."""
        self._settled[id(obj)] = (obj, self._stack[-1])

    def settled_task(self, obj: object) -> Optional[int]:
        entry = self._settled.get(id(obj))
        return entry[1] if entry is not None else None

    # ------------------------------------------------------ accesses

    def read(
        self, obj: object, lo: int, hi: Optional[int] = None,
        *, name: str = "", site: str = "",
    ) -> None:
        self._record(obj, name, lo, hi if hi is not None else lo + 1, "r", site)

    def write(
        self, obj: object, lo: int, hi: Optional[int] = None,
        *, name: str = "", site: str = "",
    ) -> None:
        self._record(obj, name, lo, hi if hi is not None else lo + 1, "w", site)

    def key_read(
        self, obj: object, key: str, *, name: str = "", site: str = ""
    ) -> None:
        cell = self._key_cell(obj, name, key)
        self._record(obj, name, cell, cell + 1, "r", site)

    def key_write(
        self, obj: object, key: str, *, name: str = "", site: str = ""
    ) -> None:
        cell = self._key_cell(obj, name, key)
        self._record(obj, name, cell, cell + 1, "w", site)

    def read_all(self, obj: object, *, name: str = "", site: str = "") -> None:
        self._record(obj, name, 0, ALL_CELLS_HI, "r", site)

    def write_all(self, obj: object, *, name: str = "", site: str = "") -> None:
        self._record(obj, name, 0, ALL_CELLS_HI, "w", site)

    # ------------------------------------------------------ internal

    def _new_task(self, label: str) -> int:
        tid = len(self.task_labels)
        self.task_labels.append(label)
        self.task_stamps.append(self._now())
        return tid

    def _edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        if src > dst:
            raise ValueError(
                f"happens-before edge {src} -> {dst} points backward; "
                "tasks are numbered in creation order and edges must too"
            )
        if (src, dst) not in self._edge_set:
            self._edge_set.add((src, dst))
            self.edges.append((src, dst))

    def _structure(self, obj: object, name: str) -> int:
        key = (id(obj), name)
        sid = self._structure_ids.get(key)
        if sid is None:
            sid = len(self.structure_labels)
            self._structure_ids[key] = sid
            self._structure_refs.append(obj)
            suffix = f".{name}" if name else ""
            self.structure_labels.append(
                f"{type(obj).__name__}{suffix}#{sid}"
            )
        return sid

    def _key_cell(self, obj: object, name: str, key: str) -> int:
        sid = self._structure(obj, name)
        cells = self._key_cells.setdefault(sid, {})
        cell = cells.get(key)
        if cell is None:
            cell = len(cells)
            cells[key] = cell
        return cell

    def _record(
        self, obj: object, name: str, lo: int, hi: int, kind: str, site: str
    ) -> None:
        sid = self._structure(obj, name)
        task = self._stack[-1]
        dedup = (task, sid, lo, hi, kind, site)
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        self.accesses.append(
            Access(
                structure=sid, lo=lo, hi=hi, kind=kind,
                task=task, time_us=self._now(), site=site,
            )
        )


#: The installed-by-default monitor: all instrumentation is a no-op.
NULL_MONITOR = NullMonitor()

_active: NullMonitor = NULL_MONITOR


def active() -> NullMonitor:
    """The monitor instrumentation sites report into (usually the null one)."""
    return _active


def install(monitor: AccessMonitor) -> AccessMonitor:
    """Make ``monitor`` the active monitor; returns it for chaining.

    Only one analysis run may be active at a time — nested installs are
    a harness bug.
    """
    global _active
    if _active is not NULL_MONITOR:
        raise RuntimeError("an access monitor is already installed")
    _active = monitor
    return monitor


def uninstall() -> None:
    """Restore the null monitor (idempotent)."""
    global _active
    _active = NULL_MONITOR
