"""Concurrency-correctness analysis: the happens-before race detector.

Stdlib-only by charter — this package sits *below* every simulation
layer in the DAG (even ``common.frames`` instruments itself against it),
so it may import nothing from ``repro``.  See DESIGN.md §12 for the
detector model and the happens-before edge catalogue.
"""

from repro.analysis.happens_before import (
    HBGraph,
    RaceEndpoint,
    RaceFinding,
    detect,
    report,
    validate,
)
from repro.analysis.monitor import (
    ALL_CELLS_HI,
    Access,
    AccessMonitor,
    NULL_MONITOR,
    NullMonitor,
    active,
    install,
    uninstall,
)

__all__ = [
    "ALL_CELLS_HI",
    "Access",
    "AccessMonitor",
    "HBGraph",
    "NULL_MONITOR",
    "NullMonitor",
    "RaceEndpoint",
    "RaceFinding",
    "active",
    "detect",
    "install",
    "report",
    "uninstall",
    "validate",
]
