"""Happens-before reachability and conflicting-access detection.

Consumes a finished :class:`repro.analysis.monitor.AccessMonitor` and
answers the only question that matters: did two design-level tasks touch
the same cells of the same shared structure, at least one writing,
without a happens-before path between them?  Such a pair is a **race
finding** — the code happened to run in some order, but the design never
promised that order, so a legal reschedule (a different seek outcome, a
reordered batch, an earlier scrub tick) could flip it.

Reachability is computed once over the task DAG with big-int bitsets:
tasks are numbered in creation order, every edge points forward, so a
single forward sweep in id order is a topological pass.  Cost is
O(V·E/64)-ish in practice and exact — no sampling, no lockset
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.monitor import Access, AccessMonitor


@dataclass(frozen=True)
class RaceEndpoint:
    """One side of a conflicting pair, with human-readable context."""

    task: int
    task_label: str
    kind: str
    lo: int
    hi: int
    time_us: int
    site: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "task": self.task,
            "task_label": self.task_label,
            "kind": self.kind,
            "lo": self.lo,
            "hi": self.hi,
            "time_us": self.time_us,
            "site": self.site,
        }


@dataclass(frozen=True)
class RaceFinding:
    """A structure touched by two unordered tasks, at least one writing.

    ``pairs`` counts every unordered conflicting access pair that maps
    to the same (structure, site, site, kinds) signature; ``first`` and
    ``second`` are the earliest such pair, for the report.
    """

    structure: str
    first: RaceEndpoint
    second: RaceEndpoint
    pairs: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "structure": self.structure,
            "first": self.first.as_dict(),
            "second": self.second.as_dict(),
            "pairs": self.pairs,
        }


class HBGraph:
    """Ancestor-set reachability over the recorded task DAG."""

    def __init__(self, task_count: int, edges: Sequence[Tuple[int, int]]):
        preds: List[List[int]] = [[] for _ in range(task_count)]
        for src, dst in edges:
            if not 0 <= src < dst < task_count:
                raise ValueError(f"malformed happens-before edge {src}->{dst}")
            preds[dst].append(src)
        # reach[t] bit s set  <=>  s happens-before t (s == t included).
        reach: List[int] = [0] * task_count
        for tid in range(task_count):  # id order IS topological order
            mask = 1 << tid
            for src in preds[tid]:
                mask |= reach[src]
            reach[tid] = mask
        self._reach = reach

    def ordered(self, a: int, b: int) -> bool:
        """True when a path orders ``a`` and ``b`` (either direction)."""
        if a == b:
            return True
        if a > b:
            a, b = b, a
        return bool(self._reach[b] & (1 << a))


def validate(monitor: AccessMonitor) -> List[str]:
    """Check the invariants the monitor promises by construction.

    Returns human-readable violations (empty on a healthy run):
    every edge forward (acyclicity), every edge's destination opened at
    a simulated time >= its source (timestamp consistency), and every
    access stamped no earlier than its task's opening.
    """
    problems: List[str] = []
    stamps = monitor.task_stamps
    for src, dst in monitor.edges:
        if src >= dst:
            problems.append(f"edge {src}->{dst} is not forward")
        elif stamps[dst] < stamps[src]:
            problems.append(
                f"edge {src}->{dst} goes back in time "
                f"({stamps[src]}us -> {stamps[dst]}us)"
            )
    for access in monitor.accesses:
        if access.time_us < stamps[access.task]:
            problems.append(
                f"access at {access.site or '?'} stamped {access.time_us}us "
                f"before its task {access.task} opened ({stamps[access.task]}us)"
            )
    return problems


def detect(monitor: AccessMonitor) -> List[RaceFinding]:
    """Find unordered conflicting access pairs; deterministic output.

    Findings are deduplicated by (structure, ordered site pair, ordered
    kind pair) — a racing site pair reports once with a pair count, not
    once per cell — and sorted by structure label then site labels.
    """
    graph = HBGraph(len(monitor.task_labels), monitor.edges)
    by_structure: Dict[int, List[Access]] = {}
    for access in monitor.accesses:
        by_structure.setdefault(access.structure, []).append(access)

    grouped: Dict[Tuple[str, str, str, str], List[Tuple[Access, Access]]] = {}
    for sid, accesses in sorted(by_structure.items()):
        for i, first in enumerate(accesses):
            for second in accesses[i + 1:]:
                if first.task == second.task:
                    continue
                if "w" not in (first.kind, second.kind):
                    continue
                if first.lo >= second.hi or second.lo >= first.hi:
                    continue
                if graph.ordered(first.task, second.task):
                    continue
                label = monitor.structure_labels[sid]
                site_a, site_b = sorted((first.site, second.site))
                kinds = "".join(sorted((first.kind, second.kind)))
                grouped.setdefault(
                    (label, site_a, site_b, kinds), []
                ).append((first, second))

    findings: List[RaceFinding] = []
    for (label, _sa, _sb, _kinds), pairs in sorted(grouped.items()):
        first, second = pairs[0]
        findings.append(
            RaceFinding(
                structure=label,
                first=_endpoint(monitor, first),
                second=_endpoint(monitor, second),
                pairs=len(pairs),
            )
        )
    return findings


def report(monitor: AccessMonitor, findings: Sequence[RaceFinding]) -> Dict[str, object]:
    """One scenario's JSON-ready summary (stable key order via sort_keys)."""
    return {
        "tasks": len(monitor.task_labels),
        "edges": len(monitor.edges),
        "accesses": len(monitor.accesses),
        "structures": len(monitor.structure_labels),
        "hb_violations": validate(monitor),
        "findings": [finding.as_dict() for finding in findings],
    }


def _endpoint(monitor: AccessMonitor, access: Access) -> RaceEndpoint:
    return RaceEndpoint(
        task=access.task,
        task_label=monitor.task_labels[access.task],
        kind=access.kind,
        lo=access.lo,
        hi=access.hi,
        time_us=access.time_us,
        site=access.site,
    )
