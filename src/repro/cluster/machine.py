"""One client machine: its agents and processes."""

from __future__ import annotations

from typing import List

from repro.agents.devices import DeviceAgent
from repro.agents.file_agent import FileAgent
from repro.agents.process import Process
from repro.transactions.agent import TransactionAgentHost


class Machine:
    """The per-machine bundle: device agent, file agent, transaction host.

    Processes are created on a machine and inherit its agents; the
    transaction agent's presence is event-driven (see
    :class:`~repro.transactions.agent.TransactionAgentHost`).
    """

    def __init__(
        self,
        machine_id: str,
        device_agent: DeviceAgent,
        file_agent: FileAgent,
        transaction_host: TransactionAgentHost,
    ) -> None:
        self.machine_id = machine_id
        self.device_agent = device_agent
        self.file_agent = file_agent
        self.transactions = transaction_host
        self.processes: List[Process] = []

    def spawn_process(self) -> Process:
        """Create a fresh (heavyweight) process on this machine."""
        process = Process(self.device_agent, self.file_agent)
        self.processes.append(process)
        return process

    def __repr__(self) -> str:
        return f"Machine({self.machine_id!r}, processes={len(self.processes)})"
