"""Cluster configuration.

One dataclass gathers every knob the experiments sweep: cache levels
on/off (E5), readahead (E14), write policy (E6), the free-extent array
shape (E4/A1), the timeout policy (E8/A2), the commit technique (E9),
and the RPC fault profile (E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.disk_service.scheduler import DEFAULT_AGING_BOUND_US
from repro.file_service.cache import WritePolicy
from repro.rpc.bus import FaultProfile
from repro.rpc.retry import BackoffPolicy, BreakerPolicy
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.timing import DiskTimingModel
from repro.transactions.lock_manager import TimeoutPolicy


@dataclass(slots=True)
class ClusterConfig:
    """Everything needed to build a :class:`~repro.cluster.system.RhodosCluster`.

    Attributes:
        n_machines: client machines (each gets device/file/transaction
            agents).
        n_disks: volumes; one disk server and one file server each.
        geometry: disk geometry for every data disk.
        stable_geometry: geometry of each stable-storage mirror disk.
        timing: disk service-time model.
        client_cache_blocks: per-machine file-agent cache capacity
            (0 = no client cache — the Amoeba Bullet configuration).
        server_cache_blocks: per-volume file-server block pool (0 = off).
        disk_cache_tracks: per-disk track cache (0 = off).
        disk_readahead: rest-of-track readahead on/off.
        disk_scheduler: service-order policy of each disk's request
            pipeline — ``fcfs``, ``scan``, or ``scan+coalesce`` (E16).
        scan_aging_bound_us: SCAN's starvation bound; a request waiting
            at least this long is served oldest-first.
        write_policy: file-server policy for basic files.
        extent_rows / extent_columns: free-extent array dimensions.
        timeout_policy: the LT/N deadlock policy.
        commit_technique: 'auto' (paper rule), 'wal', or 'shadow'.
        cross_level_locking: relax the one-granularity-per-file
            constraint (the paper's deferred extension, section 6.1).
        fault_profile: RPC fault injection; None = direct calls
            (no message bus between agents and servers).
        rpc_backoff: seeded exponential backoff between RPC
            retransmissions; None = the fixed-interval retry the
            idempotency benches established.
        rpc_breaker: per-destination circuit-breaker policy; None = no
            breaker (every call spends its full attempt budget).
            Breaker transitions feed the cluster's health registry.
        health_transient_tolerance: consecutive transient replica
            errors one volume may accumulate before the failure
            detector treats it as down.
        n_shards: naming shard servers the binding space partitions
            across (1 = the flat namespace, behaviourally identical to
            the historical single ``NamingService``).
        shard_slots: hash slots of the shard map; fixed for the life
            of a namespace.
        shard_service_us: modelled per-operation service time charged
            to a shard server's timeline (0 = free metadata, the
            historical timing).
        placement_policy: chunk→volume placement for creates without a
            volume hint — ``fixed`` (first volume, historical),
            ``round_robin``, or ``least_loaded`` (steered by the live
            ``disk.N.queue_depth``/``utilization`` gauges).
        raid_level: back each volume's data disk with a
            :class:`~repro.simdisk.raid.StripedVolume` of this layout
            (``raid0`` / ``raid1`` / ``raid5``) instead of a single
            drive; None (default) keeps the single-disk configuration.
        raid_members: member drives per array (each of ``geometry``).
        raid_chunk_sectors: sectors per stripe unit; the default of one
            track keeps a stripe unit a single-track reference.
        raid_rebuild_chunks: physical chunks the background rebuilder
            reconstructs per granted idle step.
        seed: RNG seed for every stochastic component.
        tracing: record cross-layer request spans (zero-cost when off).
        trace_capacity: completed spans retained in the tracer's ring
            buffer.
    """

    n_machines: int = 1
    n_disks: int = 1
    geometry: DiskGeometry = field(default_factory=DiskGeometry.medium)
    stable_geometry: DiskGeometry = field(default_factory=DiskGeometry.small)
    timing: DiskTimingModel = field(default_factory=DiskTimingModel)
    client_cache_blocks: int = 128
    server_cache_blocks: int = 256
    disk_cache_tracks: int = 128
    disk_readahead: bool = True
    disk_scheduler: Literal["fcfs", "scan", "scan+coalesce"] = "fcfs"
    scan_aging_bound_us: int = DEFAULT_AGING_BOUND_US
    write_policy: WritePolicy = WritePolicy.DELAYED
    extent_rows: int = 64
    extent_columns: int = 64
    timeout_policy: TimeoutPolicy = field(default_factory=TimeoutPolicy)
    commit_technique: Literal["auto", "wal", "shadow"] = "auto"
    cross_level_locking: bool = False
    fault_profile: Optional[FaultProfile] = None
    rpc_backoff: Optional[BackoffPolicy] = None
    rpc_breaker: Optional[BreakerPolicy] = None
    health_transient_tolerance: int = 3
    n_shards: int = 1
    shard_slots: int = 64
    shard_service_us: int = 0
    placement_policy: Literal["fixed", "round_robin", "least_loaded"] = "fixed"
    replication_degree: int = 2
    raid_level: Optional[Literal["raid0", "raid1", "raid5"]] = None
    raid_members: int = 4
    raid_chunk_sectors: int = 64
    raid_rebuild_chunks: int = 32
    seed: int = 0
    tracing: bool = False
    trace_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ValueError("need at least one machine")
        if self.n_disks < 1:
            raise ValueError("need at least one disk")
        if self.n_shards < 1:
            raise ValueError("need at least one naming shard")
        if self.shard_slots < self.n_shards:
            raise ValueError("need at least one hash slot per shard")
        if self.shard_service_us < 0:
            raise ValueError("shard service time cannot be negative")
        if self.raid_level is not None:
            floor = 3 if self.raid_level == "raid5" else 2
            if self.raid_members < floor:
                raise ValueError(
                    f"{self.raid_level} needs at least {floor} members"
                )
            if self.raid_chunk_sectors < 1:
                raise ValueError("raid chunk size must be positive")

    @classmethod
    def bullet_style(cls, **overrides) -> "ClusterConfig":
        """The no-client-cache comparator of experiment E5."""
        merged = {"client_cache_blocks": 0}
        merged.update(overrides)
        return cls(**merged)

    @classmethod
    def uncached(cls, **overrides) -> "ClusterConfig":
        """Every cache level off (the E5 baseline)."""
        merged = {
            "client_cache_blocks": 0,
            "server_cache_blocks": 0,
            "disk_cache_tracks": 0,
            "disk_readahead": False,
        }
        merged.update(overrides)
        return cls(**merged)
